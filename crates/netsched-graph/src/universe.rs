//! The demand-instance universe.
//!
//! Section 2 of the paper reformulates the problem in terms of *demand
//! instances*: one copy of a demand per accessible network (and, for
//! windowed line networks, per admissible start time). Every algorithm in
//! this workspace operates on a [`DemandInstanceUniverse`]: a flat list of
//! instances, each with an owner demand, a network, a profit, a height and
//! the set of edges its routing occupies, plus the per-edge capacities.
//!
//! A *feasible solution* is a subset of instances containing at most one
//! instance per demand such that on every edge the heights of the selected
//! instances through it sum to at most the edge capacity.
//!
//! Congestion accounting is run-based (see [`crate::path`]): instead of
//! touching every edge of every selected path, [`edge_loads`] and
//! [`is_feasible`] accumulate `+h` / `−h` at the interval endpoints of each
//! run and take a single prefix-sum pass — `O(m + E)` instead of
//! `O(Σ path length)`. [`LoadTracker`] offers the same accounting
//! incrementally for greedy selection loops (the framework's second phase).
//!
//! [`edge_loads`]: DemandInstanceUniverse::edge_loads
//! [`is_feasible`]: DemandInstanceUniverse::is_feasible

use crate::capacity::CapacityIndex;
use crate::ids::{DemandId, EdgeId, GlobalEdge, InstanceId, NetworkId};
use crate::path::EdgePath;
use crate::EPS;

/// A single demand instance `d ∈ D`.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandInstance {
    /// Identifier (dense index into the universe).
    pub id: InstanceId,
    /// The demand this instance belongs to (`a_d` in the paper).
    pub demand: DemandId,
    /// The network this instance is scheduled on.
    pub network: NetworkId,
    /// Profit `p(d)` (equal to the owning demand's profit).
    pub profit: f64,
    /// Height `h(d)` (equal to the owning demand's height).
    pub height: f64,
    /// The edges of `path(d)` within `network`.
    pub path: EdgePath,
    /// For windowed line instances: the start timeslot of the execution
    /// segment. `None` for tree instances.
    pub start: Option<u32>,
}

impl DemandInstance {
    /// Returns `true` if this instance uses edge `e` of its own network
    /// (`d ∼ e` in the paper).
    #[inline]
    pub fn active_on(&self, e: EdgeId) -> bool {
        self.path.contains(e)
    }

    /// Returns `true` if the instance is wide (`h(d) > 1/2`, Section 6).
    #[inline]
    pub fn is_wide(&self) -> bool {
        self.height > 0.5
    }

    /// Returns `true` if the instance is narrow (`h(d) ≤ 1/2`, Section 6).
    #[inline]
    pub fn is_narrow(&self) -> bool {
        !self.is_wide()
    }

    /// Length of the instance (number of edges of its path); for line
    /// instances this is the paper's `len(d) = e(d) − s(d) + 1`.
    #[inline]
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Returns `true` if the path is empty (never the case for valid
    /// demands, whose end-points differ).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// The full set of demand instances of a problem, plus edge capacities.
#[derive(Debug, Clone)]
pub struct DemandInstanceUniverse {
    instances: Vec<DemandInstance>,
    num_demands: usize,
    num_networks: usize,
    /// Number of edges of each network.
    edges_per_network: Vec<usize>,
    /// Capacity of each edge of each network (1.0 in the uniform-bandwidth
    /// setting of the arXiv text; arbitrary positive values in the
    /// capacitated/IPPS setting).
    capacities: Vec<Vec<f64>>,
    /// Instances of each demand (`Inst(a)`).
    by_demand: Vec<Vec<InstanceId>>,
    /// Instances on each network (`D(T)`).
    by_network: Vec<Vec<InstanceId>>,
    /// Cached: `true` when every capacity is exactly 1.0 (the
    /// uniform-bandwidth setting), enabling `O(runs)` feasibility checks.
    uniform_capacity: bool,
    /// Range-minimum index over the capacities; built only in the
    /// non-uniform setting (the uniform one never consults it).
    capacity_index: Option<CapacityIndex>,
}

impl DemandInstanceUniverse {
    /// Assembles a universe from its parts.
    ///
    /// `edges_per_network[t]` is the number of edges of network `t`;
    /// `capacities` may be empty, in which case every capacity defaults
    /// to 1.0.
    pub fn new(
        instances: Vec<DemandInstance>,
        num_demands: usize,
        edges_per_network: Vec<usize>,
        capacities: Option<Vec<Vec<f64>>>,
    ) -> Self {
        let num_networks = edges_per_network.len();
        let capacities =
            capacities.unwrap_or_else(|| edges_per_network.iter().map(|&m| vec![1.0; m]).collect());
        assert_eq!(
            capacities.len(),
            num_networks,
            "capacities must cover every network"
        );
        for (t, caps) in capacities.iter().enumerate() {
            assert_eq!(
                caps.len(),
                edges_per_network[t],
                "capacities must cover every edge of network {t}"
            );
        }
        let mut by_demand = vec![Vec::new(); num_demands];
        let mut by_network = vec![Vec::new(); num_networks];
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(inst.id.index(), i, "instance ids must be dense");
            by_demand[inst.demand.index()].push(inst.id);
            by_network[inst.network.index()].push(inst.id);
        }
        let uniform_capacity = capacities
            .iter()
            .flat_map(|c| c.iter())
            .all(|&c| (c - 1.0).abs() <= EPS);
        let capacity_index = if uniform_capacity {
            None
        } else {
            Some(CapacityIndex::build(&capacities))
        };
        Self {
            instances,
            num_demands,
            num_networks,
            edges_per_network,
            capacities,
            by_demand,
            by_network,
            uniform_capacity,
            capacity_index,
        }
    }

    /// Number of demand instances `|D|`.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of demands `m`.
    #[inline]
    pub fn num_demands(&self) -> usize {
        self.num_demands
    }

    /// Number of networks `r`.
    #[inline]
    pub fn num_networks(&self) -> usize {
        self.num_networks
    }

    /// Heap bytes committed by the universe's own buffers (instance table,
    /// path run arenas, secondary indices, capacities) — the memory-audit
    /// input the `mega_scale` bench reports as bytes/demand. Counts
    /// capacities, not lengths, so it reflects what the allocator holds.
    pub fn committed_bytes(&self) -> usize {
        let mut bytes = self.instances.capacity() * std::mem::size_of::<DemandInstance>();
        for inst in &self.instances {
            bytes += inst.path.heap_bytes();
        }
        bytes += self.edges_per_network.capacity() * std::mem::size_of::<usize>();
        for caps in &self.capacities {
            bytes += caps.capacity() * std::mem::size_of::<f64>();
        }
        bytes += self.capacities.capacity() * std::mem::size_of::<Vec<f64>>();
        for group in self.by_demand.iter().chain(&self.by_network) {
            bytes += group.capacity() * std::mem::size_of::<InstanceId>();
        }
        bytes += self.by_demand.capacity() * std::mem::size_of::<Vec<InstanceId>>();
        bytes += self.by_network.capacity() * std::mem::size_of::<Vec<InstanceId>>();
        bytes
    }

    /// Number of edges of network `t`.
    #[inline]
    pub fn num_edges(&self, t: NetworkId) -> usize {
        self.edges_per_network[t.index()]
    }

    /// Total number of edges over all networks (`|E|`).
    pub fn total_edges(&self) -> usize {
        self.edges_per_network.iter().sum()
    }

    /// The instance with identifier `d`.
    #[inline]
    pub fn instance(&self, d: InstanceId) -> &DemandInstance {
        &self.instances[d.index()]
    }

    /// Iterates over all instances.
    pub fn instances(&self) -> impl Iterator<Item = &DemandInstance> {
        self.instances.iter()
    }

    /// Iterates over all instance identifiers.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> {
        (0..self.instances.len()).map(InstanceId::new)
    }

    /// The instances of demand `a` (`Inst(a)`).
    #[inline]
    pub fn instances_of_demand(&self, a: DemandId) -> &[InstanceId] {
        &self.by_demand[a.index()]
    }

    /// The instances on network `t` (`D(T)`).
    #[inline]
    pub fn instances_on_network(&self, t: NetworkId) -> &[InstanceId] {
        &self.by_network[t.index()]
    }

    /// Capacity of a global edge.
    #[inline]
    pub fn capacity(&self, e: GlobalEdge) -> f64 {
        self.capacities[e.network.index()][e.edge.index()]
    }

    /// Profit `p(d)`.
    #[inline]
    pub fn profit(&self, d: InstanceId) -> f64 {
        self.instances[d.index()].profit
    }

    /// Height `h(d)`.
    #[inline]
    pub fn height(&self, d: InstanceId) -> f64 {
        self.instances[d.index()].height
    }

    /// The owning demand `a_d`.
    #[inline]
    pub fn demand_of(&self, d: InstanceId) -> DemandId {
        self.instances[d.index()].demand
    }

    /// Maximum profit over all instances (`p_max`); 1.0 for an empty
    /// universe.
    pub fn max_profit(&self) -> f64 {
        if self.instances.is_empty() {
            return 1.0;
        }
        self.instances
            .iter()
            .map(|d| d.profit)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum profit over all instances (`p_min`); 1.0 for an empty
    /// universe.
    pub fn min_profit(&self) -> f64 {
        if self.instances.is_empty() {
            return 1.0;
        }
        self.instances
            .iter()
            .map(|d| d.profit)
            .fold(f64::INFINITY, f64::min)
    }

    /// Minimum height over all instances (`h_min`); 1.0 for an empty
    /// universe.
    pub fn min_height(&self) -> f64 {
        self.instances
            .iter()
            .map(|d| d.height)
            .fold(1.0_f64, f64::min)
    }

    /// Returns `true` if every instance has height exactly 1 (the
    /// unit-height case).
    pub fn is_unit_height(&self) -> bool {
        self.instances.iter().all(|d| (d.height - 1.0).abs() <= EPS)
    }

    /// Returns `true` if every capacity is exactly 1 (the uniform-bandwidth
    /// setting of the arXiv text). Cached at construction, `O(1)`.
    #[inline]
    pub fn is_uniform_capacity(&self) -> bool {
        self.uniform_capacity
    }

    /// The range-minimum index over the capacities; present exactly when
    /// the universe is non-uniform (the uniform setting never needs it).
    #[inline]
    pub fn capacity_index(&self) -> Option<&CapacityIndex> {
        self.capacity_index.as_ref()
    }

    /// Minimum capacity over every edge of a path of `network` —
    /// `O(runs)` via the range-minimum index (constant 1.0 in the uniform
    /// setting); `f64::INFINITY` for an empty path.
    pub fn min_capacity_on_path(&self, network: NetworkId, path: &EdgePath) -> f64 {
        match &self.capacity_index {
            Some(index) => index.min_on_path(network, path),
            None if path.is_empty() => f64::INFINITY,
            None => 1.0,
        }
    }

    /// Two instances *overlap* if they belong to the same network and their
    /// paths share an edge (Section 2).
    pub fn overlapping(&self, a: InstanceId, b: InstanceId) -> bool {
        let (da, db) = (&self.instances[a.index()], &self.instances[b.index()]);
        da.network == db.network && da.path.intersects(&db.path)
    }

    /// Two instances *conflict* if they belong to the same demand or they
    /// overlap (Section 2).
    pub fn conflicting(&self, a: InstanceId, b: InstanceId) -> bool {
        if a == b {
            return false;
        }
        let (da, db) = (&self.instances[a.index()], &self.instances[b.index()]);
        da.demand == db.demand || (da.network == db.network && da.path.intersects(&db.path))
    }

    /// Returns `true` if the given set of instances is an *independent set*:
    /// pairwise non-conflicting (Section 2). This is the feasibility notion
    /// of the unit-height case.
    pub fn is_independent_set(&self, selection: &[InstanceId]) -> bool {
        for (i, &a) in selection.iter().enumerate() {
            for &b in &selection[i + 1..] {
                if a == b || self.conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Per-edge load of a selection on a given network: `load[e]` = sum of
    /// heights of selected instances through edge `e`.
    ///
    /// Difference-array accounting: each interval run contributes `+h` at
    /// its start and `−h` past its end, followed by one prefix-sum pass —
    /// `O(|selection| + E_t)` instead of `O(Σ path length)`.
    pub fn edge_loads(&self, network: NetworkId, selection: &[InstanceId]) -> Vec<f64> {
        let m = self.num_edges(network);
        let mut diff = vec![0.0; m + 1];
        for &d in selection {
            let inst = &self.instances[d.index()];
            if inst.network == network {
                for run in inst.path.runs() {
                    diff[run.start as usize] += inst.height;
                    diff[run.end as usize + 1] -= inst.height;
                }
            }
        }
        let mut acc = 0.0;
        let mut load = diff;
        load.truncate(m);
        for l in &mut load {
            acc += *l;
            *l = acc;
        }
        load
    }

    /// Returns `true` if the selection respects capacities on every edge and
    /// selects at most one instance per demand (the feasibility notion of
    /// the arbitrary-height / capacitated case, Section 6).
    ///
    /// One difference-array pass per network actually touched by the
    /// selection: `O(|selection| + Σ E_t over touched networks)`.
    pub fn is_feasible(&self, selection: &[InstanceId]) -> bool {
        // At most one instance per demand, and no repeated instance.
        let mut used = vec![false; self.num_demands];
        let mut seen = vec![false; self.num_instances()];
        let mut touched = vec![false; self.num_networks];
        for &d in selection {
            if seen[d.index()] {
                return false;
            }
            seen[d.index()] = true;
            let a = self.demand_of(d).index();
            if used[a] {
                return false;
            }
            used[a] = true;
            touched[self.instances[d.index()].network.index()] = true;
        }
        // Capacity constraints per touched network.
        for (t, touched) in touched.iter().enumerate() {
            if !touched {
                continue;
            }
            let network = NetworkId::new(t);
            let load = self.edge_loads(network, selection);
            for (e, &l) in load.iter().enumerate() {
                if l > self.capacities[t][e] + EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if `candidate` can be added to `selection` without
    /// violating feasibility. `selection` is assumed feasible.
    ///
    /// The check is an endpoint sweep over the run intersections of the
    /// candidate with the selection — `O(k log k)` where `k` is the number
    /// of intersecting runs, with no per-edge work. Under uniform
    /// capacities each constant-load segment compares against 1.0; under
    /// arbitrary capacities it compares against an `O(1)` range-minimum
    /// query on the [`CapacityIndex`]. (Greedy loops that add many
    /// candidates should prefer a [`LoadTracker`].)
    pub fn can_add(&self, selection: &[InstanceId], candidate: InstanceId) -> bool {
        let cand = &self.instances[candidate.index()];
        for &d in selection {
            if d == candidate || self.demand_of(d) == cand.demand {
                return false;
            }
        }
        if self.uniform_capacity {
            // Event sweep: +h at the start of every run intersection with
            // the candidate's path, −h past its end; the load within the
            // candidate's path changes only at those endpoints.
            let mut events: Vec<(u32, f64)> = Vec::new();
            for &d in selection {
                let inst = &self.instances[d.index()];
                if inst.network != cand.network {
                    continue;
                }
                let shared = cand.path.intersection(&inst.path);
                for run in shared.runs() {
                    events.push((run.start, inst.height));
                    events.push((run.end + 1, -inst.height));
                }
            }
            if events.is_empty() {
                return cand.height <= 1.0 + EPS;
            }
            events.sort_unstable_by_key(|e| e.0);
            let mut load = cand.height;
            let mut i = 0;
            while i < events.len() {
                let at = events[i].0;
                while i < events.len() && events[i].0 == at {
                    load += events[i].1;
                    i += 1;
                }
                if load > 1.0 + EPS {
                    return false;
                }
            }
            true
        } else {
            // Arbitrary capacities: the same event sweep, but instead of a
            // constant capacity every maximal constant-load segment is
            // checked against a range-minimum query on the capacity index —
            // `O(k log k + runs)` with no per-edge work.
            let index = self
                .capacity_index
                .as_ref()
                .expect("non-uniform universes build a capacity index");
            let t = cand.network;
            let mut events: Vec<(u32, f64)> = Vec::new();
            for &d in selection {
                let inst = &self.instances[d.index()];
                if inst.network != t {
                    continue;
                }
                let shared = cand.path.intersection(&inst.path);
                for run in shared.runs() {
                    events.push((run.start, inst.height));
                    events.push((run.end + 1, -inst.height));
                }
            }
            events.sort_unstable_by_key(|e| e.0);
            let mut load = cand.height;
            let mut ei = 0;
            for run in cand.path.runs() {
                while ei < events.len() && events[ei].0 <= run.start {
                    load += events[ei].1;
                    ei += 1;
                }
                let mut seg_start = run.start;
                loop {
                    let next = if ei < events.len() {
                        events[ei].0
                    } else {
                        u32::MAX
                    };
                    let seg_end = if next <= run.end { next - 1 } else { run.end };
                    if seg_start <= seg_end
                        && load > index.min_in(t, seg_start as usize, seg_end as usize) + EPS
                    {
                        return false;
                    }
                    if next > run.end {
                        break;
                    }
                    while ei < events.len() && events[ei].0 == next {
                        load += events[ei].1;
                        ei += 1;
                    }
                    seg_start = next;
                }
            }
            true
        }
    }

    /// Total profit of a selection.
    pub fn total_profit(&self, selection: &[InstanceId]) -> f64 {
        selection.iter().map(|&d| self.profit(d)).sum()
    }

    /// Restricts a selection to the instances scheduled on network `t`.
    pub fn restrict_to_network(&self, selection: &[InstanceId], t: NetworkId) -> Vec<InstanceId> {
        selection
            .iter()
            .copied()
            .filter(|&d| self.instances[d.index()].network == t)
            .collect()
    }
}

/// A demand joining a universe through
/// [`DemandInstanceUniverse::apply_demand_delta`]: its profit and height
/// plus the pre-computed instances in canonical enumeration order (per
/// accessible network ascending, then per admissible start time ascending —
/// exactly the order `TreeProblem::universe` / `LineProblem::universe`
/// would enumerate them).
#[derive(Debug, Clone)]
pub struct ArrivingDemand {
    /// Profit of the demand (shared by all its instances).
    pub profit: f64,
    /// Height of the demand (shared by all its instances).
    pub height: f64,
    /// The instances to create: `(network, path, start)` triples in
    /// canonical order.
    pub instances: Vec<(NetworkId, EdgePath, Option<u32>)>,
}

/// The renumbering produced by one
/// [`DemandInstanceUniverse::apply_demand_delta`] splice, reusable across
/// epochs (every buffer is cleared and refilled in place).
///
/// A splice removes the instances of the expired demands and appends the
/// instances of the arriving demands at the tail, renumbering both demand
/// and instance ids so the result is **byte-identical** to a from-scratch
/// universe over the surviving demand set (survivors keep their relative
/// order; arrivals follow). The delta records the old→new id maps, which
/// instances are new, and the *dirty networks* — the networks that gained
/// or lost at least one instance. Everything outside a dirty network is
/// untouched up to renumbering, which is what lets
/// [`crate::ShardedUniverse::apply_delta`] and the sharded conflict engine
/// rebuild per-shard state only where the batch actually landed.
#[derive(Debug, Clone, Default)]
pub struct UniverseDelta {
    /// Old instance id → new instance id; `u32::MAX` for removed instances.
    instance_remap: Vec<u32>,
    /// Old demand id → new demand id; `u32::MAX` for expired demands.
    demand_remap: Vec<u32>,
    /// Instances with new id `>= first_added` were appended by the splice.
    first_added: u32,
    /// Per-network flag: `true` when the network gained or lost instances.
    dirty: Vec<bool>,
    /// Splice scratch: per-old-demand expiry marks, reused across epochs so
    /// a steady-state splice allocates nothing.
    expired_mark: Vec<bool>,
}

impl UniverseDelta {
    /// An empty delta, ready to be filled by a splice.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, old_instances: usize, old_demands: usize, networks: usize) {
        self.instance_remap.clear();
        self.instance_remap.reserve(old_instances);
        self.demand_remap.clear();
        self.demand_remap.reserve(old_demands);
        self.dirty.clear();
        self.dirty.resize(networks, false);
        self.expired_mark.clear();
        self.expired_mark.resize(old_demands, false);
        self.first_added = 0;
    }

    /// Old instance id → new instance id map (`u32::MAX` = removed).
    #[inline]
    pub fn instance_remap(&self) -> &[u32] {
        &self.instance_remap
    }

    /// The new id of a pre-splice instance, or `None` if it was removed.
    #[inline]
    pub fn map_instance(&self, old: InstanceId) -> Option<InstanceId> {
        match self.instance_remap[old.index()] {
            u32::MAX => None,
            new => Some(InstanceId(new)),
        }
    }

    /// Old demand id → new demand id map (`u32::MAX` = expired).
    #[inline]
    pub fn demand_remap(&self) -> &[u32] {
        &self.demand_remap
    }

    /// The new id of a pre-splice demand, or `None` if it expired.
    #[inline]
    pub fn map_demand(&self, old: DemandId) -> Option<DemandId> {
        match self.demand_remap[old.index()] {
            u32::MAX => None,
            new => Some(DemandId(new)),
        }
    }

    /// First instance id that belongs to an arriving demand (all appended
    /// instances form a suffix of the new id space).
    #[inline]
    pub fn first_added(&self) -> usize {
        self.first_added as usize
    }

    /// The per-network dirty bitmap: `dirty()[t]` is `true` when network
    /// `t` gained or lost at least one instance in the splice.
    #[inline]
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }

    /// Iterates over the dirty networks.
    pub fn dirty_networks(&self) -> impl Iterator<Item = NetworkId> + '_ {
        self.dirty
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(t, _)| NetworkId::new(t))
    }

    /// Number of dirty networks.
    pub fn num_dirty(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Number of instances the universe held **before** the splice (the
    /// domain of [`instance_remap`](UniverseDelta::instance_remap)).
    #[inline]
    pub fn old_num_instances(&self) -> usize {
        self.instance_remap.len()
    }

    /// Number of demands the universe held **before** the splice (the
    /// domain of [`demand_remap`](UniverseDelta::demand_remap)).
    #[inline]
    pub fn old_num_demands(&self) -> usize {
        self.demand_remap.len()
    }

    /// Iterates over the **old** ids of the instances the splice removed —
    /// the stable id-map query the warm re-solve engine uses to clear the
    /// expired instances' dual contributions.
    pub fn removed_instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.instance_remap
            .iter()
            .enumerate()
            .filter(|&(_, &new)| new == u32::MAX)
            .map(|(old, _)| InstanceId::new(old))
    }
}

impl DemandInstanceUniverse {
    /// Splices a demand batch into the universe in place: removes every
    /// instance of the demands in `expired` (current dense ids) and appends
    /// the instances of `arrivals` at the tail, renumbering demand and
    /// instance ids densely.
    ///
    /// The result is byte-identical to building a fresh universe over the
    /// surviving demands (in their current relative order) followed by the
    /// arrivals: survivors keep their relative order, so the compaction is
    /// a stable shift, and all appended instances form a suffix. Paths of
    /// surviving instances are moved, not recomputed — the splice costs
    /// `O(|D| + Σ new instances)` with no per-edge or per-path work.
    ///
    /// `delta` is cleared and refilled with the old→new id maps and the
    /// dirty-network bitmap (reuse one [`UniverseDelta`] across epochs to
    /// avoid reallocation).
    ///
    /// # Panics
    ///
    /// Panics when an expired id is out of range or listed twice, or when
    /// an arriving instance names an unknown network.
    pub fn apply_demand_delta(
        &mut self,
        expired: &[DemandId],
        arrivals: &[ArrivingDemand],
        delta: &mut UniverseDelta,
    ) {
        delta.reset(self.instances.len(), self.num_demands, self.num_networks);

        // Demand renumbering: survivors compact stably, arrivals append.
        for &a in expired {
            assert!(a.index() < self.num_demands, "expired demand {a} unknown");
            assert!(!delta.expired_mark[a.index()], "demand {a} expired twice");
            delta.expired_mark[a.index()] = true;
        }
        let mut next_demand = 0u32;
        for r in &delta.expired_mark {
            delta
                .demand_remap
                .push(if *r { u32::MAX } else { next_demand });
            if !*r {
                next_demand += 1;
            }
        }

        // Compact the instance list in place (moves within the existing
        // buffer — no path clones and no reallocation of the instance
        // vector, so a clean steady-state epoch is allocation-free).
        let mut next_instance = 0u32;
        {
            let UniverseDelta {
                instance_remap,
                demand_remap,
                dirty,
                expired_mark,
                ..
            } = delta;
            self.instances.retain_mut(|inst| {
                if expired_mark[inst.demand.index()] {
                    instance_remap.push(u32::MAX);
                    dirty[inst.network.index()] = true;
                    false
                } else {
                    instance_remap.push(next_instance);
                    inst.id = InstanceId(next_instance);
                    inst.demand = DemandId(demand_remap[inst.demand.index()]);
                    next_instance += 1;
                    true
                }
            });
        }
        delta.first_added = next_instance;

        // Append the arrivals.
        for arrival in arrivals {
            let demand = DemandId(next_demand);
            next_demand += 1;
            for (network, path, start) in &arrival.instances {
                assert!(
                    network.index() < self.num_networks,
                    "arriving instance names unknown network {network}"
                );
                delta.dirty[network.index()] = true;
                self.instances.push(DemandInstance {
                    id: InstanceId(next_instance),
                    demand,
                    network: *network,
                    profit: arrival.profit,
                    height: arrival.height,
                    path: path.clone(),
                    start: *start,
                });
                next_instance += 1;
            }
        }
        self.num_demands = next_demand as usize;

        // Rebuild the secondary indices (O(|D|), allocation-reusing).
        for group in &mut self.by_demand {
            group.clear();
        }
        self.by_demand.resize(self.num_demands, Vec::new());
        for group in &mut self.by_network {
            group.clear();
        }
        for inst in &self.instances {
            self.by_demand[inst.demand.index()].push(inst.id);
            self.by_network[inst.network.index()].push(inst.id);
        }
    }
}

/// Incremental congestion accounting for greedy selection loops.
///
/// The second phase of the two-phase framework repeatedly asks "does
/// instance `d` still fit next to everything selected so far?". Answering
/// that with [`DemandInstanceUniverse::can_add`] costs `O(|selection|)` per
/// query; a `LoadTracker` instead maintains the per-edge loads of the
/// running selection, so each query and each commit costs `O(path(d))`
/// regardless of how much is already selected — the whole phase is
/// `O(Σ path length of the raised instances)`.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    /// Per-network, per-edge load of the committed selection.
    loads: Vec<Vec<f64>>,
    /// Demands already covered by a committed instance.
    used_demand: Vec<bool>,
    /// Instances already committed.
    selected: Vec<bool>,
}

impl LoadTracker {
    /// Creates an empty tracker for a universe.
    pub fn new(universe: &DemandInstanceUniverse) -> Self {
        Self {
            loads: (0..universe.num_networks())
                .map(|t| vec![0.0; universe.num_edges(NetworkId::new(t))])
                .collect(),
            used_demand: vec![false; universe.num_demands()],
            selected: vec![false; universe.num_instances()],
        }
    }

    /// Returns `true` if `d` can join the committed selection without
    /// violating demand-uniqueness or any edge capacity.
    pub fn fits(&self, universe: &DemandInstanceUniverse, d: InstanceId) -> bool {
        let inst = universe.instance(d);
        if self.selected[d.index()] || self.used_demand[inst.demand.index()] {
            return false;
        }
        let loads = &self.loads[inst.network.index()];
        let caps = &universe.capacities[inst.network.index()];
        for run in inst.path.runs() {
            for e in run.start as usize..=run.end as usize {
                if loads[e] + inst.height > caps[e] + EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Commits `d` to the selection (the caller must have checked
    /// [`LoadTracker::fits`]).
    pub fn commit(&mut self, universe: &DemandInstanceUniverse, d: InstanceId) {
        let inst = universe.instance(d);
        debug_assert!(!self.selected[d.index()]);
        debug_assert!(!self.used_demand[inst.demand.index()]);
        self.selected[d.index()] = true;
        self.used_demand[inst.demand.index()] = true;
        let loads = &mut self.loads[inst.network.index()];
        for run in inst.path.runs() {
            for load in &mut loads[run.start as usize..=run.end as usize] {
                *load += inst.height;
            }
        }
    }

    /// Commits `d` if it fits; returns whether it was committed.
    pub fn try_commit(&mut self, universe: &DemandInstanceUniverse, d: InstanceId) -> bool {
        if self.fits(universe, d) {
            self.commit(universe, d);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Universe mirroring Figure 1 of the paper: a single line resource of 10
    /// timeslots with demands A, B, C of heights 0.5, 0.7, 0.4.
    ///
    /// A occupies timeslots 0..=4, B occupies 3..=5, C occupies 6..=9, so
    /// {A, C} and {B, C} fit but {A, B} does not (0.5 + 0.7 > 1 on slots
    /// 3 and 4).
    fn figure1_universe() -> DemandInstanceUniverse {
        let mk = |i: usize, a: usize, s: usize, e: usize, h: f64| DemandInstance {
            id: InstanceId::new(i),
            demand: DemandId::new(a),
            network: NetworkId::new(0),
            profit: 1.0,
            height: h,
            path: EdgePath::interval(s, e),
            start: Some(s as u32),
        };
        DemandInstanceUniverse::new(
            vec![
                mk(0, 0, 0, 4, 0.5),
                mk(1, 1, 3, 5, 0.7),
                mk(2, 2, 6, 9, 0.4),
            ],
            3,
            vec![10],
            None,
        )
    }

    #[test]
    fn figure1_feasibility_matches_paper() {
        let u = figure1_universe();
        let a = InstanceId(0);
        let b = InstanceId(1);
        let c = InstanceId(2);
        // {A, C} and {B, C} can be scheduled, {A, B} cannot (0.5 + 0.7 > 1 on
        // shared timeslots 3, 4).
        assert!(u.is_feasible(&[a, c]));
        assert!(u.is_feasible(&[b, c]));
        assert!(!u.is_feasible(&[a, b]));
        assert!(!u.is_feasible(&[a, b, c]));
    }

    #[test]
    fn overlap_and_conflict() {
        let u = figure1_universe();
        assert!(u.overlapping(InstanceId(0), InstanceId(1)));
        assert!(!u.overlapping(InstanceId(1), InstanceId(2)));
        assert!(!u.overlapping(InstanceId(0), InstanceId(2)));
        assert!(u.conflicting(InstanceId(0), InstanceId(1)));
        assert!(!u.conflicting(InstanceId(0), InstanceId(2)));
        assert!(!u.conflicting(InstanceId(0), InstanceId(0)));
    }

    #[test]
    fn independent_set_check_unit_height_semantics() {
        let u = figure1_universe();
        assert!(u.is_independent_set(&[InstanceId(0), InstanceId(2)]));
        assert!(!u.is_independent_set(&[InstanceId(0), InstanceId(1)]));
        assert!(u.is_independent_set(&[]));
        // A repeated instance is not an independent set.
        assert!(!u.is_independent_set(&[InstanceId(0), InstanceId(0)]));
    }

    #[test]
    fn can_add_respects_capacity_and_demand_uniqueness() {
        let u = figure1_universe();
        assert!(u.can_add(&[InstanceId(0)], InstanceId(2)));
        assert!(!u.can_add(&[InstanceId(0)], InstanceId(1)));
        assert!(!u.can_add(&[InstanceId(0)], InstanceId(0)));
    }

    #[test]
    fn loads_and_profit() {
        let u = figure1_universe();
        let loads = u.edge_loads(NetworkId(0), &[InstanceId(0), InstanceId(2)]);
        assert!((loads[0] - 0.5).abs() < 1e-12);
        assert!((loads[6] - 0.4).abs() < 1e-12);
        assert!((loads[5] - 0.0).abs() < 1e-12);
        assert!((u.total_profit(&[InstanceId(0), InstanceId(2)]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_demand_instances_conflict() {
        // Two copies of the same demand on different networks conflict even
        // though their paths live on different networks.
        let mk = |i: usize, t: usize| DemandInstance {
            id: InstanceId::new(i),
            demand: DemandId::new(0),
            network: NetworkId::new(t),
            profit: 2.0,
            height: 1.0,
            path: EdgePath::interval(0, 1),
            start: None,
        };
        let u = DemandInstanceUniverse::new(vec![mk(0, 0), mk(1, 1)], 1, vec![3, 3], None);
        assert!(u.conflicting(InstanceId(0), InstanceId(1)));
        assert!(!u.overlapping(InstanceId(0), InstanceId(1)));
        assert!(!u.is_feasible(&[InstanceId(0), InstanceId(1)]));
        assert!(u.is_feasible(&[InstanceId(0)]));
    }

    #[test]
    fn capacitated_universe() {
        // One edge with capacity 2.0 admits two unit-height instances of
        // different demands.
        let mk = |i: usize, a: usize| DemandInstance {
            id: InstanceId::new(i),
            demand: DemandId::new(a),
            network: NetworkId::new(0),
            profit: 1.0,
            height: 1.0,
            path: EdgePath::interval(0, 0),
            start: None,
        };
        let u = DemandInstanceUniverse::new(
            vec![mk(0, 0), mk(1, 1), mk(2, 2)],
            3,
            vec![1],
            Some(vec![vec![2.0]]),
        );
        assert!(!u.is_uniform_capacity());
        assert!(u.is_feasible(&[InstanceId(0), InstanceId(1)]));
        assert!(!u.is_feasible(&[InstanceId(0), InstanceId(1), InstanceId(2)]));
    }

    /// Splice vs from-scratch: removing demands 0 and 2 of the Figure 1
    /// universe and appending a new one must reproduce the fresh build
    /// exactly, field by field.
    #[test]
    fn splice_matches_from_scratch_rebuild() {
        let mut u = figure1_universe();
        let arrival = ArrivingDemand {
            profit: 4.0,
            height: 0.9,
            instances: vec![
                (NetworkId(0), EdgePath::interval(1, 2), Some(1)),
                (NetworkId(0), EdgePath::interval(2, 3), Some(2)),
            ],
        };
        let mut delta = UniverseDelta::new();
        u.apply_demand_delta(
            &[DemandId(0), DemandId(2)],
            std::slice::from_ref(&arrival),
            &mut delta,
        );

        // From scratch: survivor (old demand 1) then the arrival.
        let fresh = DemandInstanceUniverse::new(
            vec![
                DemandInstance {
                    id: InstanceId(0),
                    demand: DemandId(0),
                    network: NetworkId(0),
                    profit: 1.0,
                    height: 0.7,
                    path: EdgePath::interval(3, 5),
                    start: Some(3),
                },
                DemandInstance {
                    id: InstanceId(1),
                    demand: DemandId(1),
                    network: NetworkId(0),
                    profit: 4.0,
                    height: 0.9,
                    path: EdgePath::interval(1, 2),
                    start: Some(1),
                },
                DemandInstance {
                    id: InstanceId(2),
                    demand: DemandId(1),
                    network: NetworkId(0),
                    profit: 4.0,
                    height: 0.9,
                    path: EdgePath::interval(2, 3),
                    start: Some(2),
                },
            ],
            2,
            vec![10],
            None,
        );
        assert_eq!(u.num_instances(), fresh.num_instances());
        assert_eq!(u.num_demands(), fresh.num_demands());
        for d in u.instance_ids() {
            assert_eq!(u.instance(d), fresh.instance(d), "instance {d}");
        }
        for a in 0..u.num_demands() {
            assert_eq!(
                u.instances_of_demand(DemandId::new(a)),
                fresh.instances_of_demand(DemandId::new(a))
            );
        }
        assert_eq!(
            u.instances_on_network(NetworkId(0)),
            fresh.instances_on_network(NetworkId(0))
        );
        // Delta bookkeeping: old instance 1 survived as 0, the rest removed,
        // the two new instances form the tail.
        assert_eq!(delta.instance_remap(), &[u32::MAX, 0, u32::MAX]);
        assert_eq!(delta.demand_remap(), &[u32::MAX, 0, u32::MAX]);
        assert_eq!(delta.first_added(), 1);
        assert_eq!(delta.map_instance(InstanceId(1)), Some(InstanceId(0)));
        assert_eq!(delta.map_instance(InstanceId(0)), None);
        assert_eq!(delta.map_demand(DemandId(1)), Some(DemandId(0)));
        assert_eq!(delta.num_dirty(), 1);
        assert_eq!(
            delta.dirty_networks().collect::<Vec<_>>(),
            vec![NetworkId(0)]
        );
    }

    #[test]
    fn splice_marks_only_touched_networks_dirty() {
        // Two networks; expire a demand living only on network 1.
        let mk = |i: usize, a: usize, t: usize| DemandInstance {
            id: InstanceId::new(i),
            demand: DemandId::new(a),
            network: NetworkId::new(t),
            profit: 1.0,
            height: 1.0,
            path: EdgePath::interval(0, 1),
            start: None,
        };
        let mut u = DemandInstanceUniverse::new(
            vec![mk(0, 0, 0), mk(1, 1, 1), mk(2, 2, 0)],
            3,
            vec![3, 3],
            None,
        );
        let mut delta = UniverseDelta::new();
        u.apply_demand_delta(&[DemandId(1)], &[], &mut delta);
        assert_eq!(delta.dirty(), &[false, true]);
        assert_eq!(u.num_instances(), 2);
        assert_eq!(u.num_demands(), 2);
        // Survivors keep relative order under renumbered ids.
        assert_eq!(u.instance(InstanceId(1)).demand, DemandId(1));
        assert_eq!(u.instances_on_network(NetworkId(1)), &[] as &[InstanceId]);
    }

    #[test]
    #[should_panic(expected = "expired twice")]
    fn splice_rejects_duplicate_expiry() {
        let mut u = figure1_universe();
        let mut delta = UniverseDelta::new();
        u.apply_demand_delta(&[DemandId(0), DemandId(0)], &[], &mut delta);
    }

    #[test]
    fn stats_accessors() {
        let u = figure1_universe();
        assert_eq!(u.num_instances(), 3);
        assert_eq!(u.num_demands(), 3);
        assert_eq!(u.num_networks(), 1);
        assert_eq!(u.total_edges(), 10);
        assert!(!u.is_unit_height());
        assert!(u.is_uniform_capacity());
        assert!((u.min_height() - 0.4).abs() < 1e-12);
        assert_eq!(u.instances_of_demand(DemandId(1)), &[InstanceId(1)]);
        assert_eq!(u.instances_on_network(NetworkId(0)).len(), 3);
        assert_eq!(
            u.restrict_to_network(&[InstanceId(0), InstanceId(2)], NetworkId(0))
                .len(),
            2
        );
    }
}
