//! Tree networks: connected trees over the shared vertex set `V`.
//!
//! In the paper every network `T ∈ T` is a connected tree over the `n`
//! vertices of `V` (Section 2), so the path between any pair of vertices is
//! unique. [`TreeNetwork`] stores the edge list, an adjacency structure, a
//! rooted view (parent/depth arrays rooted at vertex 0), an LCA index and a
//! heavy-light decomposition ([`HldIndex`]).
//!
//! **Canonical edge order.** At construction the edge indices are relabeled
//! so that [`EdgeId`] equals the HLD edge position (`pos(child) − 1`): the
//! edges of every heavy chain are consecutive, and the unique path between
//! any two vertices decomposes into at most `2⌈log₂ n⌉` contiguous interval
//! runs. [`TreeNetwork::path_edges`] therefore answers `path(d)` queries in
//! `O(log n)` time and memory — no per-edge work at all. The relabeling is
//! deterministic and idempotent (rebuilding from an already-canonical edge
//! list is the identity), so serialized problems round-trip stably; for a
//! path graph (the line/timeline view) the canonical order coincides with
//! the natural `edge i = timeslot i` numbering.

use crate::error::GraphError;
use crate::hld::HldIndex;
use crate::ids::{EdgeId, NetworkId, VertexId};
use crate::lca::LcaIndex;
use crate::path::EdgePath;
use std::collections::VecDeque;

/// A connected tree network over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct TreeNetwork {
    id: NetworkId,
    n: usize,
    /// Edge list in canonical HLD order; edge `i` connects `edges[i].0` and
    /// `edges[i].1`.
    edges: Vec<(VertexId, VertexId)>,
    /// Adjacency: for each vertex the list of `(neighbour, edge index)`.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    /// Parent of each vertex when rooted at vertex 0 (`None` for the root),
    /// together with the edge to the parent.
    parent: Vec<Option<(VertexId, EdgeId)>>,
    /// Depth of each vertex when rooted at vertex 0 (root depth 0).
    depth: Vec<u32>,
    lca: Option<LcaIndex>,
    hld: Option<HldIndex>,
}

impl TreeNetwork {
    /// Builds a tree network from an edge list.
    ///
    /// The edge list must describe a connected tree over vertices `0..n`
    /// (exactly `n - 1` edges, no self-loops, no duplicates, connected);
    /// otherwise a [`GraphError`] is returned.
    ///
    /// Edge indices are canonicalized to heavy-light-decomposition order
    /// (see the module docs): the reported [`EdgeId`]s of the constructed
    /// network are the HLD edge positions, not the input positions. The
    /// relabeling is deterministic and idempotent, and it is the identity
    /// for path graphs listed in their natural order.
    pub fn new(
        id: NetworkId,
        n: usize,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        if n == 0 || edges.len() + 1 != n {
            return Err(GraphError::NotATree {
                network: id,
                vertices: n,
                edges: edges.len(),
            });
        }
        let mut adj: Vec<Vec<(VertexId, EdgeId)>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for (i, &(u, v)) in edges.iter().enumerate() {
            for w in [u, v] {
                if w.index() >= n {
                    return Err(GraphError::VertexOutOfRange {
                        network: id,
                        vertex: w,
                        vertices: n,
                    });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop {
                    network: id,
                    vertex: u,
                });
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { network: id, u, v });
            }
            adj[u.index()].push((v, EdgeId::new(i)));
            adj[v.index()].push((u, EdgeId::new(i)));
        }

        // BFS from vertex 0 to establish parents/depths and check
        // connectivity (n - 1 edges + connected ⇒ tree).
        let mut parent: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[0] = true;
        queue.push_back(VertexId(0));
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(v, e) in &adj[u.index()] {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some((u, e));
                    depth[v.index()] = depth[u.index()] + 1;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        if count != n {
            return Err(GraphError::Disconnected { network: id });
        }

        let parent_only: Vec<Option<VertexId>> = parent.iter().map(|p| p.map(|(v, _)| v)).collect();
        let lca = LcaIndex::new(&parent_only, &depth);

        // Canonicalize edge ids to HLD order: the parent edge of vertex `v`
        // becomes edge `pos(v) − 1`. Children lists follow adjacency order
        // (= edge input order), which makes the relabeling idempotent.
        let children = children_in_adjacency_order(&adj, &parent_only);
        let hld = HldIndex::new(&parent_only, &depth, &children);
        let mut perm = vec![0u32; edges.len()]; // old edge id -> new edge id
        for (v, p) in parent.iter().enumerate() {
            if let Some((_, old_edge)) = p {
                perm[old_edge.index()] = hld
                    .parent_edge_pos(VertexId(v as u32))
                    .expect("non-root vertex has a parent edge");
            }
        }
        let mut relabeled_edges = vec![(VertexId(0), VertexId(0)); edges.len()];
        for (old, &uv) in edges.iter().enumerate() {
            relabeled_edges[perm[old] as usize] = uv;
        }
        let adj = adj
            .into_iter()
            .map(|nbrs| {
                nbrs.into_iter()
                    .map(|(v, e)| (v, EdgeId(perm[e.index()])))
                    .collect()
            })
            .collect();
        let parent = parent
            .into_iter()
            .map(|p| p.map(|(v, e)| (v, EdgeId(perm[e.index()]))))
            .collect();

        Ok(Self {
            id,
            n,
            edges: relabeled_edges,
            adj,
            parent,
            depth,
            lca: Some(lca),
            hld: Some(hld),
        })
    }

    /// Builds the path graph `0 - 1 - ... - (n-1)`, the timeline view used by
    /// line networks (Section 1, "Line-Networks"). Edge `i` connects vertices
    /// `i` and `i + 1` and corresponds to timeslot `i`.
    pub fn line(id: NetworkId, n: usize) -> Result<Self, GraphError> {
        let edges = (0..n.saturating_sub(1))
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        Self::new(id, n, edges)
    }

    /// Rebuilds the (non-serialized) LCA and HLD indices after
    /// deserialization. Rebuilding the HLD from the stored adjacency
    /// reproduces the canonical edge order already in effect (the
    /// construction is idempotent), so edge ids are unchanged.
    pub fn ensure_index(&mut self) {
        if self.lca.is_none() || self.hld.is_none() {
            let parent_only: Vec<Option<VertexId>> =
                self.parent.iter().map(|p| p.map(|(v, _)| v)).collect();
            if self.lca.is_none() {
                self.lca = Some(LcaIndex::new(&parent_only, &self.depth));
            }
            if self.hld.is_none() {
                let children = children_in_adjacency_order(&self.adj, &parent_only);
                self.hld = Some(HldIndex::new(&parent_only, &self.depth, &children));
            }
        }
    }

    fn lca_index(&self) -> &LcaIndex {
        self.lca
            .as_ref()
            .expect("LCA index missing; call ensure_index() after deserialization")
    }

    fn hld_index(&self) -> &HldIndex {
        self.hld
            .as_ref()
            .expect("HLD index missing; call ensure_index() after deserialization")
    }

    /// The heavy-light decomposition underlying the canonical edge order.
    pub fn hld(&self) -> &HldIndex {
        self.hld_index()
    }

    /// The identifier of this network.
    #[inline]
    pub fn id(&self) -> NetworkId {
        self.id
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges (`n - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// End-points of edge `e`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.n).map(VertexId::new)
    }

    /// Iterates over all edges as `(edge id, endpoints)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, (VertexId, VertexId))> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &uv)| (EdgeId::new(i), uv))
    }

    /// Neighbours of `v` together with the connecting edge.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The edge between `u` and `v`, if they are adjacent.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.adj[u.index()]
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
    }

    /// Parent of `v` in the rooted view (rooted at vertex 0).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Depth of `v` in the rooted view (root has depth 0).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// Lowest common ancestor of `u` and `v` with respect to the rooted view.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        self.lca_index().lca(u, v)
    }

    /// Number of edges on the unique path between `u` and `v`.
    pub fn distance(&self, u: VertexId, v: VertexId) -> u32 {
        self.lca_index().distance(u, v)
    }

    /// The unique path between `u` and `v` as a set of edges.
    ///
    /// Thanks to the canonical HLD edge order this is `O(log n)` time and
    /// memory — the result holds at most `2⌈log₂ n⌉` interval runs instead
    /// of one entry per edge.
    pub fn path_edges(&self, u: VertexId, v: VertexId) -> EdgePath {
        EdgePath::from_runs(self.hld_index().path_runs(u, v))
    }

    /// The unique path between `u` and `v` as a vertex sequence from `u` to
    /// `v` (inclusive).
    pub fn path_vertices(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let l = self.lca(u, v);
        let mut up = Vec::new();
        let mut x = u;
        while x != l {
            up.push(x);
            x = self.parent[x.index()]
                .expect("non-root vertex must have a parent")
                .0;
        }
        up.push(l);
        let mut down = Vec::new();
        let mut y = v;
        while y != l {
            down.push(y);
            y = self.parent[y.index()]
                .expect("non-root vertex must have a parent")
                .0;
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// Returns `true` if the path between `u` and `v` passes through vertex
    /// `w`.
    pub fn path_passes_through(&self, u: VertexId, v: VertexId, w: VertexId) -> bool {
        self.distance(u, w) + self.distance(w, v) == self.distance(u, v)
    }

    /// Vertices of the connected component of `start` in the forest obtained
    /// by deleting `removed` from the tree (`removed` itself is excluded).
    ///
    /// This is the "splitting a component by a node" operation of
    /// Section 4.2.
    pub fn component_avoiding(&self, start: VertexId, removed: &[VertexId]) -> Vec<VertexId> {
        let mut blocked = vec![false; self.n];
        for &r in removed {
            blocked[r.index()] = true;
        }
        if blocked[start.index()] {
            return Vec::new();
        }
        let mut visited = vec![false; self.n];
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            out.push(u);
            for &(v, _) in &self.adj[u.index()] {
                if !visited[v.index()] && !blocked[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        out
    }
}

/// Children of every vertex in adjacency order (= edge order), skipping the
/// parent; this is the deterministic order the HLD tie-breaking relies on.
fn children_in_adjacency_order(
    adj: &[Vec<(VertexId, EdgeId)>],
    parent: &[Option<VertexId>],
) -> Vec<Vec<VertexId>> {
    adj.iter()
        .enumerate()
        .map(|(v, nbrs)| {
            nbrs.iter()
                .filter(|&&(w, _)| parent[w.index()] == Some(VertexId(v as u32)))
                .map(|&(w, _)| w)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example tree-network of Figure 6 in the paper (vertices renumbered
    /// from 1..14 to 0..13):
    ///
    /// paper vertex i ↦ here i - 1.
    pub fn figure6_tree() -> TreeNetwork {
        // Paper edges (1-based): (1,2), (2,5), (5,9), (5,8), (2,4), (8,12),
        // (8,13), (9,11), (9,10), (1,6), (6,14), (1,3), (3,7).
        let raw = [
            (1, 2),
            (2, 5),
            (5, 9),
            (5, 8),
            (2, 4),
            (8, 12),
            (8, 13),
            (9, 11),
            (9, 10),
            (1, 6),
            (6, 14),
            (1, 3),
            (3, 7),
        ];
        let edges = raw
            .iter()
            .map(|&(u, v)| (VertexId::new(u - 1), VertexId::new(v - 1)))
            .collect();
        TreeNetwork::new(NetworkId::new(0), 14, edges).expect("figure 6 tree is valid")
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let err =
            TreeNetwork::new(NetworkId::new(0), 3, vec![(VertexId(0), VertexId(1))]).unwrap_err();
        assert!(matches!(err, GraphError::NotATree { .. }));
    }

    #[test]
    fn rejects_disconnected() {
        // 4 vertices, 3 edges but with a duplicate-free cycle 0-1-2-0 leaves
        // vertex 3 unreachable.
        let err = TreeNetwork::new(
            NetworkId::new(0),
            4,
            vec![
                (VertexId(0), VertexId(1)),
                (VertexId(1), VertexId(2)),
                (VertexId(2), VertexId(0)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Disconnected { .. }));
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let err =
            TreeNetwork::new(NetworkId::new(0), 2, vec![(VertexId(0), VertexId(0))]).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { .. }));

        let err = TreeNetwork::new(
            NetworkId::new(0),
            3,
            vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(0))],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err =
            TreeNetwork::new(NetworkId::new(0), 2, vec![(VertexId(0), VertexId(5))]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn line_constructor() {
        let line = TreeNetwork::line(NetworkId::new(1), 5).unwrap();
        assert_eq!(line.num_vertices(), 5);
        assert_eq!(line.num_edges(), 4);
        // The canonical HLD order is the identity on path graphs, so edge
        // `i` is still timeslot `i` and the path is one interval run.
        let p = line.path_edges(VertexId(1), VertexId(4));
        assert_eq!(
            p.iter().collect::<Vec<_>>(),
            vec![EdgeId(1), EdgeId(2), EdgeId(3)]
        );
        assert_eq!(p.num_runs(), 1);
        for v in 1..5u32 {
            assert_eq!(line.parent(VertexId(v)).unwrap().1, EdgeId(v - 1));
        }
    }

    #[test]
    fn figure6_paths() {
        let t = figure6_tree();
        // Demand ⟨4, 13⟩ in the paper = vertices 3 and 12 here; its path is
        // 4-2-5-8-13 (paper), i.e. 4 edges.
        let p = t.path_edges(VertexId(3), VertexId(12));
        assert_eq!(p.len(), 4);
        // It passes through paper-vertex 5 (= 4 here) and paper-vertex 2 (= 1
        // here).
        assert!(t.path_passes_through(VertexId(3), VertexId(12), VertexId(4)));
        assert!(t.path_passes_through(VertexId(3), VertexId(12), VertexId(1)));
        assert!(!t.path_passes_through(VertexId(3), VertexId(12), VertexId(0)));

        let verts = t.path_vertices(VertexId(3), VertexId(12));
        assert_eq!(verts.first(), Some(&VertexId(3)));
        assert_eq!(verts.last(), Some(&VertexId(12)));
        assert_eq!(verts.len(), 5);
    }

    #[test]
    fn paths_are_symmetric() {
        let t = figure6_tree();
        for u in t.vertices() {
            for v in t.vertices() {
                assert_eq!(t.path_edges(u, v), t.path_edges(v, u));
                assert_eq!(t.distance(u, v), t.distance(v, u));
                assert_eq!(t.path_edges(u, v).len() as u32, t.distance(u, v));
            }
        }
    }

    #[test]
    fn component_avoiding_splits_tree() {
        let t = figure6_tree();
        // Removing paper-vertex 5 (index 4) separates paper-vertex 9's side
        // (9, 10, 11 ⇒ indices 8, 9, 10) from the rest.
        let comp = t.component_avoiding(VertexId(8), &[VertexId(4)]);
        let mut comp: Vec<usize> = comp.into_iter().map(|v| v.index()).collect();
        comp.sort_unstable();
        assert_eq!(comp, vec![8, 9, 10]);
        // Removing the start vertex itself yields nothing.
        assert!(t.component_avoiding(VertexId(8), &[VertexId(8)]).is_empty());
    }

    #[test]
    fn edge_between_and_degree() {
        let t = figure6_tree();
        assert!(t.edge_between(VertexId(0), VertexId(1)).is_some()); // paper edge (1, 2)
        assert!(t.edge_between(VertexId(0), VertexId(13)).is_none());
        assert_eq!(t.degree(VertexId(0)), 3); // paper vertex 1: neighbours 2, 6, 3
    }

    #[test]
    fn ensure_index_rebuilds_after_skip() {
        // The LCA/HLD indices are not serialized by the JSON layer; emulate
        // a deserialized value by dropping them and rebuilding.
        let t = figure6_tree();
        let mut copy = t.clone();
        copy.lca = None;
        copy.hld = None;
        copy.ensure_index();
        assert_eq!(copy.distance(VertexId(3), VertexId(12)), 4);
        assert_eq!(
            copy.path_edges(VertexId(3), VertexId(12)),
            t.path_edges(VertexId(3), VertexId(12))
        );
    }

    #[test]
    fn canonical_edge_order_is_idempotent() {
        // Rebuilding a network from its own (canonical) edge list must keep
        // every edge id stable — this is what keeps serialized problems
        // consistent across save/load round trips.
        let t = figure6_tree();
        let edge_list: Vec<(VertexId, VertexId)> = t.edges().map(|(_, uv)| uv).collect();
        let rebuilt = TreeNetwork::new(NetworkId::new(0), t.num_vertices(), edge_list).unwrap();
        for (e, uv) in t.edges() {
            assert_eq!(rebuilt.edge_endpoints(e), uv, "edge {e} moved on rebuild");
        }
        for u in t.vertices() {
            for v in t.vertices() {
                assert_eq!(t.path_edges(u, v), rebuilt.path_edges(u, v));
            }
        }
    }

    #[test]
    fn paths_decompose_into_logarithmically_many_runs() {
        let t = figure6_tree();
        let log2n = (usize::BITS - t.num_vertices().leading_zeros()) as usize;
        for u in t.vertices() {
            for v in t.vertices() {
                let p = t.path_edges(u, v);
                assert_eq!(p.len() as u32, t.distance(u, v));
                assert!(
                    p.num_runs() <= 2 * log2n,
                    "path {u} - {v} has {} runs",
                    p.num_runs()
                );
            }
        }
    }
}
