//! Shared fixtures reproducing the worked examples of the paper.
//!
//! These are used by tests, examples and benchmarks across the workspace so
//! that the figures of the paper (Figures 1, 2, 3 and 6) have a single
//! canonical encoding.

use crate::ids::{DemandId, NetworkId, VertexId};
use crate::line::LineProblem;
use crate::problem::TreeProblem;
use crate::tree::TreeNetwork;

/// The example tree-network of Figure 6 in the paper, with the paper's
/// 1-based vertex labels mapped to 0-based ids (paper vertex `i` ↦ `i - 1`).
///
/// Edges (paper labels): (1,2), (2,5), (5,9), (5,8), (2,4), (8,12), (8,13),
/// (9,11), (9,10), (1,6), (6,14), (1,3), (3,7). This reconstruction is
/// pinned down by the paper's worked examples: the path of ⟨4, 13⟩ is
/// 4-2-5-8-13, χ(2) = {1, 5} in Figure 3, and Appendix A captures ⟨4, 13⟩
/// at node 2 when rooting at node 1.
pub fn figure6_tree(id: NetworkId) -> TreeNetwork {
    let raw = [
        (1, 2),
        (2, 5),
        (5, 9),
        (5, 8),
        (2, 4),
        (8, 12),
        (8, 13),
        (9, 11),
        (9, 10),
        (1, 6),
        (6, 14),
        (1, 3),
        (3, 7),
    ];
    let edges = raw
        .iter()
        .map(|&(u, v)| (VertexId::new(u - 1), VertexId::new(v - 1)))
        .collect();
    TreeNetwork::new(id, 14, edges).expect("figure 6 tree is a valid tree")
}

/// Translates a 1-based paper vertex label into the 0-based [`VertexId`]
/// used by [`figure6_tree`].
pub fn paper_vertex(label: usize) -> VertexId {
    assert!(label >= 1, "paper vertex labels are 1-based");
    VertexId::new(label - 1)
}

/// A [`TreeProblem`] over the Figure 6 tree carrying the demand ⟨4, 13⟩
/// discussed throughout Section 4, plus the two demands of Figure 2
/// (⟨2, 3⟩-style short demand and ⟨12, 13⟩-style leaf demand), all with unit
/// height.
pub fn figure6_problem() -> TreeProblem {
    let tree = figure6_tree(NetworkId::new(0));
    let mut p = TreeProblem::new(tree.num_vertices());
    let t = p.add_tree(&tree).expect("figure 6 tree is valid");
    // Demand ⟨4, 13⟩ — the long demand used in the Section 4 walkthrough.
    p.add_unit_demand(paper_vertex(4), paper_vertex(13), 3.0, vec![t])
        .expect("valid demand");
    // Demand ⟨2, 3⟩ — passes through vertex 1 (paper), i.e. spans two
    // branches of the root.
    p.add_unit_demand(paper_vertex(2), paper_vertex(3), 2.0, vec![t])
        .expect("valid demand");
    // Demand ⟨12, 13⟩ — local to the subtree under paper vertex 8.
    p.add_unit_demand(paper_vertex(12), paper_vertex(13), 1.0, vec![t])
        .expect("valid demand");
    p
}

/// The three-demand single-resource instance of Figure 1: heights 0.5, 0.7
/// and 0.4 on a 10-slot timeline; `{A, C}` and `{B, C}` are feasible but
/// `{A, B}` is not.
pub fn figure1_line_problem() -> LineProblem {
    let mut p = LineProblem::new(10, 1);
    let acc = vec![NetworkId::new(0)];
    p.add_interval_demand(0, 5, 1.0, 0.5, acc.clone())
        .expect("demand A is valid"); // A: slots 0..=4
    p.add_interval_demand(3, 3, 1.0, 0.7, acc.clone())
        .expect("demand B is valid"); // B: slots 3..=5
    p.add_interval_demand(6, 4, 1.0, 0.4, acc)
        .expect("demand C is valid"); // C: slots 6..=9
    p
}

/// A multi-tree unit-height problem mirroring Figure 2's discussion: three
/// demands sharing an edge on one tree, with a second tree offering an
/// alternative route for one of them.
pub fn two_tree_problem() -> TreeProblem {
    // Tree 0: star around vertex 0 with a long spine 0-1-2-3.
    let mut p = TreeProblem::new(6);
    let t0 = p
        .add_network(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(2), VertexId(3)),
            (VertexId(0), VertexId(4)),
            (VertexId(0), VertexId(5)),
        ])
        .expect("tree 0 valid");
    // Tree 1: a different spanning tree where vertices 3 and 4 are adjacent.
    let t1 = p
        .add_network(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(3), VertexId(4)),
            (VertexId(0), VertexId(4)),
            (VertexId(0), VertexId(5)),
        ])
        .expect("tree 1 valid");
    p.add_unit_demand(VertexId(1), VertexId(3), 3.0, vec![t0, t1])
        .expect("demand 0 valid");
    p.add_unit_demand(VertexId(2), VertexId(3), 2.0, vec![t0])
        .expect("demand 1 valid");
    p.add_unit_demand(VertexId(3), VertexId(4), 2.5, vec![t0, t1])
        .expect("demand 2 valid");
    p
}

/// The demand ids used by [`figure6_problem`].
pub fn figure6_demand_ids() -> [DemandId; 3] {
    [DemandId::new(0), DemandId::new(1), DemandId::new(2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_tree_shape() {
        let t = figure6_tree(NetworkId::new(0));
        assert_eq!(t.num_vertices(), 14);
        assert_eq!(t.num_edges(), 13);
        // Paper: the path of ⟨4, 13⟩ passes through vertices 2, 5 and 8.
        assert!(t.path_passes_through(paper_vertex(4), paper_vertex(13), paper_vertex(2)));
        assert!(t.path_passes_through(paper_vertex(4), paper_vertex(13), paper_vertex(5)));
        assert!(t.path_passes_through(paper_vertex(4), paper_vertex(13), paper_vertex(8)));
        assert!(!t.path_passes_through(paper_vertex(4), paper_vertex(13), paper_vertex(1)));
    }

    #[test]
    fn figure6_problem_is_valid() {
        let p = figure6_problem();
        p.validate().unwrap();
        let u = p.universe();
        assert_eq!(u.num_instances(), 3);
    }

    #[test]
    fn figure1_problem_matches_figure() {
        let p = figure1_line_problem();
        let u = p.universe();
        assert_eq!(u.num_instances(), 3);
        assert!(u.is_feasible(&[crate::InstanceId(0), crate::InstanceId(2)]));
        assert!(!u.is_feasible(&[crate::InstanceId(0), crate::InstanceId(1)]));
    }

    #[test]
    fn two_tree_problem_offers_alternatives() {
        let p = two_tree_problem();
        let u = p.universe();
        // Demand 0 and demand 2 both have two instances; demand 1 has one.
        assert_eq!(u.num_instances(), 5);
        assert_eq!(u.instances_of_demand(DemandId(0)).len(), 2);
        assert_eq!(u.instances_of_demand(DemandId(1)).len(), 1);
        assert_eq!(u.instances_of_demand(DemandId(2)).len(), 2);
    }
}
