//! Range-minimum index over edge capacities.
//!
//! The capacitated (non-uniform bandwidth) setting of the paper repeatedly
//! asks "does a constant load `L` fit under every capacity of an edge
//! range?". A per-network **sparse table** answers the underlying
//! range-minimum query in `O(1)` after `O(E log E)` preprocessing, which
//! lets [`DemandInstanceUniverse::can_add`] and the eligibility pass of the
//! two-phase engine replace their per-edge fallback loops with one query
//! per interval run — the same `O(runs log E)` complexity the uniform path
//! enjoys.
//!
//! [`DemandInstanceUniverse::can_add`]: crate::DemandInstanceUniverse::can_add

use crate::ids::NetworkId;
use crate::path::EdgePath;

/// A standard sparse table for range-minimum queries over one capacity
/// array: `levels[k][i] = min(caps[i .. i + 2^k])`.
#[derive(Debug, Clone)]
struct SparseTable {
    levels: Vec<Vec<f64>>,
}

impl SparseTable {
    fn build(caps: &[f64]) -> Self {
        let n = caps.len();
        let mut levels = vec![caps.to_vec()];
        let mut width = 1usize;
        while 2 * width <= n {
            let prev = levels.last().expect("at least one level");
            let next: Vec<f64> = (0..=n - 2 * width)
                .map(|i| prev[i].min(prev[i + width]))
                .collect();
            levels.push(next);
            width *= 2;
        }
        Self { levels }
    }

    /// Minimum over the inclusive index range `[lo, hi]`.
    #[inline]
    fn min_in(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.levels[0].len());
        let len = hi - lo + 1;
        let k = usize::BITS as usize - 1 - len.leading_zeros() as usize;
        let level = &self.levels[k];
        level[lo].min(level[hi + 1 - (1 << k)])
    }
}

/// Per-network range-minimum tables over edge capacities.
///
/// Built once per universe (only when capacities are non-uniform — the
/// uniform setting never needs it) and immutable afterwards, like every
/// other universe-derived index.
#[derive(Debug, Clone)]
pub struct CapacityIndex {
    tables: Vec<SparseTable>,
}

impl CapacityIndex {
    /// Builds the index from per-network capacity arrays.
    pub fn build(capacities: &[Vec<f64>]) -> Self {
        Self {
            tables: capacities.iter().map(|c| SparseTable::build(c)).collect(),
        }
    }

    /// Minimum capacity over the inclusive edge range `[lo, hi]` of network
    /// `t`, in `O(1)`.
    #[inline]
    pub fn min_in(&self, t: NetworkId, lo: usize, hi: usize) -> f64 {
        self.tables[t.index()].min_in(lo, hi)
    }

    /// Minimum capacity over every edge of a path of network `t`
    /// (`O(runs)`); `f64::INFINITY` for an empty path.
    pub fn min_on_path(&self, t: NetworkId, path: &EdgePath) -> f64 {
        let table = &self.tables[t.index()];
        path.runs()
            .iter()
            .map(|run| table.min_in(run.start as usize, run.end as usize))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::EdgeRun;

    fn naive_min(caps: &[f64], lo: usize, hi: usize) -> f64 {
        caps[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn sparse_table_matches_naive_on_all_ranges() {
        let caps: Vec<f64> = (0..37)
            .map(|i| ((i * 7919 + 13) % 101) as f64 / 10.0 + 0.1)
            .collect();
        let index = CapacityIndex::build(std::slice::from_ref(&caps));
        for lo in 0..caps.len() {
            for hi in lo..caps.len() {
                assert_eq!(
                    index.min_in(NetworkId::new(0), lo, hi),
                    naive_min(&caps, lo, hi),
                    "range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn min_on_path_folds_over_runs() {
        let caps = vec![5.0, 1.0, 4.0, 3.0, 2.0, 6.0];
        let index = CapacityIndex::build(&[caps]);
        let path = EdgePath::from_runs(vec![EdgeRun::new(2, 3), EdgeRun::new(5, 5)]);
        assert_eq!(index.min_on_path(NetworkId::new(0), &path), 3.0);
        assert_eq!(
            index.min_on_path(NetworkId::new(0), &EdgePath::empty()),
            f64::INFINITY
        );
    }

    #[test]
    fn single_edge_networks_work() {
        let index = CapacityIndex::build(&[vec![2.5], vec![1.0, 9.0]]);
        assert_eq!(index.min_in(NetworkId::new(0), 0, 0), 2.5);
        assert_eq!(index.min_in(NetworkId::new(1), 0, 1), 1.0);
    }
}
