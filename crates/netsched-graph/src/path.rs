//! Edge-path representation and overlap predicates.
//!
//! A demand instance on a tree network corresponds to the unique path between
//! its end-points; we store it as a sorted list of edge indices of that
//! network. Overlap (`path(d1)` and `path(d2)` share an edge, Section 2) is a
//! sorted-list intersection test.

use crate::ids::EdgeId;

/// A set of edges of a single network, stored as a sorted, deduplicated list
/// of dense edge indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgePath {
    edges: Vec<EdgeId>,
}

impl EdgePath {
    /// Creates an empty path.
    pub fn empty() -> Self {
        Self { edges: Vec::new() }
    }

    /// Creates a path from an arbitrary list of edges (sorted and
    /// deduplicated internally).
    pub fn new(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Creates a path from a list of edges that is already sorted and
    /// deduplicated (checked in debug builds).
    pub fn from_sorted(edges: Vec<EdgeId>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]));
        Self { edges }
    }

    /// Creates a contiguous path of edges `[start, end]` (inclusive); used by
    /// the line/timeline view where edge `i` is the timeslot `i`.
    pub fn contiguous(start: usize, end: usize) -> Self {
        assert!(start <= end, "contiguous path must have start <= end");
        Self {
            edges: (start..=end).map(EdgeId::new).collect(),
        }
    }

    /// Number of edges on the path (the paper's `len(d)` for line networks).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the path contains no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if the path uses edge `e`.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Iterates over the edges in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Returns the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Returns `true` if the two paths share at least one edge
    /// ("overlapping" in Section 2, assuming both belong to the same
    /// network).
    pub fn intersects(&self, other: &EdgePath) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Returns the edges shared by the two paths.
    pub fn intersection(&self, other: &EdgePath) -> Vec<EdgeId> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.edges[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Returns `true` if any edge of `self` appears in the given sorted
    /// slice of edges (used for critical-edge / `π(d)` membership tests).
    pub fn intersects_slice(&self, edges: &[EdgeId]) -> bool {
        if edges.len() <= 4 {
            edges.iter().any(|e| self.contains(*e))
        } else {
            self.intersects(&EdgePath::new(edges.to_vec()))
        }
    }
}

impl FromIterator<EdgeId> for EdgePath {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a EdgePath {
    type Item = EdgeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, EdgeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> EdgePath {
        EdgePath::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let p = path(&[5, 1, 3, 1]);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.as_slice(),
            &[EdgeId(1), EdgeId(3), EdgeId(5)],
            "edges must be sorted and unique"
        );
    }

    #[test]
    fn contiguous_paths() {
        let p = EdgePath::contiguous(2, 5);
        assert_eq!(p.len(), 4);
        assert!(p.contains(EdgeId(2)));
        assert!(p.contains(EdgeId(5)));
        assert!(!p.contains(EdgeId(6)));
    }

    #[test]
    fn intersection_tests() {
        let a = path(&[1, 2, 3, 4]);
        let b = path(&[4, 5, 6]);
        let c = path(&[7, 8]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!b.intersects(&c));
        assert_eq!(a.intersection(&b), vec![EdgeId(4)]);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn intersects_slice_small_and_large() {
        let a = path(&[10, 20, 30]);
        assert!(a.intersects_slice(&[EdgeId(20)]));
        assert!(!a.intersects_slice(&[EdgeId(21)]));
        let large: Vec<EdgeId> = (0..10).map(EdgeId::new).collect();
        assert!(!a.intersects_slice(&large));
        let large_hit: Vec<EdgeId> = (25..35).map(EdgeId::new).collect();
        assert!(a.intersects_slice(&large_hit));
    }

    #[test]
    fn empty_path_behaviour() {
        let e = EdgePath::empty();
        assert!(e.is_empty());
        assert!(!e.intersects(&path(&[1, 2])));
        assert!(!path(&[1, 2]).intersects(&e));
    }

    #[test]
    fn from_iterator() {
        let p: EdgePath = vec![EdgeId(3), EdgeId(1)].into_iter().collect();
        assert_eq!(p.as_slice(), &[EdgeId(1), EdgeId(3)]);
        let collected: Vec<EdgeId> = (&p).into_iter().collect();
        assert_eq!(collected, vec![EdgeId(1), EdgeId(3)]);
    }
}
