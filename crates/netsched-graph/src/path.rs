//! Implicit interval paths and overlap predicates.
//!
//! A demand instance occupies a set of edges of a single network. Instead of
//! materializing that set as a sorted `Vec<EdgeId>` (`O(path length)` memory
//! and construction time), an [`EdgePath`] stores it as a short list of
//! *runs* — maximal contiguous edge-index intervals `[start, end]`:
//!
//! * line/windowed instances are a **single interval** held inline
//!   ([`EdgePath::interval`], no heap allocation at all), and
//! * tree paths are at most `O(log n)` runs, because [`crate::TreeNetwork`]
//!   canonicalizes edge indices to heavy-light-decomposition order (see
//!   [`crate::hld::HldIndex`]), under which any root-to-leaf walk crosses at
//!   most `⌈log₂ n⌉` chains.
//!
//! Every predicate is therefore sublinear in the path length: `contains` is
//! `O(log runs)`, `intersects` is a two-pointer merge over runs, and `len`
//! sums run widths. Congestion accounting in
//! [`crate::DemandInstanceUniverse`] exploits the same structure with
//! difference arrays (`+h` at `start`, `−h` at `end + 1`).

use crate::ids::EdgeId;

/// A maximal contiguous interval of edge indices `[start, end]` (inclusive
/// on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeRun {
    /// First edge index of the run.
    pub start: u32,
    /// Last edge index of the run (inclusive; `end >= start`).
    pub end: u32,
}

impl EdgeRun {
    /// Creates a run covering `[start, end]` (inclusive).
    #[inline]
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "run must have start <= end");
        Self { start, end }
    }

    /// Number of edges in the run.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start + 1) as usize
    }

    /// Runs are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if the run covers edge `e`.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.start <= e.0 && e.0 <= self.end
    }

    /// Returns `true` if the two runs share at least one edge.
    #[inline]
    pub fn overlaps(&self, other: &EdgeRun) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The shared edges of two runs, if any.
    #[inline]
    pub fn intersect(&self, other: &EdgeRun) -> Option<EdgeRun> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(EdgeRun { start, end })
    }

    /// Iterates over the edges of the run in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> {
        (self.start..=self.end).map(EdgeId)
    }
}

/// The run list: single intervals are stored inline so the dominant case
/// (line/windowed instances) performs no heap allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum Repr {
    #[default]
    Empty,
    One(EdgeRun),
    /// Invariant: sorted by `start`, pairwise disjoint and non-adjacent
    /// (`runs[i].end + 1 < runs[i + 1].start`), length ≥ 2.
    Many(Box<[EdgeRun]>),
}

/// A set of edges of a single network, stored as sorted maximal interval
/// runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgePath {
    repr: Repr,
}

impl EdgePath {
    /// Creates an empty path.
    #[inline]
    pub fn empty() -> Self {
        Self { repr: Repr::Empty }
    }

    /// Heap bytes owned by this path: zero for the inline empty/one-run
    /// representations, the boxed run arena's size otherwise (memory
    /// accounting for the scale audit).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Empty | Repr::One(_) => 0,
            Repr::Many(runs) => std::mem::size_of_val::<[EdgeRun]>(runs),
        }
    }

    /// Creates the contiguous path of edges `[start, end]` (inclusive)
    /// without any heap allocation; used by the line/timeline view where
    /// edge `i` is the timeslot `i`.
    #[inline]
    pub fn interval(start: usize, end: usize) -> Self {
        assert!(start <= end, "interval path must have start <= end");
        Self {
            repr: Repr::One(EdgeRun::new(start as u32, end as u32)),
        }
    }

    /// Creates a path from an arbitrary list of runs; sorts, merges
    /// overlapping/adjacent runs and normalizes the representation.
    pub fn from_runs(mut runs: Vec<EdgeRun>) -> Self {
        if runs.is_empty() {
            return Self::empty();
        }
        runs.sort_unstable_by_key(|r| r.start);
        let mut merged: Vec<EdgeRun> = Vec::with_capacity(runs.len());
        for r in runs {
            match merged.last_mut() {
                Some(last) if r.start <= last.end.saturating_add(1) => {
                    last.end = last.end.max(r.end);
                }
                _ => merged.push(r),
            }
        }
        if merged.len() == 1 {
            Self {
                repr: Repr::One(merged[0]),
            }
        } else {
            Self {
                repr: Repr::Many(merged.into_boxed_slice()),
            }
        }
    }

    /// Creates a path from an arbitrary list of edges (sorted, deduplicated
    /// and compressed into runs internally).
    pub fn new(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut runs: Vec<EdgeRun> = Vec::new();
        for e in edges {
            match runs.last_mut() {
                Some(last) if e.0 == last.end + 1 => last.end = e.0,
                _ => runs.push(EdgeRun::new(e.0, e.0)),
            }
        }
        match runs.len() {
            0 => Self::empty(),
            1 => Self {
                repr: Repr::One(runs[0]),
            },
            _ => Self {
                repr: Repr::Many(runs.into_boxed_slice()),
            },
        }
    }

    /// The runs of the path, sorted by start and pairwise non-adjacent.
    #[inline]
    pub fn runs(&self) -> &[EdgeRun] {
        match &self.repr {
            Repr::Empty => &[],
            Repr::One(r) => std::slice::from_ref(r),
            Repr::Many(rs) => rs,
        }
    }

    /// Number of runs (1 for line instances, ≤ `2⌈log₂ n⌉` for tree paths
    /// under the canonical HLD edge order).
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.runs().len()
    }

    /// Number of edges on the path (the paper's `len(d)` for line
    /// networks). `O(runs)`, not `O(path length)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.runs().iter().map(EdgeRun::len).sum()
    }

    /// Returns `true` if the path contains no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self.repr, Repr::Empty)
    }

    /// If the path is a single contiguous interval, returns it.
    #[inline]
    pub fn as_single_run(&self) -> Option<EdgeRun> {
        match self.repr {
            Repr::One(r) => Some(r),
            _ => None,
        }
    }

    /// The smallest and largest edge index on the path.
    #[inline]
    pub fn bounds(&self) -> Option<(EdgeId, EdgeId)> {
        let runs = self.runs();
        match (runs.first(), runs.last()) {
            (Some(f), Some(l)) => Some((EdgeId(f.start), EdgeId(l.end))),
            _ => None,
        }
    }

    /// Returns `true` if the path uses edge `e` (`O(log runs)`).
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        match &self.repr {
            Repr::Empty => false,
            Repr::One(r) => r.contains(e),
            Repr::Many(runs) => {
                let i = runs.partition_point(|r| r.end < e.0);
                i < runs.len() && runs[i].contains(e)
            }
        }
    }

    /// Iterates over the edges in increasing index order.
    pub fn iter(&self) -> EdgePathIter<'_> {
        self.into_iter()
    }

    /// Returns `true` if the two paths share at least one edge
    /// ("overlapping" in Section 2, assuming both belong to the same
    /// network). A two-pointer merge over the runs: `O(runs_a + runs_b)`,
    /// independent of the path lengths.
    pub fn intersects(&self, other: &EdgePath) -> bool {
        let (a, b) = (self.runs(), other.runs());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].overlaps(&b[j]) {
                return true;
            }
            if a[i].end < b[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Returns the edges shared by the two paths as a new path.
    pub fn intersection(&self, other: &EdgePath) -> EdgePath {
        let (a, b) = (self.runs(), other.runs());
        let mut out: Vec<EdgeRun> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if let Some(r) = a[i].intersect(&b[j]) {
                out.push(r);
            }
            if a[i].end < b[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Runs of a normalized path are non-adjacent, so the pairwise
        // intersections are already sorted, disjoint and non-adjacent.
        match out.len() {
            0 => Self::empty(),
            1 => Self {
                repr: Repr::One(out[0]),
            },
            _ => Self {
                repr: Repr::Many(out.into_boxed_slice()),
            },
        }
    }

    /// Returns `true` if any edge of `self` appears in the given slice of
    /// edges (used for critical-edge / `π(d)` membership tests; the slice
    /// need not be sorted). `O(k log runs)` for `k` edges — the critical
    /// sets this is used with have `k ≤ ∆ ≤ 6`.
    pub fn intersects_slice(&self, edges: &[EdgeId]) -> bool {
        edges.iter().any(|e| self.contains(*e))
    }
}

impl FromIterator<EdgeId> for EdgePath {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl FromIterator<EdgeRun> for EdgePath {
    fn from_iter<I: IntoIterator<Item = EdgeRun>>(iter: I) -> Self {
        Self::from_runs(iter.into_iter().collect())
    }
}

/// Iterator over the edges of an [`EdgePath`] in increasing index order.
pub struct EdgePathIter<'a> {
    runs: std::slice::Iter<'a, EdgeRun>,
    current: Option<(u32, u32)>,
}

impl Iterator for EdgePathIter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        let (next, end) = match self.current {
            Some(pair) => pair,
            None => {
                let run = self.runs.next()?;
                (run.start, run.end)
            }
        };
        // Runs are never empty, so `next <= end` always holds here.
        self.current = (next < end).then_some((next + 1, end));
        Some(EdgeId(next))
    }
}

impl<'a> IntoIterator for &'a EdgePath {
    type Item = EdgeId;
    type IntoIter = EdgePathIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        EdgePathIter {
            runs: self.runs().iter(),
            current: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> EdgePath {
        EdgePath::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn construction_sorts_dedups_and_compresses() {
        let p = path(&[5, 1, 3, 1]);
        assert_eq!(p.len(), 3);
        let collected: Vec<EdgeId> = p.iter().collect();
        assert_eq!(
            collected,
            vec![EdgeId(1), EdgeId(3), EdgeId(5)],
            "edges must be sorted and unique"
        );
        assert_eq!(p.num_runs(), 3);
        // Consecutive edges compress into one run.
        let q = path(&[4, 2, 3, 7, 8]);
        assert_eq!(q.num_runs(), 2);
        assert_eq!(q.runs(), &[EdgeRun::new(2, 4), EdgeRun::new(7, 8)]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn interval_paths_are_single_runs() {
        let p = EdgePath::interval(2, 5);
        assert_eq!(p.len(), 4);
        assert_eq!(p.num_runs(), 1);
        assert_eq!(p.as_single_run(), Some(EdgeRun::new(2, 5)));
        assert_eq!(p.bounds(), Some((EdgeId(2), EdgeId(5))));
        assert!(p.contains(EdgeId(2)));
        assert!(p.contains(EdgeId(5)));
        assert!(!p.contains(EdgeId(6)));
    }

    #[test]
    fn from_runs_normalizes() {
        let p = EdgePath::from_runs(vec![
            EdgeRun::new(5, 6),
            EdgeRun::new(0, 2),
            EdgeRun::new(3, 4), // adjacent to [0, 2] -> merged
        ]);
        assert_eq!(p.runs(), &[EdgeRun::new(0, 6)]);
        assert_eq!(p.as_single_run(), Some(EdgeRun::new(0, 6)));
        let q = EdgePath::from_runs(vec![EdgeRun::new(4, 9), EdgeRun::new(0, 5)]);
        assert_eq!(q.runs(), &[EdgeRun::new(0, 9)]);
        assert!(EdgePath::from_runs(Vec::new()).is_empty());
    }

    #[test]
    fn intersection_tests() {
        let a = path(&[1, 2, 3, 4]);
        let b = path(&[4, 5, 6]);
        let c = path(&[7, 8]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!b.intersects(&c));
        let ab = a.intersection(&b);
        assert_eq!(ab.iter().collect::<Vec<_>>(), vec![EdgeId(4)]);
        assert!(a.intersection(&c).is_empty());
        // Multi-run intersection.
        let d = EdgePath::from_runs(vec![EdgeRun::new(0, 2), EdgeRun::new(6, 9)]);
        let e = EdgePath::from_runs(vec![EdgeRun::new(2, 7)]);
        let de = d.intersection(&e);
        assert_eq!(de.runs(), &[EdgeRun::new(2, 2), EdgeRun::new(6, 7)]);
        assert!(d.intersects(&e));
    }

    #[test]
    fn intersects_slice_small_and_large() {
        let a = path(&[10, 20, 30]);
        assert!(a.intersects_slice(&[EdgeId(20)]));
        assert!(!a.intersects_slice(&[EdgeId(21)]));
        let large: Vec<EdgeId> = (0..10).map(EdgeId::new).collect();
        assert!(!a.intersects_slice(&large));
        let large_hit: Vec<EdgeId> = (25..35).map(EdgeId::new).collect();
        assert!(a.intersects_slice(&large_hit));
    }

    #[test]
    fn empty_path_behaviour() {
        let e = EdgePath::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.num_runs(), 0);
        assert_eq!(e.bounds(), None);
        assert!(!e.intersects(&path(&[1, 2])));
        assert!(!path(&[1, 2]).intersects(&e));
        assert!(e.intersection(&path(&[1, 2])).is_empty());
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let p: EdgePath = vec![EdgeId(3), EdgeId(1)].into_iter().collect();
        let collected: Vec<EdgeId> = (&p).into_iter().collect();
        assert_eq!(collected, vec![EdgeId(1), EdgeId(3)]);
        let q: EdgePath = vec![EdgeRun::new(0, 1), EdgeRun::new(3, 4)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 4);
        let collected: Vec<EdgeId> = (&q).into_iter().collect();
        assert_eq!(collected, vec![EdgeId(0), EdgeId(1), EdgeId(3), EdgeId(4)]);
    }

    #[test]
    fn run_predicates() {
        let r = EdgeRun::new(3, 7);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.contains(EdgeId(3)) && r.contains(EdgeId(7)));
        assert!(!r.contains(EdgeId(8)));
        assert!(r.overlaps(&EdgeRun::new(7, 9)));
        assert!(!r.overlaps(&EdgeRun::new(8, 9)));
        assert_eq!(r.intersect(&EdgeRun::new(5, 10)), Some(EdgeRun::new(5, 7)));
        assert_eq!(r.intersect(&EdgeRun::new(8, 10)), None);
    }

    #[test]
    fn contains_uses_binary_search_over_many_runs() {
        let runs: Vec<EdgeRun> = (0..50).map(|i| EdgeRun::new(i * 10, i * 10 + 3)).collect();
        let p = EdgePath::from_runs(runs);
        assert_eq!(p.num_runs(), 50);
        assert!(p.contains(EdgeId(130)));
        assert!(p.contains(EdgeId(133)));
        assert!(!p.contains(EdgeId(134)));
        assert!(!p.contains(EdgeId(999)));
    }
}
