//! Identifier newtypes used across the workspace.
//!
//! All identifiers are dense indices (`u32`) into the corresponding arrays of
//! the owning problem or universe, so they can be used directly to index
//! `Vec`s without hashing.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a dense index.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the identifier as a dense `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A vertex of the shared vertex set `V` (Section 2 of the paper).
    VertexId,
    "v"
);
id_type!(
    /// An edge *within* a single network; dense index into that network's
    /// edge list. Pair it with a [`NetworkId`] (see [`GlobalEdge`]) to obtain
    /// the triple `⟨u, v, T⟩` used by the paper for the global edge set `E`.
    EdgeId,
    "e"
);
id_type!(
    /// A network (tree-network or line-network/resource).
    NetworkId,
    "T"
);
id_type!(
    /// A demand `a ∈ A`; one demand per processor.
    DemandId,
    "a"
);
id_type!(
    /// A demand instance `d ∈ D` (demand × network × placement).
    InstanceId,
    "d"
);
id_type!(
    /// A processor/agent `P ∈ P`.
    ProcessorId,
    "P"
);

/// An edge of the global edge set `E`: the paper represents it as the triple
/// `⟨u, v, T⟩`; we represent it as (network, dense edge index within that
/// network).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GlobalEdge {
    /// The network the edge belongs to.
    pub network: NetworkId,
    /// The edge index within that network.
    pub edge: EdgeId,
}

impl GlobalEdge {
    /// Convenience constructor.
    #[inline]
    pub fn new(network: NetworkId, edge: EdgeId) -> Self {
        Self { network, edge }
    }
}

impl fmt::Display for GlobalEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.network, self.edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let v = VertexId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
        assert_eq!(VertexId::from(7usize), v);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(EdgeId::new(1) < EdgeId::new(2));
        assert!(DemandId::new(0) < DemandId::new(10));
    }

    #[test]
    fn global_edge_display() {
        let e = GlobalEdge::new(NetworkId::new(2), EdgeId::new(5));
        assert_eq!(format!("{e}"), "T2:e5");
    }

    #[test]
    fn global_edge_ordering_is_network_major() {
        let a = GlobalEdge::new(NetworkId::new(0), EdgeId::new(9));
        let b = GlobalEdge::new(NetworkId::new(1), EdgeId::new(0));
        assert!(a < b);
    }
}
