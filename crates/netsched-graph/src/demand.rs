//! Demands and processors (Section 2 of the paper).

use crate::ids::{DemandId, NetworkId, ProcessorId, VertexId};

/// A demand `a = (u, v)` with profit `p(a)` and bandwidth requirement
/// ("height") `h(a) ∈ (0, 1]`.
///
/// In the unit-height case of the paper every height is exactly `1.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Demand {
    /// Identifier (dense index into the owning problem's demand list).
    pub id: DemandId,
    /// One end-point.
    pub u: VertexId,
    /// The other end-point.
    pub v: VertexId,
    /// Profit `p(a) > 0`.
    pub profit: f64,
    /// Height `h(a) ∈ (0, 1]`.
    pub height: f64,
}

impl Demand {
    /// Creates a unit-height demand.
    pub fn unit(id: DemandId, u: VertexId, v: VertexId, profit: f64) -> Self {
        Self {
            id,
            u,
            v,
            profit,
            height: 1.0,
        }
    }

    /// Creates a demand with an explicit height.
    pub fn with_height(id: DemandId, u: VertexId, v: VertexId, profit: f64, height: f64) -> Self {
        Self {
            id,
            u,
            v,
            profit,
            height,
        }
    }

    /// Returns the pair of end-points.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// A demand instance is *wide* if its height exceeds `1/2` (Section 6);
    /// the property is inherited from the demand.
    #[inline]
    pub fn is_wide(&self) -> bool {
        self.height > 0.5
    }

    /// A demand instance is *narrow* if its height is at most `1/2`
    /// (Section 6).
    #[inline]
    pub fn is_narrow(&self) -> bool {
        !self.is_wide()
    }
}

/// A processor/agent `P ∈ P`. Each processor owns exactly one demand and can
/// access a subset of the networks (`Acc(P)`, Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Processor {
    /// Identifier of the processor.
    pub id: ProcessorId,
    /// The unique demand owned by this processor.
    pub demand: DemandId,
    /// The networks accessible to this processor (`Acc(P)`).
    pub access: Vec<NetworkId>,
}

impl Processor {
    /// Creates a processor owning `demand` with the given access set.
    pub fn new(id: ProcessorId, demand: DemandId, mut access: Vec<NetworkId>) -> Self {
        access.sort_unstable();
        access.dedup();
        Self { id, demand, access }
    }

    /// Returns `true` if the processor can access network `t`.
    pub fn can_access(&self, t: NetworkId) -> bool {
        self.access.binary_search(&t).is_ok()
    }

    /// Two processors may communicate iff they share an accessible resource
    /// (Section 2): `Acc(P1) ∩ Acc(P2) ≠ ∅`.
    pub fn can_communicate_with(&self, other: &Processor) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.access.len() && j < other.access.len() {
            match self.access[i].cmp(&other.access[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_demand_has_height_one() {
        let d = Demand::unit(DemandId(0), VertexId(1), VertexId(2), 5.0);
        assert_eq!(d.height, 1.0);
        assert!(d.is_wide());
        assert!(!d.is_narrow());
        assert_eq!(d.endpoints(), (VertexId(1), VertexId(2)));
    }

    #[test]
    fn narrow_wide_threshold_is_half() {
        let narrow = Demand::with_height(DemandId(0), VertexId(0), VertexId(1), 1.0, 0.5);
        let wide = Demand::with_height(DemandId(1), VertexId(0), VertexId(1), 1.0, 0.5001);
        assert!(narrow.is_narrow());
        assert!(wide.is_wide());
    }

    #[test]
    fn processor_access_is_sorted_and_deduped() {
        let p = Processor::new(
            ProcessorId(0),
            DemandId(0),
            vec![NetworkId(2), NetworkId(0), NetworkId(2)],
        );
        assert_eq!(p.access, vec![NetworkId(0), NetworkId(2)]);
        assert!(p.can_access(NetworkId(0)));
        assert!(!p.can_access(NetworkId(1)));
    }

    #[test]
    fn communication_requires_shared_resource() {
        let p0 = Processor::new(
            ProcessorId(0),
            DemandId(0),
            vec![NetworkId(0), NetworkId(1)],
        );
        let p1 = Processor::new(
            ProcessorId(1),
            DemandId(1),
            vec![NetworkId(1), NetworkId(2)],
        );
        let p2 = Processor::new(ProcessorId(2), DemandId(2), vec![NetworkId(3)]);
        assert!(p0.can_communicate_with(&p1));
        assert!(p1.can_communicate_with(&p0));
        assert!(!p0.can_communicate_with(&p2));
        assert!(!p1.can_communicate_with(&p2));
    }
}
