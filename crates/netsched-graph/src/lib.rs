//! Network substrate for `netsched`.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace:
//!
//! * identifier newtypes ([`VertexId`], [`EdgeId`], [`NetworkId`],
//!   [`DemandId`], [`InstanceId`], [`ProcessorId`]),
//! * [`TreeNetwork`] — a connected tree (in the paper, a spanning tree of the
//!   global vertex set `V`) with unique-path, LCA and heavy-light
//!   decomposition queries,
//! * [`LineNetwork`] / [`LineProblem`] — the timeline view of line networks
//!   with release-time/deadline windows (Section 7 of the paper),
//! * [`Demand`], [`Processor`], [`TreeProblem`] — the throughput-maximization
//!   problem of Section 2,
//! * [`DemandInstanceUniverse`] — the flattened set of *demand instances*
//!   (demand × accessible network × placement) that all algorithms operate
//!   on, together with conflict/overlap predicates and per-edge load
//!   accounting, and [`LoadTracker`] for incremental greedy selection,
//! * [`ShardedUniverse`] — the universe partitioned by [`NetworkId`]: one
//!   shard per network with a global↔local id table and pre-sorted
//!   per-shard run arrays, the unit of parallelism for the sharded
//!   conflict engine in `netsched-distrib` and the shard-parallel MIS
//!   epochs in `netsched-core`,
//! * [`CapacityIndex`] — per-network sparse tables answering
//!   range-minimum capacity queries in `O(1)`, which keep the capacitated
//!   `can_add`/eligibility paths at the uniform path's `O(runs log E)`
//!   instead of falling back to per-edge loops.
//!
//! # Implicit interval paths
//!
//! Paths are never materialized edge-by-edge. An [`EdgePath`] is a short
//! sorted list of interval *runs* ([`EdgeRun`], `[start, end]` inclusive):
//! line/windowed instances are a single inline interval (no heap
//! allocation), and tree paths are at most `2⌈log₂ n⌉` runs because
//! [`TreeNetwork`] canonicalizes its edge ids to heavy-light order
//! ([`HldIndex`]) at construction. Congestion accounting rides on the same
//! structure: loads accumulate `+h` / `−h` at run endpoints and resolve
//! with one prefix-sum pass (a difference array).
//!
//! With `n` vertices per network, `|D|` instances, `E` total edges and `S`
//! the sum of all path lengths, the costs are:
//!
//! | operation | materialized (pre-interval) | implicit intervals |
//! |---|---|---|
//! | build one tree path | `O(path len)` walk + sort | `O(log n)` [`HldIndex::path_runs`] |
//! | build one line instance | `O(len)` alloc per start | `O(1)` inline interval |
//! | universe construction | `O(S)` | `O(|D| log n)` |
//! | `len` / bounds | `O(1)` / `O(1)` | `O(runs)` / `O(1)` |
//! | `contains(e)` | `O(log len)` | `O(log runs)` |
//! | overlap test | `O(len_a + len_b)` merge | `O(runs_a + runs_b)` merge |
//! | `edge_loads` / verify | `O(S)` | `O(|D| log n + E)` difference array |
//! | conflict-graph build | `O(Σ bucket²)` HashMap buckets | sort-based interval sweep, CSR output |
//! | capacitated `can_add` | `O(path len · selection)` | event sweep + `O(1)` range-min per segment |
//! | universe sharding | — | `O(|D| log n)` [`ShardedUniverse::build`] |
//! | demand splice | `O(|D| log n)` rebuild | `O(expired + new)` [`DemandInstanceUniverse::apply_demand_delta`] |
//! | shard run-order upkeep | `O(R log R)` re-sweep per shard | survivor compaction + `O(new log new)` merge [`ShardedUniverse::apply_delta`] |
//!
//! # Scale & memory layout
//!
//! All hot structures are struct-of-arrays over dense `u32` ids: demand
//! and instance attributes live in parallel column vectors, interval
//! paths are inline (single run) or arena-packed, and every shard keeps
//! flat run arrays plus a global↔local id table. Each layer exposes a
//! `committed_bytes()` audit; at the 10⁵-live-demand operating point
//! (full-mode `mega-churn-line`, 99,886 demands / 271,867 instances)
//! the universe commits **49.8 MiB ≈ 523 bytes/demand**. Splices reuse
//! persistent scratch (id remaps, merge buffers), so steady-state
//! clean-shard epochs allocate nothing — pinned by the
//! `alloc_regression` suite at the workspace root, with incremental
//! run-order maintenance proptested against a full re-sweep at 1/2/4
//! workers in `shard_equivalence`.
//!
//! The paper being reproduced is "Distributed Algorithms for Scheduling on
//! Line and Tree Networks" (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
//! IPPS 2013). Section references in doc comments refer to that text.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod demand;
pub mod error;
pub mod fixtures;
pub mod hld;
pub mod ids;
pub mod lca;
pub mod line;
pub mod path;
pub mod problem;
pub mod shard;
pub mod tree;
pub mod universe;

pub use capacity::CapacityIndex;
pub use demand::{Demand, Processor};
pub use error::GraphError;
pub use hld::HldIndex;
pub use ids::{DemandId, EdgeId, GlobalEdge, InstanceId, NetworkId, ProcessorId, VertexId};
pub use lca::LcaIndex;
pub use line::{LineDemand, LineNetwork, LineProblem};
pub use path::{EdgePath, EdgeRun};
pub use problem::TreeProblem;
pub use shard::{ShardRun, ShardSplice, ShardedUniverse, UniverseShard};
pub use tree::TreeNetwork;
pub use universe::{
    ArrivingDemand, DemandInstance, DemandInstanceUniverse, LoadTracker, UniverseDelta,
};

/// Tolerance used throughout the workspace when comparing floating-point
/// profits, heights and dual values.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal up to [`EPS`] (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` when `a <= b` up to [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers_behave() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-3));
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(1.1, 1.0));
    }
}
