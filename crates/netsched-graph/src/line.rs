//! Line networks with windows (Section 1 "Line-Networks" and Section 7).
//!
//! A line network is viewed as a timeline of `n` discrete timeslots; each of
//! the `r` resources offers one unit of bandwidth on every timeslot. A
//! demand specifies a window `[rt, dl]`, a processing time `ρ`, a profit and
//! a height; it may be executed on any segment of `ρ` consecutive timeslots
//! inside its window, on any accessible resource. The demand instances are
//! therefore (demand × resource × start-time) triples.

use crate::demand::Processor;
use crate::error::GraphError;
use crate::ids::{DemandId, InstanceId, NetworkId, ProcessorId, VertexId};
use crate::path::EdgePath;
use crate::problem::TreeProblem;
use crate::tree::TreeNetwork;
use crate::universe::{DemandInstance, DemandInstanceUniverse};

/// A windowed demand (job) on the timeline: window `[release, deadline]`
/// (timeslots, inclusive), processing time, profit and height.
#[derive(Debug, Clone, PartialEq)]
pub struct LineDemand {
    /// Identifier (dense index into the owning problem's demand list).
    pub id: DemandId,
    /// Release time `rt(a)` — the first timeslot in which the job may run.
    pub release: u32,
    /// Deadline `dl(a)` — the last timeslot in which the job may run
    /// (inclusive).
    pub deadline: u32,
    /// Processing time `ρ(a)` — the number of consecutive timeslots the job
    /// occupies.
    pub processing: u32,
    /// Profit `p(a) > 0`.
    pub profit: f64,
    /// Height `h(a) ∈ (0, 1]`.
    pub height: f64,
}

impl LineDemand {
    /// Number of admissible start times within the window.
    pub fn num_placements(&self) -> u32 {
        (self.deadline + 1).saturating_sub(self.release + self.processing) + 1
    }

    /// Length of the window (`dl − rt + 1`).
    pub fn window_len(&self) -> u32 {
        self.deadline - self.release + 1
    }
}

/// A single line network viewed as a timeline of `timeslots` slots; kept as
/// a thin wrapper so tree-based code can reuse the path-graph view.
#[derive(Debug, Clone)]
pub struct LineNetwork {
    id: NetworkId,
    timeslots: usize,
}

impl LineNetwork {
    /// Creates a line network (resource) with the given number of timeslots.
    pub fn new(id: NetworkId, timeslots: usize) -> Self {
        Self { id, timeslots }
    }

    /// The identifier of this resource.
    pub fn id(&self) -> NetworkId {
        self.id
    }

    /// Number of timeslots (edges of the path graph).
    pub fn timeslots(&self) -> usize {
        self.timeslots
    }

    /// The equivalent path-graph tree network on `timeslots + 1` vertices;
    /// edge `i` of that tree is timeslot `i`.
    pub fn as_tree(&self) -> TreeNetwork {
        TreeNetwork::line(self.id, self.timeslots + 1).expect("a path graph is always a valid tree")
    }
}

/// The line-networks-with-windows scheduling problem of Section 7.
#[derive(Debug, Clone)]
pub struct LineProblem {
    timeslots: usize,
    num_resources: usize,
    demands: Vec<LineDemand>,
    /// Access set of the processor owning each demand (indexed by demand).
    access: Vec<Vec<NetworkId>>,
}

impl LineProblem {
    /// Creates an empty problem with `timeslots` timeslots and
    /// `num_resources` identical resources (line networks).
    pub fn new(timeslots: usize, num_resources: usize) -> Self {
        Self {
            timeslots,
            num_resources,
            demands: Vec::new(),
            access: Vec::new(),
        }
    }

    /// Validates a prospective demand against this problem without adding
    /// it: the exact checks [`LineProblem::add_demand`] performs (which
    /// delegates here), exposed so admission layers — the dynamic service
    /// in `netsched-service` — share one validator and cannot drift.
    pub fn validate_demand(
        &self,
        release: u32,
        deadline: u32,
        processing: u32,
        profit: f64,
        height: f64,
        access: &[NetworkId],
    ) -> Result<(), GraphError> {
        let id = DemandId::new(self.demands.len());
        // The window check is evaluated in u64 so a near-u32::MAX
        // processing time from an untrusted admission request cannot wrap
        // `release + processing` past the deadline and slip through.
        if processing == 0
            || deadline < release
            || (deadline as usize) >= self.timeslots
            || release as u64 + processing as u64 > deadline as u64 + 1
        {
            return Err(GraphError::InvalidWindow {
                demand: id,
                release,
                deadline,
                processing,
            });
        }
        if profit <= 0.0 || !profit.is_finite() {
            return Err(GraphError::NonPositiveProfit { demand: id, profit });
        }
        if height <= 0.0 || height > 1.0 || !height.is_finite() {
            return Err(GraphError::InvalidHeight { demand: id, height });
        }
        if access.is_empty() {
            return Err(GraphError::EmptyAccessSet { demand: id });
        }
        for &t in access {
            if t.index() >= self.num_resources {
                return Err(GraphError::UnknownNetwork {
                    network: t,
                    networks: self.num_resources,
                });
            }
        }
        Ok(())
    }

    /// Adds a windowed demand; returns its id.
    ///
    /// `release` and `deadline` are timeslot indices (inclusive window);
    /// `processing` is the number of consecutive timeslots required.
    #[allow(clippy::too_many_arguments)]
    pub fn add_demand(
        &mut self,
        release: u32,
        deadline: u32,
        processing: u32,
        profit: f64,
        height: f64,
        access: Vec<NetworkId>,
    ) -> Result<DemandId, GraphError> {
        self.validate_demand(release, deadline, processing, profit, height, &access)?;
        let id = DemandId::new(self.demands.len());
        let mut access = access;
        access.sort_unstable();
        access.dedup();
        self.demands.push(LineDemand {
            id,
            release,
            deadline,
            processing,
            profit,
            height,
        });
        self.access.push(access);
        Ok(id)
    }

    /// Adds a fixed interval demand (no slack in the window): the job must
    /// run exactly on `[start, start + length - 1]`.
    pub fn add_interval_demand(
        &mut self,
        start: u32,
        length: u32,
        profit: f64,
        height: f64,
        access: Vec<NetworkId>,
    ) -> Result<DemandId, GraphError> {
        self.add_demand(start, start + length - 1, length, profit, height, access)
    }

    /// Number of timeslots `n`.
    #[inline]
    pub fn timeslots(&self) -> usize {
        self.timeslots
    }

    /// Number of resources `r`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of demands `m`.
    #[inline]
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// The demands.
    #[inline]
    pub fn demands(&self) -> &[LineDemand] {
        &self.demands
    }

    /// A single demand.
    #[inline]
    pub fn demand(&self, a: DemandId) -> &LineDemand {
        &self.demands[a.index()]
    }

    /// The access set of the processor owning demand `a`.
    #[inline]
    pub fn access(&self, a: DemandId) -> &[NetworkId] {
        &self.access[a.index()]
    }

    /// Returns `true` if every demand has height exactly 1.
    pub fn is_unit_height(&self) -> bool {
        self.demands
            .iter()
            .all(|d| (d.height - 1.0).abs() <= crate::EPS)
    }

    /// The resources as [`LineNetwork`] values.
    pub fn resources(&self) -> Vec<LineNetwork> {
        (0..self.num_resources)
            .map(|t| LineNetwork::new(NetworkId::new(t), self.timeslots))
            .collect()
    }

    /// Returns the processors (one per demand, with matching indices).
    pub fn processors(&self) -> Vec<Processor> {
        self.demands
            .iter()
            .map(|d| {
                Processor::new(
                    ProcessorId::new(d.id.index()),
                    d.id,
                    self.access[d.id.index()].clone(),
                )
            })
            .collect()
    }

    /// Maximum and minimum instance lengths (`L_max`, `L_min`); used to size
    /// the length-class layered decomposition of Section 7.
    pub fn length_bounds(&self) -> (u32, u32) {
        let max = self.demands.iter().map(|d| d.processing).max().unwrap_or(1);
        let min = self.demands.iter().map(|d| d.processing).min().unwrap_or(1);
        (max, min)
    }

    /// Flattens the problem into the demand-instance universe: one instance
    /// per (demand, accessible resource, admissible start time), exactly as
    /// Section 7 prescribes ("for each resource T accessible by P and each
    /// interval of length ρ(a) contained within [rt(a), dl(a)], create a
    /// demand instance").
    ///
    /// Every instance path is a single implicit `[start, end]` interval
    /// ([`EdgePath::interval`]) — `O(1)` memory per instance regardless of
    /// the processing time, with no heap allocation per admissible start.
    pub fn universe(&self) -> DemandInstanceUniverse {
        let mut instances = Vec::new();
        for demand in &self.demands {
            for &t in &self.access[demand.id.index()] {
                let last_start = demand.deadline + 1 - demand.processing;
                for start in demand.release..=last_start {
                    let end = start + demand.processing - 1;
                    instances.push(DemandInstance {
                        id: InstanceId::new(instances.len()),
                        demand: demand.id,
                        network: t,
                        profit: demand.profit,
                        height: demand.height,
                        path: EdgePath::interval(start as usize, end as usize),
                        start: Some(start),
                    });
                }
            }
        }
        let edges_per_network = vec![self.timeslots; self.num_resources];
        DemandInstanceUniverse::new(instances, self.demands.len(), edges_per_network, None)
    }

    /// An equivalent [`TreeProblem`] where every resource is the path graph
    /// over `timeslots + 1` vertices and every demand is pinned to its full
    /// window. Only valid for demands without slack (window length equals
    /// processing time); returns `None` if some demand has slack.
    pub fn as_tree_problem(&self) -> Option<TreeProblem> {
        if self.demands.iter().any(|d| d.window_len() != d.processing) {
            return None;
        }
        let mut p = TreeProblem::new(self.timeslots + 1);
        for _ in 0..self.num_resources {
            let edges = (0..self.timeslots)
                .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
                .collect();
            p.add_network(edges).ok()?;
        }
        for d in &self.demands {
            p.add_demand(
                VertexId::new(d.release as usize),
                VertexId::new((d.deadline + 1) as usize),
                d.profit,
                d.height,
                self.access[d.id.index()].clone(),
            )
            .ok()?;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_resources(r: usize) -> Vec<NetworkId> {
        (0..r).map(NetworkId::new).collect()
    }

    #[test]
    fn placements_and_universe_size() {
        let mut p = LineProblem::new(10, 2);
        // Window [0, 5], processing 3 → starts 0, 1, 2, 3 → 4 placements.
        let a = p.add_demand(0, 5, 3, 1.0, 1.0, all_resources(2)).unwrap();
        assert_eq!(p.demand(a).num_placements(), 4);
        let u = p.universe();
        // 4 placements × 2 resources.
        assert_eq!(u.num_instances(), 8);
        assert_eq!(u.instances_of_demand(a).len(), 8);
    }

    #[test]
    fn fixed_interval_demand_has_one_placement_per_resource() {
        let mut p = LineProblem::new(10, 3);
        let a = p
            .add_interval_demand(2, 4, 1.0, 0.5, all_resources(3))
            .unwrap();
        assert_eq!(p.demand(a).num_placements(), 1);
        let u = p.universe();
        assert_eq!(u.num_instances(), 3);
        for d in u.instances() {
            assert_eq!(d.start, Some(2));
            assert_eq!(d.len(), 4);
        }
    }

    #[test]
    fn rejects_invalid_windows() {
        let mut p = LineProblem::new(10, 1);
        let acc = all_resources(1);
        assert!(matches!(
            p.add_demand(5, 4, 1, 1.0, 1.0, acc.clone()),
            Err(GraphError::InvalidWindow { .. })
        ));
        assert!(matches!(
            p.add_demand(0, 3, 0, 1.0, 1.0, acc.clone()),
            Err(GraphError::InvalidWindow { .. })
        ));
        assert!(matches!(
            p.add_demand(0, 3, 5, 1.0, 1.0, acc.clone()),
            Err(GraphError::InvalidWindow { .. })
        ));
        assert!(matches!(
            p.add_demand(0, 20, 2, 1.0, 1.0, acc.clone()),
            Err(GraphError::InvalidWindow { .. })
        ));
        assert!(matches!(
            p.add_demand(0, 3, 2, 1.0, 1.0, vec![NetworkId(5)]),
            Err(GraphError::UnknownNetwork { .. })
        ));
        assert!(matches!(
            p.add_demand(0, 3, 2, -1.0, 1.0, acc),
            Err(GraphError::NonPositiveProfit { .. })
        ));
    }

    #[test]
    fn figure1_semantics_via_line_problem() {
        // Figure 1: heights 0.5, 0.7, 0.4; A and B overlap, B and C overlap,
        // A and C do not.
        let mut p = LineProblem::new(10, 1);
        let acc = all_resources(1);
        p.add_interval_demand(0, 5, 1.0, 0.5, acc.clone()).unwrap(); // A: slots 0..=4
        p.add_interval_demand(3, 3, 1.0, 0.7, acc.clone()).unwrap(); // B: slots 3..=5
        p.add_interval_demand(6, 4, 1.0, 0.4, acc).unwrap(); // C: slots 6..=9
        let u = p.universe();
        assert!(u.is_feasible(&[InstanceId(0), InstanceId(2)]));
        assert!(u.is_feasible(&[InstanceId(1), InstanceId(2)]));
        assert!(!u.is_feasible(&[InstanceId(0), InstanceId(1)]));
    }

    #[test]
    fn windows_allow_resolving_conflicts() {
        // Two unit-height jobs of length 3 with windows [0, 5]: both fit on
        // one resource only because the windows allow disjoint placements.
        let mut p = LineProblem::new(6, 1);
        let acc = all_resources(1);
        p.add_demand(0, 5, 3, 1.0, 1.0, acc.clone()).unwrap();
        p.add_demand(0, 5, 3, 1.0, 1.0, acc).unwrap();
        let u = p.universe();
        // Placement of demand 0 at start 0 and demand 1 at start 3 are
        // non-conflicting.
        let d0 = u
            .instances()
            .find(|d| d.demand == DemandId(0) && d.start == Some(0))
            .unwrap()
            .id;
        let d1 = u
            .instances()
            .find(|d| d.demand == DemandId(1) && d.start == Some(3))
            .unwrap()
            .id;
        assert!(!u.conflicting(d0, d1));
        assert!(u.is_feasible(&[d0, d1]));
    }

    #[test]
    fn tree_problem_conversion() {
        let mut p = LineProblem::new(8, 2);
        let acc = all_resources(2);
        p.add_interval_demand(0, 4, 2.0, 1.0, acc.clone()).unwrap();
        p.add_interval_demand(4, 4, 1.0, 1.0, acc.clone()).unwrap();
        let tp = p.as_tree_problem().expect("no slack, conversion must work");
        assert_eq!(tp.num_networks(), 2);
        assert_eq!(tp.num_demands(), 2);
        let u_line = p.universe();
        let u_tree = tp.universe();
        assert_eq!(u_line.num_instances(), u_tree.num_instances());
        // A windowed demand with slack cannot be converted.
        p.add_demand(0, 7, 3, 1.0, 1.0, acc).unwrap();
        assert!(p.as_tree_problem().is_none());
    }

    #[test]
    fn length_bounds_and_resources() {
        let mut p = LineProblem::new(16, 2);
        let acc = all_resources(2);
        p.add_demand(0, 15, 2, 1.0, 1.0, acc.clone()).unwrap();
        p.add_demand(0, 15, 8, 1.0, 1.0, acc).unwrap();
        assert_eq!(p.length_bounds(), (8, 2));
        let res = p.resources();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].timeslots(), 16);
        let tree = res[0].as_tree();
        assert_eq!(tree.num_edges(), 16);
    }
}
