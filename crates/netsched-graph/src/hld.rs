//! Heavy-light decomposition (HLD) over a rooted tree.
//!
//! The decomposition partitions the vertices into *chains*: every non-leaf
//! keeps one *heavy* child (a child of maximum subtree size) in its own
//! chain and starts a new chain at each remaining (light) child. Walking
//! from any vertex to the root crosses at most `⌈log₂ n⌉` light edges, so
//! any tree path decomposes into `O(log n)` chain fragments.
//!
//! [`HldIndex`] additionally assigns every vertex a *position*: a DFS
//! numbering that visits the heavy child first, so the vertices of each
//! chain occupy consecutive positions. The parent edge of vertex `v` gets
//! the **edge position** `pos(v) − 1`; under this canonical edge numbering
//! (adopted by [`crate::TreeNetwork`] at construction) every chain fragment
//! of a path is a contiguous interval of edge indices, and tree paths become
//! [`crate::EdgePath`]s of at most `2⌈log₂ n⌉` interval runs instead of
//! materialized edge lists.
//!
//! The construction is deterministic and *idempotent* with respect to the
//! induced edge order: ties between equal-size children are broken by
//! children-list order, and the heavy child's parent edge always receives
//! the smallest position among its siblings — so rebuilding the index from
//! an edge list already in HLD order reproduces the identity relabeling.
//! (This keeps serialized problems stable across save/load round trips.)

use crate::ids::VertexId;
use crate::path::EdgeRun;

/// Heavy-light decomposition index of a rooted tree.
#[derive(Debug, Clone)]
pub struct HldIndex {
    /// DFS position of each vertex (root = 0); chain vertices consecutive.
    pos: Vec<u32>,
    /// Head (shallowest vertex) of the chain containing each vertex.
    head: Vec<u32>,
    /// Parent of each vertex (the root is its own parent).
    parent: Vec<u32>,
    /// Depth of each vertex (root = 0).
    depth: Vec<u32>,
    /// Inverse of `pos`: `vertex_at[p]` is the vertex with position `p`.
    vertex_at: Vec<u32>,
}

impl HldIndex {
    /// Builds the index from a parent array and per-vertex children lists
    /// (children must be listed in a deterministic order; `TreeNetwork` uses
    /// adjacency order, i.e. edge input order).
    pub fn new(parent: &[Option<VertexId>], depth: &[u32], children: &[Vec<VertexId>]) -> Self {
        let n = parent.len();
        assert_eq!(n, depth.len(), "parent and depth arrays must match");
        assert_eq!(n, children.len(), "parent and children arrays must match");
        let root = (0..n)
            .find(|&v| parent[v].is_none())
            .expect("rooted tree must have a root");

        // Subtree sizes, processing vertices in decreasing depth order so
        // every child is finished before its parent.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(depth[v as usize]));
        let mut size = vec![1u32; n];
        for &v in &order {
            if let Some(p) = parent[v as usize] {
                size[p.index()] += size[v as usize];
            }
        }

        // Heavy child: first child (in children-list order) of maximum
        // subtree size. The deterministic first-max tie-break is what makes
        // the induced edge relabeling idempotent.
        let mut heavy: Vec<Option<u32>> = vec![None; n];
        for v in 0..n {
            let mut best: Option<(u32, u32)> = None; // (size, child)
            for &c in &children[v] {
                let s = size[c.index()];
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, c.0));
                }
            }
            heavy[v] = best.map(|(_, c)| c);
        }

        // Iterative DFS visiting the heavy child first; light children in
        // children-list order. Chain heads propagate along heavy edges.
        let mut pos = vec![0u32; n];
        let mut head = vec![0u32; n];
        let mut vertex_at = vec![0u32; n];
        let mut next_pos = 0u32;
        let mut stack: Vec<(u32, u32)> = vec![(root as u32, root as u32)]; // (vertex, chain head)
        while let Some((v, h)) = stack.pop() {
            pos[v as usize] = next_pos;
            vertex_at[next_pos as usize] = v;
            next_pos += 1;
            head[v as usize] = h;
            // Push light children first (reversed so the first light child
            // is processed right after the whole heavy subtree), then the
            // heavy child last so it pops first and continues the chain.
            let hc = heavy[v as usize];
            for &c in children[v as usize].iter().rev() {
                if Some(c.0) != hc {
                    stack.push((c.0, c.0));
                }
            }
            if let Some(hc) = hc {
                stack.push((hc, h));
            }
        }
        debug_assert_eq!(next_pos as usize, n, "DFS must reach every vertex");

        let parent = (0..n)
            .map(|v| parent[v].map_or(v as u32, |p| p.0))
            .collect();
        Self {
            pos,
            head,
            parent,
            depth: depth.to_vec(),
            vertex_at,
        }
    }

    /// DFS position of `v` (root = 0).
    #[inline]
    pub fn pos(&self, v: VertexId) -> u32 {
        self.pos[v.index()]
    }

    /// The vertex at DFS position `p`.
    #[inline]
    pub fn vertex_at(&self, p: u32) -> VertexId {
        VertexId(self.vertex_at[p as usize])
    }

    /// Canonical edge position of the parent edge of `v` (`pos(v) − 1`);
    /// `None` for the root.
    #[inline]
    pub fn parent_edge_pos(&self, v: VertexId) -> Option<u32> {
        (self.pos[v.index()] != 0).then(|| self.pos[v.index()] - 1)
    }

    /// Head of the chain containing `v`.
    #[inline]
    pub fn chain_head(&self, v: VertexId) -> VertexId {
        VertexId(self.head[v.index()])
    }

    /// The unique tree path between `u` and `v` as interval runs in the
    /// canonical edge order. At most `2⌈log₂ n⌉` runs, produced in
    /// `O(log n)` time with no per-edge work.
    pub fn path_runs(&self, u: VertexId, v: VertexId) -> Vec<EdgeRun> {
        let mut runs = Vec::new();
        let (mut a, mut b) = (u.0, v.0);
        while self.head[a as usize] != self.head[b as usize] {
            // Climb the vertex whose chain head is deeper.
            if self.depth[self.head[a as usize] as usize]
                < self.depth[self.head[b as usize] as usize]
            {
                std::mem::swap(&mut a, &mut b);
            }
            let h = self.head[a as usize];
            // Edges: the parent edges of every chain vertex from `h` up to
            // `a`, i.e. positions pos(h) − 1 ..= pos(a) − 1 (pos(h) ≥ 1
            // because `h` is not the root's chain head here).
            runs.push(EdgeRun::new(
                self.pos[h as usize] - 1,
                self.pos[a as usize] - 1,
            ));
            a = self.parent[h as usize];
        }
        // Same chain: the shallower of the two is the LCA.
        let (top, bot) = if self.pos[a as usize] <= self.pos[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        if top != bot {
            runs.push(EdgeRun::new(
                self.pos[top as usize],
                self.pos[bot as usize] - 1,
            ));
        }
        runs
    }

    /// Lowest common ancestor of `u` and `v` (by chain climbing).
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        let (mut a, mut b) = (u.0, v.0);
        while self.head[a as usize] != self.head[b as usize] {
            if self.depth[self.head[a as usize] as usize]
                < self.depth[self.head[b as usize] as usize]
            {
                std::mem::swap(&mut a, &mut b);
            }
            a = self.parent[self.head[a as usize] as usize];
        }
        VertexId(if self.depth[a as usize] <= self.depth[b as usize] {
            a
        } else {
            b
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds parent/depth/children for the tree
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \    \
    ///    3   4    5
    ///        |
    ///        6
    /// ```
    fn sample() -> (Vec<Option<VertexId>>, Vec<u32>, Vec<Vec<VertexId>>) {
        let parent = vec![
            None,
            Some(VertexId(0)),
            Some(VertexId(0)),
            Some(VertexId(1)),
            Some(VertexId(1)),
            Some(VertexId(2)),
            Some(VertexId(4)),
        ];
        let depth = vec![0, 1, 1, 2, 2, 2, 3];
        let mut children = vec![Vec::new(); 7];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(VertexId::new(v));
            }
        }
        (parent, depth, children)
    }

    #[test]
    fn positions_are_a_permutation_with_root_zero() {
        let (parent, depth, children) = sample();
        let idx = HldIndex::new(&parent, &depth, &children);
        assert_eq!(idx.pos(VertexId(0)), 0);
        let mut seen: Vec<u32> = (0..7).map(|v| idx.pos(VertexId(v))).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        for p in 0..7 {
            assert_eq!(idx.pos(idx.vertex_at(p)), p);
        }
    }

    #[test]
    fn chains_occupy_consecutive_positions() {
        let (parent, depth, children) = sample();
        let idx = HldIndex::new(&parent, &depth, &children);
        // The heavy path from the root is 0 - 1 - 4 - 6 (subtree sizes:
        // size(1) = 4 > size(2) = 2, size(4) = 2 > size(3) = 1).
        assert_eq!(idx.pos(VertexId(1)), 1);
        assert_eq!(idx.pos(VertexId(4)), 2);
        assert_eq!(idx.pos(VertexId(6)), 3);
        assert_eq!(idx.chain_head(VertexId(6)), VertexId(0));
        assert_eq!(idx.chain_head(VertexId(3)), VertexId(3));
    }

    #[test]
    fn path_runs_cover_the_walk_edges() {
        let (parent, depth, children) = sample();
        let idx = HldIndex::new(&parent, &depth, &children);
        // Naive edge set via parent walk, in position space.
        let naive = |u: usize, v: usize| {
            let l = idx.lca(VertexId(u as u32), VertexId(v as u32));
            let mut edges = Vec::new();
            for mut x in [u as u32, v as u32] {
                while x != l.0 {
                    edges.push(idx.parent_edge_pos(VertexId(x)).unwrap());
                    x = parent[x as usize].unwrap().0;
                }
            }
            edges.sort_unstable();
            edges
        };
        for u in 0..7 {
            for v in 0..7 {
                let mut from_runs: Vec<u32> = idx
                    .path_runs(VertexId(u), VertexId(v))
                    .iter()
                    .flat_map(|r| r.start..=r.end)
                    .collect();
                from_runs.sort_unstable();
                assert_eq!(
                    from_runs,
                    naive(u as usize, v as usize),
                    "path {u} - {v} mismatch"
                );
            }
        }
    }

    #[test]
    fn lca_matches_structure() {
        let (parent, depth, children) = sample();
        let idx = HldIndex::new(&parent, &depth, &children);
        assert_eq!(idx.lca(VertexId(3), VertexId(6)), VertexId(1));
        assert_eq!(idx.lca(VertexId(3), VertexId(5)), VertexId(0));
        assert_eq!(idx.lca(VertexId(6), VertexId(6)), VertexId(6));
        assert_eq!(idx.lca(VertexId(0), VertexId(5)), VertexId(0));
    }

    #[test]
    fn path_graph_is_one_chain_identity_numbering() {
        let n = 9usize;
        let parent: Vec<Option<VertexId>> = (0..n)
            .map(|v| (v > 0).then(|| VertexId((v - 1) as u32)))
            .collect();
        let depth: Vec<u32> = (0..n as u32).collect();
        let mut children = vec![Vec::new(); n];
        for v in 1..n {
            children[v - 1].push(VertexId(v as u32));
        }
        let idx = HldIndex::new(&parent, &depth, &children);
        for v in 0..n as u32 {
            assert_eq!(idx.pos(VertexId(v)), v);
        }
        let runs = idx.path_runs(VertexId(2), VertexId(7));
        assert_eq!(runs, vec![EdgeRun::new(2, 6)]);
    }

    #[test]
    fn run_count_is_logarithmic_on_a_balanced_tree() {
        // Complete binary tree on 2^10 - 1 vertices.
        let n = (1usize << 10) - 1;
        let parent: Vec<Option<VertexId>> = (0..n)
            .map(|v| (v > 0).then(|| VertexId(((v - 1) / 2) as u32)))
            .collect();
        let mut depth = vec![0u32; n];
        for v in 1..n {
            depth[v] = depth[(v - 1) / 2] + 1;
        }
        let mut children = vec![Vec::new(); n];
        for v in 1..n {
            children[(v - 1) / 2].push(VertexId(v as u32));
        }
        let idx = HldIndex::new(&parent, &depth, &children);
        // Path between the leftmost and rightmost leaf (depth 9 each, LCA
        // at the root): 18 edges, decomposed into at most 2 * log2(n) runs.
        let runs = idx.path_runs(VertexId((n - 1) as u32), VertexId((n / 2) as u32));
        assert!(
            runs.len() <= 20,
            "expected O(log n) runs, got {}",
            runs.len()
        );
        let total: usize = runs.iter().map(EdgeRun::len).sum();
        assert_eq!(total as u32, 18, "leaf-to-leaf path length");
    }
}
