//! The throughput-maximization problem on tree networks (Section 2).

use crate::demand::{Demand, Processor};
use crate::error::GraphError;
use crate::ids::{DemandId, InstanceId, NetworkId, ProcessorId, VertexId};
use crate::tree::TreeNetwork;
use crate::universe::{DemandInstance, DemandInstanceUniverse};

/// The tree-network scheduling problem instance of Section 2: a shared
/// vertex set, a set of tree networks over it, and a set of demands each
/// owned by a processor with an access set.
///
/// The optional per-edge capacities implement the capacitated ("non-uniform
/// bandwidths") extension of the IPPS version; when absent, every edge
/// offers 1 unit of bandwidth as in the arXiv text.
///
/// ```
/// use netsched_graph::{TreeProblem, VertexId};
///
/// let mut problem = TreeProblem::new(3);
/// let t = problem.add_network(vec![
///     (VertexId(0), VertexId(1)),
///     (VertexId(1), VertexId(2)),
/// ]).unwrap();
/// problem.add_demand(VertexId(0), VertexId(2), 5.0, 0.5, vec![t]).unwrap();
/// problem.add_demand(VertexId(1), VertexId(2), 1.0, 0.5, vec![t]).unwrap();
///
/// let universe = problem.universe();
/// assert_eq!(universe.num_instances(), 2);
/// // Both fit: their heights sum to 1.0 on the shared edge.
/// let all: Vec<_> = universe.instance_ids().collect();
/// assert!(universe.is_feasible(&all));
/// ```
#[derive(Debug, Clone)]
pub struct TreeProblem {
    n_vertices: usize,
    networks: Vec<TreeNetwork>,
    demands: Vec<Demand>,
    /// Access set of the processor owning each demand (indexed by demand).
    access: Vec<Vec<NetworkId>>,
    /// Per-network, per-edge capacities; empty means "all 1.0".
    capacities: Vec<Vec<f64>>,
}

impl TreeProblem {
    /// Creates an empty problem over `n_vertices` vertices.
    pub fn new(n_vertices: usize) -> Self {
        Self {
            n_vertices,
            networks: Vec::new(),
            demands: Vec::new(),
            access: Vec::new(),
            capacities: Vec::new(),
        }
    }

    /// Adds a tree network built from an edge list and returns its id.
    pub fn add_network(
        &mut self,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<NetworkId, GraphError> {
        let id = NetworkId::new(self.networks.len());
        let network = TreeNetwork::new(id, self.n_vertices, edges)?;
        self.capacities.push(vec![1.0; network.num_edges()]);
        self.networks.push(network);
        Ok(id)
    }

    /// Adds an already-constructed tree network (renumbering its id) and
    /// returns its id.
    pub fn add_tree(&mut self, edges: &TreeNetwork) -> Result<NetworkId, GraphError> {
        let edge_list = edges.edges().map(|(_, uv)| uv).collect();
        self.add_network(edge_list)
    }

    /// Adds a unit-height demand with the given access set; returns its id.
    pub fn add_unit_demand(
        &mut self,
        u: VertexId,
        v: VertexId,
        profit: f64,
        access: Vec<NetworkId>,
    ) -> Result<DemandId, GraphError> {
        self.add_demand(u, v, profit, 1.0, access)
    }

    /// Validates a prospective demand against this problem without adding
    /// it: the exact checks [`TreeProblem::add_demand`] performs (which
    /// delegates here), exposed so admission layers — the dynamic service
    /// in `netsched-service` — share one validator and cannot drift.
    pub fn validate_demand(
        &self,
        u: VertexId,
        v: VertexId,
        profit: f64,
        height: f64,
        access: &[NetworkId],
    ) -> Result<(), GraphError> {
        let id = DemandId::new(self.demands.len());
        if u == v {
            return Err(GraphError::DegenerateDemand { demand: id });
        }
        for w in [u, v] {
            if w.index() >= self.n_vertices {
                return Err(GraphError::DemandVertexOutOfRange {
                    demand: id,
                    vertex: w,
                    vertices: self.n_vertices,
                });
            }
        }
        if profit <= 0.0 || !profit.is_finite() {
            return Err(GraphError::NonPositiveProfit { demand: id, profit });
        }
        if height <= 0.0 || height > 1.0 || !height.is_finite() {
            return Err(GraphError::InvalidHeight { demand: id, height });
        }
        if access.is_empty() {
            return Err(GraphError::EmptyAccessSet { demand: id });
        }
        for &t in access {
            if t.index() >= self.networks.len() {
                return Err(GraphError::UnknownNetwork {
                    network: t,
                    networks: self.networks.len(),
                });
            }
        }
        Ok(())
    }

    /// Adds a demand with an arbitrary height and the given access set;
    /// returns its id.
    pub fn add_demand(
        &mut self,
        u: VertexId,
        v: VertexId,
        profit: f64,
        height: f64,
        access: Vec<NetworkId>,
    ) -> Result<DemandId, GraphError> {
        self.validate_demand(u, v, profit, height, &access)?;
        let id = DemandId::new(self.demands.len());
        let mut access = access;
        access.sort_unstable();
        access.dedup();
        self.demands
            .push(Demand::with_height(id, u, v, profit, height));
        self.access.push(access);
        Ok(id)
    }

    /// Sets the capacity of a single edge of a network (capacitated
    /// extension), addressing the edge by its end-points — the robust way
    /// to target a physical link, since positional edge indices refer to
    /// the network's canonical (HLD) edge order, not the input order.
    pub fn set_capacity_between(
        &mut self,
        network: NetworkId,
        u: VertexId,
        v: VertexId,
        capacity: f64,
    ) -> Result<(), GraphError> {
        if network.index() >= self.networks.len() {
            return Err(GraphError::UnknownNetwork {
                network,
                networks: self.networks.len(),
            });
        }
        let edge = self.networks[network.index()]
            .edge_between(u, v)
            .ok_or(GraphError::NoSuchEdge { network, u, v })?;
        self.set_capacity(network, edge.index(), capacity)
    }

    /// Sets the capacity of a single edge of a network (capacitated
    /// extension).
    ///
    /// `edge` is an index into the network's **canonical (HLD) edge
    /// order** — the order reported by [`TreeNetwork::edges`] — which may
    /// differ from the order edges were passed to
    /// [`TreeProblem::add_network`]. Prefer
    /// [`TreeProblem::set_capacity_between`] when targeting a link by its
    /// end-points. (For path graphs listed in natural order the two orders
    /// coincide.)
    pub fn set_capacity(
        &mut self,
        network: NetworkId,
        edge: usize,
        capacity: f64,
    ) -> Result<(), GraphError> {
        if network.index() >= self.networks.len() {
            return Err(GraphError::UnknownNetwork {
                network,
                networks: self.networks.len(),
            });
        }
        if edge >= self.capacities[network.index()].len() {
            return Err(GraphError::LengthMismatch {
                what: "edge index for capacity",
                expected: self.capacities[network.index()].len(),
                actual: edge,
            });
        }
        if capacity <= 0.0 || !capacity.is_finite() {
            return Err(GraphError::InvalidCapacity {
                network,
                edge,
                capacity,
            });
        }
        self.capacities[network.index()][edge] = capacity;
        Ok(())
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of networks `r`.
    #[inline]
    pub fn num_networks(&self) -> usize {
        self.networks.len()
    }

    /// Number of demands `m` (= number of processors).
    #[inline]
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// The networks.
    #[inline]
    pub fn networks(&self) -> &[TreeNetwork] {
        &self.networks
    }

    /// A single network.
    #[inline]
    pub fn network(&self, t: NetworkId) -> &TreeNetwork {
        &self.networks[t.index()]
    }

    /// The demands.
    #[inline]
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// A single demand.
    #[inline]
    pub fn demand(&self, a: DemandId) -> &Demand {
        &self.demands[a.index()]
    }

    /// The access set of the processor owning demand `a`.
    #[inline]
    pub fn access(&self, a: DemandId) -> &[NetworkId] {
        &self.access[a.index()]
    }

    /// The per-edge capacities of network `t`.
    #[inline]
    pub fn capacities(&self, t: NetworkId) -> &[f64] {
        &self.capacities[t.index()]
    }

    /// Returns `true` if every demand has height exactly 1.
    pub fn is_unit_height(&self) -> bool {
        self.demands
            .iter()
            .all(|d| (d.height - 1.0).abs() <= crate::EPS)
    }

    /// Returns the processors (one per demand, with matching indices).
    pub fn processors(&self) -> Vec<Processor> {
        self.demands
            .iter()
            .map(|d| {
                Processor::new(
                    ProcessorId::new(d.id.index()),
                    d.id,
                    self.access[d.id.index()].clone(),
                )
            })
            .collect()
    }

    /// Validates the problem as a whole.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (a, acc) in self.access.iter().enumerate() {
            if acc.is_empty() {
                return Err(GraphError::EmptyAccessSet {
                    demand: DemandId::new(a),
                });
            }
        }
        if self.capacities.len() != self.networks.len() {
            return Err(GraphError::LengthMismatch {
                what: "capacities per network",
                expected: self.networks.len(),
                actual: self.capacities.len(),
            });
        }
        Ok(())
    }

    /// Flattens the problem into the demand-instance universe of Section 2:
    /// one instance per (demand, accessible network) pair, with the unique
    /// path materialized.
    pub fn universe(&self) -> DemandInstanceUniverse {
        let mut instances = Vec::new();
        for demand in &self.demands {
            for &t in &self.access[demand.id.index()] {
                let network = &self.networks[t.index()];
                let path = network.path_edges(demand.u, demand.v);
                instances.push(DemandInstance {
                    id: InstanceId::new(instances.len()),
                    demand: demand.id,
                    network: t,
                    profit: demand.profit,
                    height: demand.height,
                    path,
                    start: None,
                });
            }
        }
        let edges_per_network = self.networks.iter().map(|t| t.num_edges()).collect();
        DemandInstanceUniverse::new(
            instances,
            self.demands.len(),
            edges_per_network,
            Some(self.capacities.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2 of the paper: a single tree-network with three demands
    /// ⟨1,10⟩, ⟨2,3⟩ and ⟨12,13⟩ which all share the edge ⟨4,5⟩.
    ///
    /// We reproduce the topology with 0-based vertex ids using a 13-vertex
    /// tree where the three demand paths pairwise share edge (3,4).
    fn figure2_like_problem() -> TreeProblem {
        // Build a caterpillar-ish tree: 0-1-2-3-4-5-6-7 spine, leaves
        // 8..12 hanging off.
        let mut p = TreeProblem::new(13);
        let mut edges: Vec<(VertexId, VertexId)> = (0..7)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        edges.push((VertexId(8), VertexId(2)));
        edges.push((VertexId(9), VertexId(3)));
        edges.push((VertexId(10), VertexId(4)));
        edges.push((VertexId(11), VertexId(5)));
        edges.push((VertexId(12), VertexId(6)));
        let t = p.add_network(edges).unwrap();
        // Three demands whose paths all use edge (3,4) of the spine.
        p.add_demand(VertexId(0), VertexId(7), 3.0, 0.4, vec![t])
            .unwrap();
        p.add_demand(VertexId(9), VertexId(10), 2.0, 0.7, vec![t])
            .unwrap();
        p.add_demand(VertexId(2), VertexId(11), 1.0, 0.3, vec![t])
            .unwrap();
        p
    }

    #[test]
    fn build_and_flatten() {
        let p = figure2_like_problem();
        assert_eq!(p.num_networks(), 1);
        assert_eq!(p.num_demands(), 3);
        p.validate().unwrap();
        let u = p.universe();
        assert_eq!(u.num_instances(), 3);
        // All three paths share the spine edge between vertices 3 and 4, so
        // all pairs overlap.
        assert!(u.overlapping(InstanceId(0), InstanceId(1)));
        assert!(u.overlapping(InstanceId(0), InstanceId(2)));
        assert!(u.overlapping(InstanceId(1), InstanceId(2)));
        // Unit-height semantics would allow only one of them...
        assert!(u.is_independent_set(&[InstanceId(0)]));
        assert!(!u.is_independent_set(&[InstanceId(0), InstanceId(1)]));
        // ...but with heights 0.4, 0.7, 0.3 the first and third fit together
        // (exactly as in Figure 2's discussion).
        assert!(u.is_feasible(&[InstanceId(0), InstanceId(2)]));
        assert!(!u.is_feasible(&[InstanceId(0), InstanceId(1)]));
    }

    #[test]
    fn rejects_bad_demands() {
        let mut p = TreeProblem::new(4);
        let t = p
            .add_network(vec![
                (VertexId(0), VertexId(1)),
                (VertexId(1), VertexId(2)),
                (VertexId(2), VertexId(3)),
            ])
            .unwrap();
        assert!(matches!(
            p.add_unit_demand(VertexId(1), VertexId(1), 1.0, vec![t]),
            Err(GraphError::DegenerateDemand { .. })
        ));
        assert!(matches!(
            p.add_unit_demand(VertexId(0), VertexId(9), 1.0, vec![t]),
            Err(GraphError::DemandVertexOutOfRange { .. })
        ));
        assert!(matches!(
            p.add_unit_demand(VertexId(0), VertexId(1), 0.0, vec![t]),
            Err(GraphError::NonPositiveProfit { .. })
        ));
        assert!(matches!(
            p.add_demand(VertexId(0), VertexId(1), 1.0, 1.5, vec![t]),
            Err(GraphError::InvalidHeight { .. })
        ));
        assert!(matches!(
            p.add_unit_demand(VertexId(0), VertexId(1), 1.0, vec![]),
            Err(GraphError::EmptyAccessSet { .. })
        ));
        assert!(matches!(
            p.add_unit_demand(VertexId(0), VertexId(1), 1.0, vec![NetworkId(7)]),
            Err(GraphError::UnknownNetwork { .. })
        ));
    }

    #[test]
    fn multiple_networks_multiple_instances() {
        let mut p = TreeProblem::new(4);
        let line_edges: Vec<(VertexId, VertexId)> = (0..3)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        let t0 = p.add_network(line_edges.clone()).unwrap();
        let t1 = p.add_network(line_edges).unwrap();
        p.add_unit_demand(VertexId(0), VertexId(3), 1.0, vec![t0, t1])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(2), 1.0, vec![t1])
            .unwrap();
        let u = p.universe();
        assert_eq!(u.num_instances(), 3);
        assert_eq!(u.instances_of_demand(DemandId(0)).len(), 2);
        assert_eq!(u.instances_on_network(t1).len(), 2);
        // Instances of the same demand on different networks conflict.
        let d0 = u.instances_of_demand(DemandId(0));
        assert!(u.conflicting(d0[0], d0[1]));
    }

    #[test]
    fn capacities_default_to_one_and_can_be_overridden() {
        let mut p = TreeProblem::new(3);
        let t = p
            .add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        assert_eq!(p.capacities(t), &[1.0, 1.0]);
        p.set_capacity(t, 1, 2.5).unwrap();
        assert_eq!(p.capacities(t), &[1.0, 2.5]);
        assert!(matches!(
            p.set_capacity(t, 7, 1.0),
            Err(GraphError::LengthMismatch { .. })
        ));
        assert!(matches!(
            p.set_capacity(t, 0, -1.0),
            Err(GraphError::InvalidCapacity { .. })
        ));
        p.add_unit_demand(VertexId(0), VertexId(2), 1.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(2), 1.0, vec![t])
            .unwrap();
        let u = p.universe();
        // Edge 1 (between vertices 1 and 2) has capacity 2.5, so the two
        // unit-height demands can share it; edge 0 is used only by demand 0.
        assert!(u.is_feasible(&[InstanceId(0), InstanceId(1)]));
    }

    #[test]
    fn set_capacity_between_targets_the_physical_link() {
        // A branching tree where HLD canonicalization permutes the input
        // edge order: addressing by end-points must still hit the intended
        // link regardless of the permutation.
        let mut p = TreeProblem::new(9);
        let t = p
            .add_network(vec![
                (VertexId(0), VertexId(1)),
                (VertexId(0), VertexId(2)),
                (VertexId(1), VertexId(3)),
                (VertexId(1), VertexId(4)),
                (VertexId(1), VertexId(5)),
                (VertexId(2), VertexId(6)),
                (VertexId(2), VertexId(7)),
                (VertexId(2), VertexId(8)),
            ])
            .unwrap();
        p.set_capacity_between(t, VertexId(0), VertexId(2), 2.0)
            .unwrap();
        // Symmetric endpoint order works too.
        p.set_capacity_between(t, VertexId(1), VertexId(0), 3.0)
            .unwrap();
        let network = p.network(t).clone();
        for (e, (u, v)) in network.edges() {
            let expected = match (u.index().min(v.index()), u.index().max(v.index())) {
                (0, 2) => 2.0,
                (0, 1) => 3.0,
                _ => 1.0,
            };
            assert_eq!(p.capacities(t)[e.index()], expected, "link {u}-{v}");
        }
        assert!(matches!(
            p.set_capacity_between(t, VertexId(3), VertexId(8), 2.0),
            Err(GraphError::NoSuchEdge { .. })
        ));
        assert!(matches!(
            p.set_capacity_between(NetworkId(9), VertexId(0), VertexId(1), 2.0),
            Err(GraphError::UnknownNetwork { .. })
        ));
    }

    #[test]
    fn processors_mirror_demands() {
        let p = figure2_like_problem();
        let procs = p.processors();
        assert_eq!(procs.len(), 3);
        for (i, pr) in procs.iter().enumerate() {
            assert_eq!(pr.demand.index(), i);
            assert_eq!(pr.access, p.access(DemandId::new(i)));
        }
        // All processors share the single network, so all pairs communicate.
        assert!(procs[0].can_communicate_with(&procs[1]));
        assert!(procs[1].can_communicate_with(&procs[2]));
    }
}
