//! Error types for problem construction and validation.

use crate::ids::{DemandId, NetworkId, VertexId};
use std::fmt;

/// Errors raised while constructing or validating networks and problems.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A tree network was given a number of edges different from `n - 1`.
    NotATree {
        /// Network being constructed.
        network: NetworkId,
        /// Number of vertices.
        vertices: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// A tree network is not connected (equivalently, it contains a cycle
    /// when it has `n - 1` edges).
    Disconnected {
        /// Network being constructed.
        network: NetworkId,
    },
    /// An edge references a vertex outside `0..n`.
    VertexOutOfRange {
        /// Network being constructed.
        network: NetworkId,
        /// Offending vertex.
        vertex: VertexId,
        /// Number of vertices in the network.
        vertices: usize,
    },
    /// An edge connects a vertex to itself.
    SelfLoop {
        /// Network being constructed.
        network: NetworkId,
        /// The vertex with a self-loop.
        vertex: VertexId,
    },
    /// The same undirected edge appears twice.
    DuplicateEdge {
        /// Network being constructed.
        network: NetworkId,
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// A demand has identical end-points.
    DegenerateDemand {
        /// Offending demand.
        demand: DemandId,
    },
    /// A demand has a non-positive profit.
    NonPositiveProfit {
        /// Offending demand.
        demand: DemandId,
        /// The profit supplied.
        profit: f64,
    },
    /// A demand has a height outside `(0, 1]`.
    InvalidHeight {
        /// Offending demand.
        demand: DemandId,
        /// The height supplied.
        height: f64,
    },
    /// A demand's end-point is outside the vertex set.
    DemandVertexOutOfRange {
        /// Offending demand.
        demand: DemandId,
        /// Offending vertex.
        vertex: VertexId,
        /// Number of vertices.
        vertices: usize,
    },
    /// A processor's access set references a network that does not exist.
    UnknownNetwork {
        /// Offending network reference.
        network: NetworkId,
        /// Number of networks in the problem.
        networks: usize,
    },
    /// A processor has an empty access set, so its demand can never be
    /// scheduled.
    EmptyAccessSet {
        /// The demand owned by the processor.
        demand: DemandId,
    },
    /// Mismatched array lengths (e.g. capacities not matching edge count).
    LengthMismatch {
        /// Human-readable description of what mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A capacity is non-positive.
    InvalidCapacity {
        /// Network owning the edge.
        network: NetworkId,
        /// Edge index.
        edge: usize,
        /// The capacity supplied.
        capacity: f64,
    },
    /// No edge connects the given vertex pair in the network (raised when
    /// addressing a capacity by end-points).
    NoSuchEdge {
        /// Network queried.
        network: NetworkId,
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// A windowed line demand has an empty or inverted window, or a
    /// processing time that does not fit in the window.
    InvalidWindow {
        /// Offending demand.
        demand: DemandId,
        /// Release time.
        release: u32,
        /// Deadline.
        deadline: u32,
        /// Processing time.
        processing: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotATree {
                network,
                vertices,
                edges,
            } => write!(
                f,
                "network {network} is not a tree: {vertices} vertices but {edges} edges (expected {})",
                vertices.saturating_sub(1)
            ),
            GraphError::Disconnected { network } => {
                write!(f, "network {network} is not connected")
            }
            GraphError::VertexOutOfRange {
                network,
                vertex,
                vertices,
            } => write!(
                f,
                "network {network}: vertex {vertex} out of range (n = {vertices})"
            ),
            GraphError::SelfLoop { network, vertex } => {
                write!(f, "network {network}: self loop at {vertex}")
            }
            GraphError::DuplicateEdge { network, u, v } => {
                write!(f, "network {network}: duplicate edge {u}-{v}")
            }
            GraphError::DegenerateDemand { demand } => {
                write!(f, "demand {demand} has identical end-points")
            }
            GraphError::NonPositiveProfit { demand, profit } => {
                write!(f, "demand {demand} has non-positive profit {profit}")
            }
            GraphError::InvalidHeight { demand, height } => {
                write!(f, "demand {demand} has height {height} outside (0, 1]")
            }
            GraphError::DemandVertexOutOfRange {
                demand,
                vertex,
                vertices,
            } => write!(
                f,
                "demand {demand}: end-point {vertex} out of range (n = {vertices})"
            ),
            GraphError::UnknownNetwork { network, networks } => write!(
                f,
                "access set references unknown network {network} (r = {networks})"
            ),
            GraphError::EmptyAccessSet { demand } => {
                write!(f, "demand {demand} has an empty access set")
            }
            GraphError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            GraphError::InvalidCapacity {
                network,
                edge,
                capacity,
            } => write!(
                f,
                "network {network}, edge {edge}: invalid capacity {capacity}"
            ),
            GraphError::NoSuchEdge { network, u, v } => {
                write!(f, "network {network}: no edge between {u} and {v}")
            }
            GraphError::InvalidWindow {
                demand,
                release,
                deadline,
                processing,
            } => write!(
                f,
                "demand {demand}: invalid window [{release}, {deadline}] with processing time {processing}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let err = GraphError::NotATree {
            network: NetworkId::new(3),
            vertices: 10,
            edges: 7,
        };
        let msg = err.to_string();
        assert!(msg.contains("T3"));
        assert!(msg.contains("10"));
        assert!(msg.contains("expected 9"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&GraphError::Disconnected {
            network: NetworkId::new(0),
        });
    }
}
