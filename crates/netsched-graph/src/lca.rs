//! Lowest-common-ancestor queries via binary lifting.
//!
//! Tree networks answer path queries (`path(d)` in the paper) by splitting a
//! vertex pair `⟨u, v⟩` at their LCA with respect to an arbitrary root. The
//! index is built once per network in `O(n log n)` and answers queries in
//! `O(log n)`.

use crate::ids::VertexId;

/// Binary-lifting LCA index over a rooted tree.
#[derive(Debug, Clone)]
pub struct LcaIndex {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (the root is its own
    /// ancestor at every level).
    up: Vec<Vec<u32>>,
    /// Depth of each vertex; the root has depth 0.
    depth: Vec<u32>,
}

impl LcaIndex {
    /// Builds the index from a parent array (rooted tree).
    ///
    /// `parent[v]` must be `None` exactly for the root, and `depth[v]` must
    /// equal the number of edges from the root to `v`.
    pub fn new(parent: &[Option<VertexId>], depth: &[u32]) -> Self {
        let n = parent.len();
        assert_eq!(n, depth.len(), "parent and depth arrays must match");
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (usize::BITS - usize::leading_zeros(max_depth.max(1) as usize)) as usize;
        let levels = levels.max(1);

        let mut up = vec![vec![0u32; n]; levels];
        for v in 0..n {
            up[0][v] = match parent[v] {
                Some(p) => p.0,
                None => v as u32,
            };
        }
        for k in 1..levels {
            for v in 0..n {
                let mid = up[k - 1][v] as usize;
                up[k][v] = up[k - 1][mid];
            }
        }
        Self {
            up,
            depth: depth.to_vec(),
        }
    }

    /// Returns the depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// Returns the ancestor of `v` that is `steps` edges closer to the root.
    /// Saturates at the root.
    pub fn ancestor(&self, v: VertexId, steps: u32) -> VertexId {
        // Clamp to the depth of `v`: walking past the root stays at the root.
        let mut steps = steps.min(self.depth[v.index()]);
        let mut v = v.index();
        let mut k = 0;
        while steps > 0 && k < self.up.len() {
            if steps & 1 == 1 {
                v = self.up[k][v] as usize;
            }
            steps >>= 1;
            k += 1;
        }
        VertexId(v as u32)
    }

    /// Returns the lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        let (mut a, mut b) = (u, v);
        if self.depth(a) < self.depth(b) {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.ancestor(a, self.depth(a) - self.depth(b));
        if a == b {
            return a;
        }
        let mut ai = a.index();
        let mut bi = b.index();
        for k in (0..self.up.len()).rev() {
            if self.up[k][ai] != self.up[k][bi] {
                ai = self.up[k][ai] as usize;
                bi = self.up[k][bi] as usize;
            }
        }
        VertexId(self.up[0][ai])
    }

    /// Number of edges on the path between `u` and `v`.
    pub fn distance(&self, u: VertexId, v: VertexId) -> u32 {
        let l = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(l)
    }

    /// Returns `true` if `anc` lies on the path from the root to `v`
    /// (inclusive of both ends).
    pub fn is_ancestor_or_self(&self, anc: VertexId, v: VertexId) -> bool {
        if self.depth(anc) > self.depth(v) {
            return false;
        }
        self.ancestor(v, self.depth(v) - self.depth(anc)) == anc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a parent/depth pair for the tree
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \    \
    ///    3   4    5
    ///        |
    ///        6
    /// ```
    fn sample() -> (Vec<Option<VertexId>>, Vec<u32>) {
        let parent = vec![
            None,
            Some(VertexId(0)),
            Some(VertexId(0)),
            Some(VertexId(1)),
            Some(VertexId(1)),
            Some(VertexId(2)),
            Some(VertexId(4)),
        ];
        let depth = vec![0, 1, 1, 2, 2, 2, 3];
        (parent, depth)
    }

    #[test]
    fn lca_basic() {
        let (parent, depth) = sample();
        let idx = LcaIndex::new(&parent, &depth);
        assert_eq!(idx.lca(VertexId(3), VertexId(4)), VertexId(1));
        assert_eq!(idx.lca(VertexId(3), VertexId(5)), VertexId(0));
        assert_eq!(idx.lca(VertexId(6), VertexId(3)), VertexId(1));
        assert_eq!(idx.lca(VertexId(6), VertexId(6)), VertexId(6));
        assert_eq!(idx.lca(VertexId(0), VertexId(6)), VertexId(0));
    }

    #[test]
    fn distance_basic() {
        let (parent, depth) = sample();
        let idx = LcaIndex::new(&parent, &depth);
        assert_eq!(idx.distance(VertexId(3), VertexId(4)), 2);
        assert_eq!(idx.distance(VertexId(6), VertexId(5)), 5);
        assert_eq!(idx.distance(VertexId(2), VertexId(2)), 0);
    }

    #[test]
    fn ancestor_queries() {
        let (parent, depth) = sample();
        let idx = LcaIndex::new(&parent, &depth);
        assert_eq!(idx.ancestor(VertexId(6), 1), VertexId(4));
        assert_eq!(idx.ancestor(VertexId(6), 2), VertexId(1));
        assert_eq!(idx.ancestor(VertexId(6), 3), VertexId(0));
        assert_eq!(idx.ancestor(VertexId(6), 10), VertexId(0));
        assert!(idx.is_ancestor_or_self(VertexId(1), VertexId(6)));
        assert!(!idx.is_ancestor_or_self(VertexId(2), VertexId(6)));
        assert!(idx.is_ancestor_or_self(VertexId(6), VertexId(6)));
    }

    #[test]
    fn single_vertex_tree() {
        let idx = LcaIndex::new(&[None], &[0]);
        assert_eq!(idx.lca(VertexId(0), VertexId(0)), VertexId(0));
        assert_eq!(idx.distance(VertexId(0), VertexId(0)), 0);
    }

    #[test]
    fn path_graph_lca() {
        // 0 - 1 - 2 - 3 - 4 rooted at 0.
        let parent: Vec<Option<VertexId>> = (0..5)
            .map(|i| if i == 0 { None } else { Some(VertexId(i - 1)) })
            .collect();
        let depth: Vec<u32> = (0..5).collect();
        let idx = LcaIndex::new(&parent, &depth);
        assert_eq!(idx.lca(VertexId(4), VertexId(2)), VertexId(2));
        assert_eq!(idx.distance(VertexId(0), VertexId(4)), 4);
    }
}
