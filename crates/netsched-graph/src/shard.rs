//! Sharding the demand-instance universe by network.
//!
//! The conflict structure of the paper is a union of per-network interval
//! graphs joined only by same-demand cliques: two instances overlap only if
//! they live on the same network, so everything driven by overlaps — the
//! interval sweep that builds the conflict graph, the per-epoch MIS rounds,
//! the dual raises — decomposes along [`NetworkId`] boundaries. A
//! [`ShardedUniverse`] materializes that decomposition: one shard per
//! network holding the instances of that network under a dense *local*
//! id space, a global↔local id table, and the shard's interval runs
//! pre-sorted for sweeping.
//!
//! The sharded view is purely a secondary index over a
//! [`DemandInstanceUniverse`]; it stores no profits, heights or paths of its
//! own and is cheap to rebuild (`O(|D| log n)` for the run sort). Consumers
//! (`netsched-distrib::conflict`, the two-phase engine in `netsched-core`)
//! drive one task per shard through rayon and translate local results back
//! through the id table.

use crate::ids::{InstanceId, NetworkId};
use crate::universe::{DemandInstanceUniverse, UniverseDelta};

/// One interval run of one instance within a shard, in local instance ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardRun {
    /// First edge index of the run (inclusive).
    pub start: u32,
    /// Last edge index of the run (inclusive).
    pub end: u32,
    /// Local id (within the shard) of the instance the run belongs to.
    pub local: u32,
}

/// The slice of a universe living on one network.
#[derive(Debug, Clone)]
pub struct UniverseShard {
    network: NetworkId,
    /// Local id → global instance id; ascending, so local order and global
    /// order agree within a shard.
    globals: Vec<InstanceId>,
    /// Every interval run of every instance of the shard, sorted by
    /// `(start, end, local)` — ready for a left-to-right sweep.
    runs: Vec<ShardRun>,
    /// Number of edges of the shard's network.
    num_edges: usize,
}

impl UniverseShard {
    /// The network this shard covers.
    #[inline]
    pub fn network(&self) -> NetworkId {
        self.network
    }

    /// Number of instances in the shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Returns `true` when the shard holds no instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Local id → global instance id table (ascending).
    #[inline]
    pub fn globals(&self) -> &[InstanceId] {
        &self.globals
    }

    /// The global id of a local instance.
    #[inline]
    pub fn global_of(&self, local: u32) -> InstanceId {
        self.globals[local as usize]
    }

    /// The shard's interval runs, sorted by `(start, end, local)`.
    #[inline]
    pub fn runs(&self) -> &[ShardRun] {
        &self.runs
    }

    /// Number of edges of the shard's network.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// The per-shard record of what the last [`ShardedUniverse::apply_delta`]
/// did to one **dirty** shard's local id space — the splice contract the
/// incremental conflict-CSR maintenance in `netsched-distrib` consumes
/// instead of re-sweeping the shard from scratch.
#[derive(Debug, Clone, Default)]
pub struct ShardSplice {
    /// Old local id → new local id; `u32::MAX` for removed instances.
    /// Monotone on survivors (local order is global order restricted to
    /// the shard, and the global remap is monotone).
    local_remap: Vec<u32>,
    /// Locals `>= first_new_local` were appended by the splice (arrivals
    /// carry larger global ids than every survivor, so they form a suffix
    /// of the shard's local id space too).
    first_new_local: u32,
}

impl ShardSplice {
    /// Old local id → new local id map (`u32::MAX` = removed).
    #[inline]
    pub fn local_remap(&self) -> &[u32] {
        &self.local_remap
    }

    /// First local id appended by the splice.
    #[inline]
    pub fn first_new_local(&self) -> u32 {
        self.first_new_local
    }
}

/// A universe partitioned into one shard per network.
///
/// Construction is deterministic: shard `t` is network `t`, local ids follow
/// ascending global ids, runs are sorted by `(start, end, local)`. Empty
/// networks yield empty shards so shard indices always align with
/// [`NetworkId`]s.
#[derive(Debug, Clone)]
pub struct ShardedUniverse {
    shards: Vec<UniverseShard>,
    /// Global instance id → owning shard (== network index).
    shard_of: Vec<u32>,
    /// Global instance id → local id within its shard.
    local_of: Vec<u32>,
    /// Per-shard splice records of the **last** `apply_delta`; only the
    /// entries of that delta's dirty shards are current.
    splices: Vec<ShardSplice>,
    /// Reusable scratch for the dirty-shard run merge (arrival runs,
    /// sorted).
    run_scratch_new: Vec<ShardRun>,
    /// Reusable scratch the merged run array is assembled into before it
    /// is swapped with the shard's.
    run_scratch_merged: Vec<ShardRun>,
}

impl ShardedUniverse {
    /// Partitions a universe by network.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        let n = universe.num_instances();
        let mut shard_of = vec![0u32; n];
        let mut local_of = vec![0u32; n];
        let mut shards = Vec::with_capacity(universe.num_networks());
        for t in 0..universe.num_networks() {
            let network = NetworkId::new(t);
            let globals: Vec<InstanceId> = universe.instances_on_network(network).to_vec();
            debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));
            let mut runs = Vec::new();
            for (local, &d) in globals.iter().enumerate() {
                shard_of[d.index()] = t as u32;
                local_of[d.index()] = local as u32;
                for run in universe.instance(d).path.runs() {
                    runs.push(ShardRun {
                        start: run.start,
                        end: run.end,
                        local: local as u32,
                    });
                }
            }
            runs.sort_unstable();
            shards.push(UniverseShard {
                network,
                globals,
                runs,
                num_edges: universe.num_edges(network),
            });
        }
        let num_shards = shards.len();
        Self {
            shards,
            shard_of,
            local_of,
            splices: vec![ShardSplice::default(); num_shards],
            run_scratch_new: Vec::new(),
            run_scratch_merged: Vec::new(),
        }
    }

    /// Number of shards (== number of networks).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of instances over all shards.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.shard_of.len()
    }

    /// All shards, indexed by network.
    #[inline]
    pub fn shards(&self) -> &[UniverseShard] {
        &self.shards
    }

    /// The shard of network `t`.
    #[inline]
    pub fn shard(&self, t: NetworkId) -> &UniverseShard {
        &self.shards[t.index()]
    }

    /// The shard (network) owning a global instance.
    #[inline]
    pub fn shard_of(&self, d: InstanceId) -> NetworkId {
        NetworkId(self.shard_of[d.index()])
    }

    /// The local id of a global instance within its shard.
    #[inline]
    pub fn local_of(&self, d: InstanceId) -> u32 {
        self.local_of[d.index()]
    }

    /// Translates a (shard, local id) pair back to the global instance id.
    #[inline]
    pub fn to_global(&self, t: NetworkId, local: u32) -> InstanceId {
        self.shards[t.index()].global_of(local)
    }

    /// The splice record the last [`ShardedUniverse::apply_delta`] wrote
    /// for shard `t`. Only current for that delta's **dirty** shards
    /// (clean shards' records are stale leftovers of older epochs).
    #[inline]
    pub fn shard_splice(&self, t: NetworkId) -> &ShardSplice {
        &self.splices[t.index()]
    }

    /// Heap bytes committed by the sharded index (globals/runs columns,
    /// id tables, splice records and run scratch).
    pub fn committed_bytes(&self) -> usize {
        let mut bytes =
            (self.shard_of.capacity() + self.local_of.capacity()) * std::mem::size_of::<u32>();
        for shard in &self.shards {
            bytes += shard.globals.capacity() * std::mem::size_of::<InstanceId>();
            bytes += shard.runs.capacity() * std::mem::size_of::<ShardRun>();
        }
        bytes += self.shards.capacity() * std::mem::size_of::<UniverseShard>();
        for splice in &self.splices {
            bytes += splice.local_remap.capacity() * std::mem::size_of::<u32>();
        }
        bytes += self.splices.capacity() * std::mem::size_of::<ShardSplice>();
        bytes += (self.run_scratch_new.capacity() + self.run_scratch_merged.capacity())
            * std::mem::size_of::<ShardRun>();
        bytes
    }

    /// Re-synchronizes the partition with a universe that was just spliced
    /// by [`DemandInstanceUniverse::apply_demand_delta`], splicing only
    /// the shards of the delta's **dirty** networks.
    ///
    /// * Clean shards keep their instances and local ids by construction,
    ///   so their run arrays are untouched (no re-sort) and only the
    ///   global-id column is renumbered through the delta's instance remap
    ///   — `O(shard size)` with no path or sort work.
    /// * Dirty shards are **spliced, not rebuilt**: the globals column is
    ///   compacted in place (recording the old→new local remap in the
    ///   shard's [`ShardSplice`]), arrivals are appended from the suffix of
    ///   `instances_on_network`, and the run array keeps its survivors —
    ///   renumbered in place, which preserves the `(start, end, local)`
    ///   order because the local remap is monotone — merged with the
    ///   arrivals' runs, of which only the `O(batch)` new ones are sorted.
    ///   Every buffer is reused in place, so steady-state epochs allocate
    ///   nothing.
    /// * The global `shard_of` / `local_of` tables are refilled in one
    ///   `O(|D|)` pass.
    ///
    /// The result is byte-identical to `ShardedUniverse::build(universe)`:
    /// the instance remap is monotone on survivors, so renumbered globals
    /// stay ascending, surviving runs stay sorted, and the merge produces
    /// exactly the order a full re-sort would.
    pub fn apply_delta(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        let n = universe.num_instances();
        self.shard_of.clear();
        self.shard_of.resize(n, 0);
        self.local_of.clear();
        self.local_of.resize(n, 0);
        self.splices
            .resize_with(self.shards.len(), ShardSplice::default);
        let remap = delta.instance_remap();
        for (t, shard) in self.shards.iter_mut().enumerate() {
            if delta.dirty()[t] {
                // Compact the globals column in place, recording the
                // old→new local renumbering.
                let splice = &mut self.splices[t];
                splice.local_remap.clear();
                let mut next_local = 0u32;
                shard.globals.retain_mut(|g| {
                    let new = remap[g.index()];
                    if new == u32::MAX {
                        splice.local_remap.push(u32::MAX);
                        false
                    } else {
                        splice.local_remap.push(next_local);
                        *g = InstanceId(new);
                        next_local += 1;
                        true
                    }
                });
                splice.first_new_local = next_local;
                // Arrivals carry larger global ids than every survivor, so
                // the shard's survivors are exactly the prefix of the
                // universe's (ascending) per-network index.
                let all = universe.instances_on_network(shard.network);
                debug_assert_eq!(
                    &shard.globals[..],
                    &all[..next_local as usize],
                    "dirty-shard survivors must form a prefix of the network index"
                );
                shard.globals.extend_from_slice(&all[next_local as usize..]);

                // Splice the run array: drop removed locals' runs and
                // renumber survivors in place (monotone remap keeps the
                // `(start, end, local)` order), then merge the arrivals'
                // runs — the only ones that need sorting.
                shard
                    .runs
                    .retain_mut(|r| match splice.local_remap[r.local as usize] {
                        u32::MAX => false,
                        new => {
                            r.local = new;
                            true
                        }
                    });
                self.run_scratch_new.clear();
                for local in splice.first_new_local..shard.globals.len() as u32 {
                    let d = shard.globals[local as usize];
                    for run in universe.instance(d).path.runs() {
                        self.run_scratch_new.push(ShardRun {
                            start: run.start,
                            end: run.end,
                            local,
                        });
                    }
                }
                self.run_scratch_new.sort_unstable();
                self.run_scratch_merged.clear();
                self.run_scratch_merged
                    .reserve(shard.runs.len() + self.run_scratch_new.len());
                let (mut i, mut j) = (0, 0);
                while i < shard.runs.len() && j < self.run_scratch_new.len() {
                    if shard.runs[i] <= self.run_scratch_new[j] {
                        self.run_scratch_merged.push(shard.runs[i]);
                        i += 1;
                    } else {
                        self.run_scratch_merged.push(self.run_scratch_new[j]);
                        j += 1;
                    }
                }
                self.run_scratch_merged.extend_from_slice(&shard.runs[i..]);
                self.run_scratch_merged
                    .extend_from_slice(&self.run_scratch_new[j..]);
                std::mem::swap(&mut shard.runs, &mut self.run_scratch_merged);
            } else {
                for g in shard.globals.iter_mut() {
                    let new = remap[g.index()];
                    debug_assert_ne!(new, u32::MAX, "clean shard lost an instance");
                    *g = InstanceId(new);
                }
                debug_assert!(shard.globals.windows(2).all(|w| w[0] < w[1]));
            }
            for (local, &d) in shard.globals.iter().enumerate() {
                self.shard_of[d.index()] = t as u32;
                self.local_of[d.index()] = local as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};

    #[test]
    fn remap_round_trips_every_instance() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let sharded = ShardedUniverse::build(&universe);
            assert_eq!(sharded.num_shards(), universe.num_networks());
            assert_eq!(sharded.num_instances(), universe.num_instances());
            for d in universe.instance_ids() {
                let t = sharded.shard_of(d);
                assert_eq!(t, universe.instance(d).network);
                let local = sharded.local_of(d);
                assert_eq!(sharded.to_global(t, local), d);
            }
        }
    }

    #[test]
    fn shard_sizes_match_by_network_index_and_runs_are_sorted() {
        let universe = two_tree_problem().universe();
        let sharded = ShardedUniverse::build(&universe);
        let mut total_runs = 0;
        for (t, shard) in sharded.shards().iter().enumerate() {
            let network = NetworkId::new(t);
            assert_eq!(shard.network(), network);
            assert_eq!(shard.len(), universe.instances_on_network(network).len());
            assert_eq!(shard.num_edges(), universe.num_edges(network));
            assert!(shard.runs().windows(2).all(|w| w[0] <= w[1]));
            assert!(shard.globals().windows(2).all(|w| w[0] < w[1]));
            total_runs += shard.runs().len();
        }
        let expected: usize = universe.instances().map(|d| d.path.num_runs()).sum();
        assert_eq!(total_runs, expected);
    }

    #[test]
    fn apply_delta_matches_from_scratch_build() {
        use crate::universe::ArrivingDemand;
        use crate::{EdgePath, TreeProblem, VertexId};

        // Two path networks; three demands with distinct footprints.
        let mut p = TreeProblem::new(6);
        let line: Vec<(VertexId, VertexId)> = (0..5)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        let t0 = p.add_network(line.clone()).unwrap();
        let t1 = p.add_network(line).unwrap();
        p.add_unit_demand(VertexId(0), VertexId(3), 1.0, vec![t0, t1])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(5), 2.0, vec![t0])
            .unwrap();
        p.add_unit_demand(VertexId(2), VertexId(4), 3.0, vec![t1])
            .unwrap();
        let mut universe = p.universe();
        let mut sharded = ShardedUniverse::build(&universe);

        // Expire demand 1 (network 0 only) and add a demand on network 0:
        // shard 0 is dirty, shard 1 stays clean.
        let mut delta = crate::universe::UniverseDelta::new();
        universe.apply_demand_delta(
            &[crate::DemandId(1)],
            &[ArrivingDemand {
                profit: 5.0,
                height: 1.0,
                instances: vec![(t0, EdgePath::interval(0, 2), None)],
            }],
            &mut delta,
        );
        assert_eq!(delta.dirty(), &[true, false]);
        sharded.apply_delta(&universe, &delta);

        let fresh = ShardedUniverse::build(&universe);
        assert_eq!(sharded.num_shards(), fresh.num_shards());
        assert_eq!(sharded.num_instances(), fresh.num_instances());
        for t in 0..fresh.num_shards() {
            let network = NetworkId::new(t);
            assert_eq!(
                sharded.shard(network).globals(),
                fresh.shard(network).globals(),
                "globals of shard {t}"
            );
            assert_eq!(
                sharded.shard(network).runs(),
                fresh.shard(network).runs(),
                "runs of shard {t}"
            );
            assert_eq!(
                sharded.shard(network).num_edges(),
                fresh.shard(network).num_edges()
            );
        }
        for d in universe.instance_ids() {
            assert_eq!(sharded.shard_of(d), fresh.shard_of(d), "shard of {d}");
            assert_eq!(sharded.local_of(d), fresh.local_of(d), "local of {d}");
        }
    }

    #[test]
    fn empty_networks_yield_aligned_empty_shards() {
        use crate::{TreeProblem, VertexId};
        let mut p = TreeProblem::new(3);
        let t0 = p
            .add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        // A second network that no demand can access.
        let _t1 = p
            .add_network(vec![(VertexId(0), VertexId(2)), (VertexId(0), VertexId(1))])
            .unwrap();
        p.add_unit_demand(VertexId(0), VertexId(2), 1.0, vec![t0])
            .unwrap();
        let u = p.universe();
        let sharded = ShardedUniverse::build(&u);
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.shard(NetworkId::new(0)).len(), 1);
        assert!(sharded.shard(NetworkId::new(1)).is_empty());
    }
}
