//! Property-based equivalence suite for the implicit interval-path
//! representation.
//!
//! The interval/run representation of [`EdgePath`] (plus the canonical HLD
//! edge order of [`TreeNetwork`]) must be observationally equivalent to the
//! old materialized `Vec<EdgeId>` representation. Each property rebuilds the
//! naive model — an explicit sorted edge list obtained by walking parent
//! pointers, and per-edge load accumulation — and checks `contains`,
//! `overlaps`, `len`, `edge_loads`, feasibility and `can_add` against it on
//! random trees and random windowed lines.

use netsched_graph::{
    DemandId, DemandInstance, DemandInstanceUniverse, EdgeId, EdgePath, InstanceId, LcaIndex,
    LineProblem, NetworkId, TreeNetwork, TreeProblem, VertexId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected tree on `n` vertices: vertex `i` attaches to a random
/// earlier vertex, then the edge list is shuffled so that input order and
/// canonical order genuinely differ.
fn random_tree(rng: &mut StdRng, n: usize) -> TreeNetwork {
    let mut edges: Vec<(VertexId, VertexId)> = (1..n)
        .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
        .collect();
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    // Also randomly flip endpoint order.
    for e in &mut edges {
        if rng.gen_bool(0.5) {
            *e = (e.1, e.0);
        }
    }
    TreeNetwork::new(NetworkId::new(0), n, edges).expect("random attachment trees are valid")
}

/// The naive model of `path_edges`: walk parent pointers from both
/// endpoints to the LCA, collecting edge ids, then sort.
fn naive_path(tree: &TreeNetwork, u: VertexId, v: VertexId) -> Vec<EdgeId> {
    let l = tree.lca(u, v);
    let mut edges = Vec::new();
    for mut x in [u, v] {
        while x != l {
            let (p, e) = tree.parent(x).expect("non-root vertex has a parent");
            edges.push(e);
            x = p;
        }
    }
    edges.sort_unstable();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_paths_match_naive_walk(seed in any::<u64>(), n in 2usize..48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, n);
        for _ in 0..16 {
            let u = VertexId::new(rng.gen_range(0..n));
            let v = VertexId::new(rng.gen_range(0..n));
            let path = tree.path_edges(u, v);
            let naive = naive_path(&tree, u, v);
            // `iter` / `len` equivalence.
            let collected: Vec<EdgeId> = path.iter().collect();
            prop_assert_eq!(&collected, &naive, "path {} - {}", u, v);
            prop_assert_eq!(path.len(), naive.len());
            prop_assert_eq!(path.len() as u32, tree.distance(u, v));
            // `contains` equivalence over every edge of the network.
            for e in 0..tree.num_edges() {
                let e = EdgeId::new(e);
                prop_assert_eq!(path.contains(e), naive.binary_search(&e).is_ok());
            }
        }
    }

    #[test]
    fn tree_overlap_matches_naive_intersection(seed in any::<u64>(), n in 2usize..40) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let tree = random_tree(&mut rng, n);
        for _ in 0..12 {
            let pick = |rng: &mut StdRng| {
                let u = VertexId::new(rng.gen_range(0..n));
                let v = VertexId::new(rng.gen_range(0..n));
                (u, v)
            };
            let (u1, v1) = pick(&mut rng);
            let (u2, v2) = pick(&mut rng);
            let p1 = tree.path_edges(u1, v1);
            let p2 = tree.path_edges(u2, v2);
            let n1 = naive_path(&tree, u1, v1);
            let n2 = naive_path(&tree, u2, v2);
            let naive_overlap = n1.iter().any(|e| n2.binary_search(e).is_ok());
            prop_assert_eq!(p1.intersects(&p2), naive_overlap);
            prop_assert_eq!(p2.intersects(&p1), naive_overlap);
            // The materialized intersection agrees as well.
            let shared: Vec<EdgeId> = p1.intersection(&p2).iter().collect();
            let naive_shared: Vec<EdgeId> = n1
                .iter()
                .copied()
                .filter(|e| n2.binary_search(e).is_ok())
                .collect();
            prop_assert_eq!(shared, naive_shared);
        }
    }

    #[test]
    fn line_intervals_match_vec_model(seed in any::<u64>(), slots in 2u32..120) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let interval = |rng: &mut StdRng| {
            let s = rng.gen_range(0..slots);
            let e = rng.gen_range(s..slots);
            (s, e)
        };
        for _ in 0..16 {
            let (s1, e1) = interval(&mut rng);
            let (s2, e2) = interval(&mut rng);
            let p1 = EdgePath::interval(s1 as usize, e1 as usize);
            let v1: Vec<EdgeId> = (s1..=e1).map(|i| EdgeId::new(i as usize)).collect();
            let p2 = EdgePath::interval(s2 as usize, e2 as usize);
            prop_assert_eq!(p1.len(), v1.len());
            prop_assert_eq!(p1.iter().collect::<Vec<_>>(), v1);
            for e in 0..slots {
                let e = EdgeId::new(e as usize);
                prop_assert_eq!(p1.contains(e), s1 <= e.0 && e.0 <= e1);
            }
            prop_assert_eq!(p1.intersects(&p2), s1 <= e2 && s2 <= e1);
        }
    }

    #[test]
    fn tree_universe_loads_match_naive_accumulation(seed in any::<u64>(), n in 3usize..32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let mut problem = TreeProblem::new(n);
        let tree = random_tree(&mut rng, n);
        let t = problem.add_tree(&tree).unwrap();
        let m = rng.gen_range(2..12);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            problem
                .add_demand(
                    VertexId::new(u),
                    VertexId::new(v),
                    rng.gen_range(1.0..10.0),
                    rng.gen_range(0.1..=1.0),
                    vec![t],
                )
                .unwrap();
        }
        let universe = problem.universe();
        // A random subset as the selection.
        let selection: Vec<InstanceId> = universe
            .instance_ids()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        let loads = universe.edge_loads(t, &selection);
        // Naive model: accumulate every edge of every selected path.
        let mut naive = vec![0.0f64; universe.num_edges(t)];
        for &d in &selection {
            let inst = universe.instance(d);
            for e in inst.path.iter() {
                naive[e.index()] += inst.height;
            }
        }
        prop_assert_eq!(loads.len(), naive.len());
        for (a, b) in loads.iter().zip(naive.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "load mismatch: {} vs {}", a, b);
        }
        // `overlapping` agrees with materialized path intersection.
        for a in universe.instance_ids() {
            for b in universe.instance_ids() {
                if a == b {
                    continue;
                }
                let pa: Vec<EdgeId> = universe.instance(a).path.iter().collect();
                let pb: Vec<EdgeId> = universe.instance(b).path.iter().collect();
                let naive_overlap = pa.iter().any(|e| pb.binary_search(e).is_ok());
                prop_assert_eq!(universe.overlapping(a, b), naive_overlap);
            }
        }
    }

    #[test]
    fn line_universe_feasibility_matches_naive(seed in any::<u64>(), slots in 4u32..40) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut problem = LineProblem::new(slots as usize, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for _ in 0..rng.gen_range(2..10) {
            let len = rng.gen_range(1..=slots.min(8));
            let release = rng.gen_range(0..=(slots - len));
            let slack = rng.gen_range(0..=(slots - release - len).min(3));
            problem
                .add_demand(
                    release,
                    release + len - 1 + slack,
                    len,
                    rng.gen_range(1.0..10.0),
                    rng.gen_range(0.1..=1.0),
                    acc.clone(),
                )
                .unwrap();
        }
        let universe = problem.universe();
        let selection: Vec<InstanceId> = universe
            .instance_ids()
            .filter(|_| rng.gen_bool(0.3))
            .collect();
        // Naive feasibility: per-demand uniqueness plus per-edge loads.
        let mut used = vec![false; universe.num_demands()];
        let mut naive_ok = true;
        for &d in &selection {
            let a = universe.demand_of(d).index();
            if used[a] {
                naive_ok = false;
            }
            used[a] = true;
        }
        if naive_ok {
            'outer: for q in 0..universe.num_networks() {
                let t = NetworkId::new(q);
                let mut load = vec![0.0f64; universe.num_edges(t)];
                for &d in &selection {
                    let inst = universe.instance(d);
                    if inst.network == t {
                        for e in inst.path.iter() {
                            load[e.index()] += inst.height;
                        }
                    }
                }
                for l in load {
                    if l > 1.0 + 1e-9 {
                        naive_ok = false;
                        break 'outer;
                    }
                }
            }
        }
        prop_assert_eq!(universe.is_feasible(&selection), naive_ok);
        // `can_add` agrees with "add then re-check" on feasible selections.
        if naive_ok {
            for d in universe.instance_ids() {
                if selection.contains(&d) {
                    continue;
                }
                let mut extended = selection.clone();
                extended.push(d);
                prop_assert_eq!(
                    universe.can_add(&selection, d),
                    universe.is_feasible(&extended),
                    "can_add disagrees for {}",
                    d
                );
            }
        }
    }
}

/// A universe assembled from raw instances with multi-run tree-style paths
/// and non-uniform capacities, exercising the capacitated `can_add` path.
#[test]
fn capacitated_can_add_matches_is_feasible() {
    let mk = |i: usize, a: usize, edges: &[u32], h: f64| DemandInstance {
        id: InstanceId::new(i),
        demand: DemandId::new(a),
        network: NetworkId::new(0),
        profit: 1.0,
        height: h,
        path: EdgePath::new(edges.iter().map(|&e| EdgeId(e)).collect()),
        start: None,
    };
    let universe = DemandInstanceUniverse::new(
        vec![
            mk(0, 0, &[0, 1, 2, 5, 6], 0.6),
            mk(1, 1, &[2, 3, 4], 0.8),
            mk(2, 2, &[5, 6, 7], 0.9),
            mk(3, 3, &[0, 7], 0.4),
        ],
        4,
        vec![8],
        Some(vec![vec![1.0, 1.0, 2.0, 1.0, 1.0, 1.5, 1.5, 1.0]]),
    );
    let ids: Vec<InstanceId> = universe.instance_ids().collect();
    // Exhaustive: every subset + candidate pair must agree with is_feasible.
    for mask in 0u32..(1 << ids.len()) {
        let selection: Vec<InstanceId> = ids
            .iter()
            .copied()
            .filter(|d| mask & (1 << d.index()) != 0)
            .collect();
        if !universe.is_feasible(&selection) {
            continue;
        }
        for &d in &ids {
            if selection.contains(&d) {
                continue;
            }
            let mut extended = selection.clone();
            extended.push(d);
            assert_eq!(
                universe.can_add(&selection, d),
                universe.is_feasible(&extended),
                "mask {mask:b}, candidate {d}"
            );
        }
    }
}

/// Regression: `LcaIndex::ancestor` at exactly-power-of-two depths. The
/// binary-lifting table has `⌈log₂(max_depth)⌉ + 1`-ish levels; a chain
/// whose depth is exactly `2^k` exercises the top level and the saturation
/// at the root.
#[test]
fn lca_ancestor_at_power_of_two_depths() {
    for k in 0..7u32 {
        let depth_target = 1u32 << k; // chain of 2^k edges
        let n = depth_target as usize + 1;
        let parent: Vec<Option<VertexId>> = (0..n)
            .map(|v| (v > 0).then(|| VertexId((v - 1) as u32)))
            .collect();
        let depth: Vec<u32> = (0..n as u32).collect();
        let idx = LcaIndex::new(&parent, &depth);
        let leaf = VertexId((n - 1) as u32);
        // Exact power-of-two jumps, including the full depth.
        for j in 0..=k {
            let steps = 1u32 << j;
            assert_eq!(
                idx.ancestor(leaf, steps),
                VertexId((n - 1) as u32 - steps),
                "2^{j}-step ancestor from depth 2^{k}"
            );
        }
        assert_eq!(idx.ancestor(leaf, depth_target), VertexId(0));
        // Walking past the root saturates at the root.
        assert_eq!(idx.ancestor(leaf, depth_target + 1), VertexId(0));
        assert_eq!(idx.ancestor(leaf, u32::MAX), VertexId(0));
        // And the LCA of the leaf with any chain vertex is that vertex.
        for v in 0..n {
            assert_eq!(idx.lca(leaf, VertexId(v as u32)), VertexId(v as u32));
        }
    }
}
