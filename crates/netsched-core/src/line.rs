//! The distributed algorithms for line networks with windows (Section 7).
//!
//! The timeline of `n` timeslots is a path graph, so the tree machinery
//! applies; the improvement of Section 7 is a better layered decomposition:
//! length classes with critical edges `{s(d), mid(d), e(d)}`, giving `∆ = 3`
//! and therefore a `(4 + ε)`-approximation for unit heights
//! (Theorem 7.1) and `(23 + ε)` for arbitrary heights (Theorem 7.2).
//!
//! The entry points are thin wrappers over the [`crate::Scheduler`] session
//! API (the algorithm bodies live in [`crate::LineUnitSolver`],
//! [`crate::LineNarrowSolver`] and [`crate::LineArbitrarySolver`]); the
//! `_on` variants run directly on a prebuilt universe. All returned
//! instance ids refer to `problem.universe()`.

use crate::config::{AlgorithmConfig, RaiseRule};
use crate::framework::run_two_phase;
use crate::solution::Solution;
use crate::solver::{LineArbitrarySolver, LineNarrowSolver, LineUnitSolver, Scheduler};
use netsched_decomp::InstanceLayering;
use netsched_graph::{DemandId, DemandInstanceUniverse, LineDemand, LineProblem};

/// Theorem 7.1: the distributed `(4 + ε)`-approximation for the unit-height
/// case of line networks with windows. Also used for the wide instances of
/// the arbitrary-height case.
///
/// ```
/// use netsched_core::{solve_line_unit, AlgorithmConfig};
/// use netsched_graph::{LineProblem, NetworkId};
///
/// // Two jobs of length 3 with enough window slack to run back to back on
/// // a single machine.
/// let mut problem = LineProblem::new(6, 1);
/// problem.add_demand(0, 5, 3, 1.0, 1.0, vec![NetworkId::new(0)]).unwrap();
/// problem.add_demand(0, 5, 3, 1.0, 1.0, vec![NetworkId::new(0)]).unwrap();
///
/// let solution = solve_line_unit(&problem, &AlgorithmConfig::deterministic(0.05));
/// solution.verify(&problem.universe()).unwrap();
/// assert_eq!(solution.len(), 2, "the windows let both jobs run");
/// ```
pub fn solve_line_unit(problem: &LineProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_line(problem).solve_with(&LineUnitSolver, config)
}

/// As [`solve_line_unit`] but reusing an already built `problem.universe()`.
pub fn solve_line_unit_on(universe: &DemandInstanceUniverse, config: &AlgorithmConfig) -> Solution {
    let layering = InstanceLayering::line_length_classes(universe);
    run_two_phase(universe, &layering, RaiseRule::Unit, config)
}

/// The `(19 + ε)`-approximation for line networks whose demands are all
/// narrow (Section 7, arbitrary-height case, narrow part).
pub fn solve_line_narrow(problem: &LineProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_line(problem).solve_with(&LineNarrowSolver, config)
}

/// As [`solve_line_narrow`] but reusing an already built
/// `problem.universe()`.
pub fn solve_line_narrow_on(
    universe: &DemandInstanceUniverse,
    config: &AlgorithmConfig,
) -> Solution {
    let layering = InstanceLayering::line_length_classes(universe);
    run_two_phase(universe, &layering, RaiseRule::Narrow, config)
}

/// Theorem 7.2: the distributed `(23 + ε)`-approximation for line networks
/// with windows and arbitrary heights, combining the wide (unit-height
/// algorithm) and narrow schedules per resource.
pub fn solve_line_arbitrary(problem: &LineProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_line(problem).solve_with(&LineArbitrarySolver, config)
}

/// As [`solve_line_arbitrary`] but reusing an already built
/// `problem.universe()`.
pub fn solve_line_arbitrary_on(
    problem: &LineProblem,
    universe: &DemandInstanceUniverse,
    config: &AlgorithmConfig,
) -> Solution {
    Scheduler::for_line_with_universe(problem, universe).solve_with(&LineArbitrarySolver, config)
}

/// Builds the line sub-problem containing only the demands selected by
/// `keep`, preserving timeslots and resources. Returns the sub-problem and
/// the mapping from its demand indices to the original demand ids.
pub fn line_subproblem<F: Fn(&LineDemand) -> bool>(
    problem: &LineProblem,
    keep: F,
) -> (LineProblem, Vec<DemandId>) {
    let mut sub = LineProblem::new(problem.timeslots(), problem.num_resources());
    let mut map = Vec::new();
    for demand in problem.demands() {
        if keep(demand) {
            sub.add_demand(
                demand.release,
                demand.deadline,
                demand.processing,
                demand.profit,
                demand.height,
                problem.access(demand.id).to_vec(),
            )
            .expect("copied demand must be valid");
            map.push(demand.id);
        }
    }
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::approximation_bound;
    use netsched_graph::fixtures::figure1_line_problem;
    use netsched_graph::NetworkId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_line_problem(seed: u64, n: u32, r: usize, m: usize, unit: bool) -> LineProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(n as usize, r);
        let acc_all: Vec<NetworkId> = (0..r).map(NetworkId::new).collect();
        for _ in 0..m {
            let len = rng.gen_range(1..=(n / 4).max(1));
            let release = rng.gen_range(0..=(n - len));
            let slack = rng.gen_range(0..=(n - release - len).min(6));
            let access: Vec<NetworkId> = acc_all
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.7))
                .collect();
            let access = if access.is_empty() {
                vec![acc_all[0]]
            } else {
                access
            };
            let height = if unit { 1.0 } else { rng.gen_range(0.05..=1.0) };
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..=32.0),
                height,
                access,
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn theorem_7_1_unit_line_certificate() {
        for seed in 0..3u64 {
            let p = random_line_problem(seed, 40, 2, 18, true);
            let u = p.universe();
            let sol = solve_line_unit(&p, &AlgorithmConfig::deterministic(0.1));
            sol.verify(&u).unwrap();
            assert!(sol.diagnostics.delta <= 3, "Section 7: ∆ ≤ 3");
            let bound = approximation_bound(RaiseRule::Unit, 3, 0.9);
            assert!(sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6);
        }
    }

    #[test]
    fn theorem_7_2_arbitrary_line_certificate() {
        for seed in 0..3u64 {
            let p = random_line_problem(seed, 40, 2, 20, false);
            let u = p.universe();
            let sol = solve_line_arbitrary(&p, &AlgorithmConfig::deterministic(0.1));
            sol.verify(&u).unwrap();
            assert!(sol.profit > 0.0);
            // p(S) ≥ max(p(S1), p(S2)) and OPT ≤ ub1 + ub2, so the certified
            // ratio is at most (4 + 19)/(1 − ε) + slack = (23 + ε').
            let ratio = sol.certified_ratio().unwrap();
            assert!(
                ratio <= 23.0 / 0.9 + 1e-6,
                "certified ratio {ratio} exceeds the Theorem 7.2 bound"
            );
        }
    }

    #[test]
    fn figure1_unit_semantics_schedules_the_best_pair() {
        // Treat Figure 1's demands as unit height: only one of them fits on
        // the resource at a time... actually A and C do not overlap, so the
        // unit-height optimum is {A, C} or {B, C} with 2 demands.
        let p = figure1_line_problem();
        let u = p.universe();
        let sol = solve_line_unit(&p, &AlgorithmConfig::deterministic(0.05));
        sol.verify(&u).unwrap();
        assert_eq!(sol.len(), 2, "two non-overlapping demands fit");
    }

    #[test]
    fn windows_let_the_algorithm_spread_jobs() {
        // Three identical unit-height jobs of length 2 with a window wide
        // enough for all three to fit sequentially on a single resource.
        let mut p = LineProblem::new(6, 1);
        let acc = vec![NetworkId::new(0)];
        for _ in 0..3 {
            p.add_demand(0, 5, 2, 1.0, 1.0, acc.clone()).unwrap();
        }
        let u = p.universe();
        let sol = solve_line_unit(&p, &AlgorithmConfig::deterministic(0.05));
        sol.verify(&u).unwrap();
        assert_eq!(sol.len(), 3, "all three jobs fit thanks to their windows");
    }

    #[test]
    fn narrow_jobs_share_a_resource() {
        // Four identical jobs of height 0.25 over the same timeslots; the
        // optimum schedules all four (total load 1.0). The primal-dual
        // algorithm stops raising once every constraint is (1 − ε)-satisfied,
        // so it may schedule fewer — but at least two, and the dual
        // certificate must still be within the (19 + ε) narrow-line bound.
        let mut p = LineProblem::new(8, 1);
        let acc = vec![NetworkId::new(0)];
        for _ in 0..4 {
            p.add_interval_demand(2, 4, 1.0, 0.25, acc.clone()).unwrap();
        }
        let u = p.universe();
        let sol = solve_line_arbitrary(&p, &AlgorithmConfig::deterministic(0.1));
        sol.verify(&u).unwrap();
        assert!(sol.len() >= 2, "at least two narrow jobs must be scheduled");
        // The certificate upper bound must cover the true optimum of 4.0.
        assert!(sol.diagnostics.optimum_upper_bound >= 4.0 - 1e-9);
        assert!(sol.certified_ratio().unwrap() <= 19.0 / 0.9 + 1e-6);
    }

    #[test]
    fn line_subproblem_partition() {
        let p = random_line_problem(4, 30, 2, 15, false);
        let (wide, wide_map) = line_subproblem(&p, |d| d.height > 0.5);
        let (narrow, narrow_map) = line_subproblem(&p, |d| d.height <= 0.5);
        assert_eq!(wide.num_demands() + narrow.num_demands(), p.num_demands());
        for &old in &wide_map {
            assert!(p.demand(old).height > 0.5);
        }
        for &old in &narrow_map {
            assert!(p.demand(old).height <= 0.5);
        }
        assert_eq!(wide.timeslots(), p.timeslots());
        assert_eq!(narrow.num_resources(), p.num_resources());
    }

    #[test]
    fn varying_resource_counts_all_verify_and_certify() {
        for r in [1usize, 2, 3] {
            let mut p = LineProblem::new(20, r);
            let acc: Vec<NetworkId> = (0..r).map(NetworkId::new).collect();
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..10 {
                let len = rng.gen_range(2..=6u32);
                let release = rng.gen_range(0..=(20 - len));
                p.add_demand(
                    release,
                    release + len - 1,
                    len,
                    rng.gen_range(1.0..5.0),
                    1.0,
                    acc.clone(),
                )
                .unwrap();
            }
            let u = p.universe();
            let sol = solve_line_unit(&p, &AlgorithmConfig::deterministic(0.1));
            sol.verify(&u).unwrap();
            assert!(sol.profit > 0.0);
            assert!(sol.certified_ratio().unwrap() <= 4.0 / 0.9 + 1e-6);
        }
    }
}
