//! Cooperative budgets for deadline-bounded (anytime) solving.
//!
//! The two-phase engine's first phase is a sequence of MIS/raise rounds
//! whose dual assignment only ever grows, so the λ-certificate is
//! **monotone**: stopping after any prefix of rounds still yields a
//! feasible schedule (the second phase replays whatever the stack holds)
//! and a *valid* — merely weaker — optimum upper bound
//! `dual_objective / λ` (weak duality holds for every dual assignment;
//! λ is clamped away from zero exactly like the full run's certificate).
//!
//! A [`Budget`] makes that cut point explicit: the engine calls
//! [`Budget::consume_round`] between rounds and stops cooperatively the
//! first time it returns `false`. Three limits compose, any subset may be
//! set:
//!
//! * a **round cap** ([`Budget::rounds`]) — deterministic, the form the
//!   anytime proptest contract is stated against;
//! * a **wall-clock deadline** ([`Budget::deadline`]) — what a serving
//!   tier's latency budget compiles to;
//! * a **cancellation flag** ([`Budget::with_cancel`]) — cooperative
//!   cancellation from another thread.
//!
//! Solutions report where they landed through
//! [`CertificateQuality`] in
//! [`RunDiagnostics::quality`](crate::RunDiagnostics::quality).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative limit on first-phase MIS/raise rounds; see the
/// [module docs](self). One budget may be shared by several engine runs
/// (the wide/narrow split solves both halves against the same budget):
/// round accounting is internal and atomic, so the cap applies to the
/// *total* across everything charged against it.
#[derive(Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_rounds: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    rounds_used: AtomicU64,
}

impl Budget {
    /// No limit: the engine runs to full certification. Equivalent to the
    /// un-budgeted entry points.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// At most `max_rounds` first-phase MIS/raise rounds. Deterministic:
    /// the cut lands at the same round on every identically-seeded run.
    pub fn rounds(max_rounds: u64) -> Self {
        Self::default().with_rounds(max_rounds)
    }

    /// Cut when `budget` of wall-clock time has elapsed (measured from
    /// this call, not from the solve's start).
    pub fn deadline(budget: Duration) -> Self {
        Self::default().with_deadline(budget)
    }

    /// Cut at the given instant.
    pub fn until(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Adds a round cap to this budget (the tighter of the limits wins).
    pub fn with_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Adds a wall-clock deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Adds a cancellation flag: once another thread stores `true`, the
    /// next round check cuts.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// `true` when any limit is set; an unlimited budget lets engines
    /// skip all accounting.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_rounds.is_some() || self.cancel.is_some()
    }

    /// Charges one first-phase round. Returns `false` when the round must
    /// **not** run — the budget is exhausted (round cap reached, deadline
    /// passed or cancellation flagged) and the engine should cut.
    pub fn consume_round(&self) -> bool {
        if !self.is_limited() {
            return true;
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return false;
            }
        }
        let used = self.rounds_used.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.max_rounds {
            if used >= cap {
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return false;
            }
        }
        true
    }

    /// Rounds charged so far (including the one that tripped the cap, if
    /// any).
    pub fn rounds_used(&self) -> u64 {
        self.rounds_used.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.deadline)
            .field("max_rounds", &self.max_rounds)
            .field(
                "cancelled",
                &self.cancel.as_ref().map(|c| c.load(Ordering::Relaxed)),
            )
            .field("rounds_used", &self.rounds_used())
            .finish()
    }
}

/// How complete a solution's dual certificate is.
///
/// `Full` is the normal outcome: the first phase ran until every eligible
/// instance was λ-satisfied, so the certificate carries the solver's
/// worst-case guarantee. `Truncated` means a [`Budget`] cut the first
/// phase early: the schedule is still feasible and
/// `optimum_upper_bound` is still a **valid** bound (weak duality), but λ
/// may sit below `1 − ε` and the certified ratio may exceed the
/// guarantee. A warm engine carries the unfinished repair work forward in
/// its [`WarmState`](crate::WarmState) — an un-budgeted follow-up epoch
/// reconverges to full certification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CertificateQuality {
    /// The first phase ran to full λ-certification.
    #[default]
    Full,
    /// A budget cut the first phase early.
    Truncated {
        /// First-phase (group × stage) slots not yet drained at the cut —
        /// a deterministic, unit-free measure of the work skipped
        /// (`0` only when the cut landed inside the very last stage).
        rounds_left: u64,
    },
}

impl CertificateQuality {
    /// `true` for [`CertificateQuality::Full`].
    pub fn is_full(&self) -> bool {
        matches!(self, CertificateQuality::Full)
    }

    /// `true` for [`CertificateQuality::Truncated`].
    pub fn is_truncated(&self) -> bool {
        !self.is_full()
    }

    /// Combines the qualities of two sub-solves (the wide/narrow
    /// combination): full only when both halves are full; truncated
    /// remainders add.
    pub fn merge(self, other: Self) -> Self {
        use CertificateQuality::*;
        match (self, other) {
            (Full, Full) => Full,
            (Truncated { rounds_left: a }, Truncated { rounds_left: b }) => {
                Truncated { rounds_left: a + b }
            }
            (Truncated { rounds_left }, Full) | (Full, Truncated { rounds_left }) => {
                Truncated { rounds_left }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budgets_never_cut() {
        let budget = Budget::unlimited();
        assert!(!budget.is_limited());
        for _ in 0..10_000 {
            assert!(budget.consume_round());
        }
        // Unlimited budgets skip accounting entirely.
        assert_eq!(budget.rounds_used(), 0);
    }

    #[test]
    fn round_caps_cut_after_exactly_the_cap() {
        let budget = Budget::rounds(3);
        assert!(budget.is_limited());
        assert!(budget.consume_round());
        assert!(budget.consume_round());
        assert!(budget.consume_round());
        assert!(!budget.consume_round());
        assert!(!budget.consume_round());
    }

    #[test]
    fn zero_round_budgets_cut_immediately() {
        let budget = Budget::rounds(0);
        assert!(!budget.consume_round());
    }

    #[test]
    fn cancellation_flags_cut_cooperatively() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget::unlimited().with_cancel(flag.clone());
        assert!(budget.consume_round());
        flag.store(true, Ordering::Relaxed);
        assert!(!budget.consume_round());
    }

    #[test]
    fn elapsed_deadlines_cut() {
        let budget = Budget::until(Instant::now() - Duration::from_millis(1));
        assert!(!budget.consume_round());
        let generous = Budget::deadline(Duration::from_secs(3600));
        assert!(generous.consume_round());
    }

    #[test]
    fn quality_merge_is_commutative_and_adds_remainders() {
        use CertificateQuality::*;
        assert_eq!(Full.merge(Full), Full);
        assert_eq!(
            Full.merge(Truncated { rounds_left: 2 }),
            Truncated { rounds_left: 2 }
        );
        assert_eq!(
            Truncated { rounds_left: 2 }.merge(Truncated { rounds_left: 3 }),
            Truncated { rounds_left: 5 }
        );
        assert!(Truncated { rounds_left: 0 }.is_truncated());
        assert!(Full.is_full());
    }
}
