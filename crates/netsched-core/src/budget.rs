//! Cooperative budgets for deadline-bounded (anytime) solving.
//!
//! The two-phase engine's first phase is a sequence of MIS/raise rounds
//! whose dual assignment only ever grows, so the λ-certificate is
//! **monotone**: stopping after any prefix of rounds still yields a
//! feasible schedule (the second phase replays whatever the stack holds)
//! and a *valid* — merely weaker — optimum upper bound
//! `dual_objective / λ` (weak duality holds for every dual assignment;
//! λ is clamped away from zero exactly like the full run's certificate).
//!
//! A [`Budget`] makes that cut point explicit: the engine calls
//! [`Budget::consume_round`] between rounds and stops cooperatively the
//! first time it returns `false`. Three limits compose, any subset may be
//! set:
//!
//! * a **round cap** ([`Budget::rounds`]) — deterministic, the form the
//!   anytime proptest contract is stated against;
//! * a **wall-clock deadline** ([`Budget::deadline`]) — what a serving
//!   tier's latency budget compiles to;
//! * a **cancellation flag** ([`Budget::with_cancel`]) — cooperative
//!   cancellation from another thread.
//!
//! Solutions report where they landed through
//! [`CertificateQuality`] in
//! [`RunDiagnostics::quality`](crate::RunDiagnostics::quality).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative limit on first-phase MIS/raise rounds; see the
/// [module docs](self). One budget may be shared by several engine runs
/// (the wide/narrow split solves both halves against the same budget):
/// round accounting is internal and atomic, so the cap applies to the
/// *total* across everything charged against it.
#[derive(Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_rounds: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    rounds_used: AtomicU64,
}

impl Budget {
    /// No limit: the engine runs to full certification. Equivalent to the
    /// un-budgeted entry points.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// At most `max_rounds` first-phase MIS/raise rounds. Deterministic:
    /// the cut lands at the same round on every identically-seeded run.
    pub fn rounds(max_rounds: u64) -> Self {
        Self::default().with_rounds(max_rounds)
    }

    /// Cut when `budget` of wall-clock time has elapsed (measured from
    /// this call, not from the solve's start).
    pub fn deadline(budget: Duration) -> Self {
        Self::default().with_deadline(budget)
    }

    /// Cut at the given instant.
    pub fn until(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Adds a round cap to this budget (the tighter of the limits wins).
    pub fn with_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Adds a wall-clock deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Adds a cancellation flag: once another thread stores `true`, the
    /// next round check cuts.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// `true` when any limit is set; an unlimited budget lets engines
    /// skip all accounting.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_rounds.is_some() || self.cancel.is_some()
    }

    /// Charges one first-phase round. Returns `false` when the round must
    /// **not** run — the budget is exhausted (round cap reached, deadline
    /// passed or cancellation flagged) and the engine should cut.
    pub fn consume_round(&self) -> bool {
        if !self.is_limited() {
            return true;
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return false;
            }
        }
        let used = self.rounds_used.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.max_rounds {
            if used >= cap {
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return false;
            }
        }
        true
    }

    /// Rounds charged so far (including the one that tripped the cap, if
    /// any).
    pub fn rounds_used(&self) -> u64 {
        self.rounds_used.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.deadline)
            .field("max_rounds", &self.max_rounds)
            .field(
                "cancelled",
                &self.cancel.as_ref().map(|c| c.load(Ordering::Relaxed)),
            )
            .field("rounds_used", &self.rounds_used())
            .finish()
    }
}

/// Online rounds-per-second calibration for wall-clock budgets.
///
/// Operators think in milliseconds; the engine's deterministic cut point
/// is a *round cap* ([`Budget::rounds`]). A `RoundCalibration` learns the
/// exchange rate online: feed it each epoch's observed `(rounds, seconds)`
/// via [`observe`](RoundCalibration::observe) and it maintains an EWMA of
/// seconds-per-round; [`rounds_for`](RoundCalibration::rounds_for) then
/// compiles a millisecond deadline into the round cap the budget can
/// afford. Callers should keep the wall-clock deadline as a belt-and-
/// braces second limit (both limits compose on one [`Budget`]), so a
/// stale EWMA can overshoot the deadline by at most the one round that
/// trips the deadline check.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundCalibration {
    secs_per_round: f64,
    observations: u64,
}

impl RoundCalibration {
    /// EWMA smoothing factor: each new observation contributes 20 %.
    pub const ALPHA: f64 = 0.2;

    /// Observations required before the calibration is trusted
    /// ([`is_primed`](RoundCalibration::is_primed)).
    pub const PRIME_OBSERVATIONS: u64 = 3;

    /// A fresh, unprimed calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one epoch's observed solve: `rounds` first-phase MIS/raise
    /// steps taking `seconds` of wall clock. Ignored unless both are
    /// positive (an empty or instantaneous solve carries no signal).
    ///
    /// **Feed full solves only.** An epoch's wall clock carries fixed
    /// per-epoch overhead (second-phase replay, certificate fold) on top
    /// of the per-round cost; a deadline-truncated epoch divides that
    /// overhead by an artificially small round count, inflating the
    /// sample. Under sustained overload the feedback loop ratchets: an
    /// inflated EWMA compiles a smaller cap, the next epoch cuts even
    /// earlier, its sample is worse still, and
    /// [`rounds_for`](RoundCalibration::rounds_for) collapses toward its
    /// floor of 1 (reproduced in this module's
    /// `truncated_samples_ratchet_compiled_caps_downward` test). The
    /// serving tier therefore only observes epochs whose certificate
    /// quality [is full](CertificateQuality::is_full).
    pub fn observe(&mut self, rounds: u64, seconds: f64) {
        if rounds == 0 || seconds <= 0.0 || seconds.is_nan() {
            return;
        }
        let sample = seconds / rounds as f64;
        self.secs_per_round = if self.observations == 0 {
            sample
        } else {
            Self::ALPHA * sample + (1.0 - Self::ALPHA) * self.secs_per_round
        };
        self.observations += 1;
    }

    /// Number of observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// `true` once enough observations arrived to trust the EWMA.
    pub fn is_primed(&self) -> bool {
        self.observations >= Self::PRIME_OBSERVATIONS
    }

    /// The learned EWMA of seconds per first-phase round (`None` until
    /// [`is_primed`](RoundCalibration::is_primed)).
    pub fn secs_per_round(&self) -> Option<f64> {
        self.is_primed().then_some(self.secs_per_round)
    }

    /// Compiles a wall-clock budget into the round cap it affords at the
    /// learned rate, at least 1 (`None` until primed — fall back to a
    /// plain deadline budget).
    pub fn rounds_for(&self, budget: Duration) -> Option<u64> {
        let rate = self.secs_per_round()?;
        // The relative epsilon keeps float jitter from turning an exact
        // quotient (10 rounds affordable) into its floor minus one.
        let affordable = (budget.as_secs_f64() / rate) * (1.0 + 1e-9);
        Some((affordable.floor() as u64).max(1))
    }
}

/// How complete a solution's dual certificate is.
///
/// `Full` is the normal outcome: the first phase ran until every eligible
/// instance was λ-satisfied, so the certificate carries the solver's
/// worst-case guarantee. `Truncated` means a [`Budget`] cut the first
/// phase early: the schedule is still feasible and
/// `optimum_upper_bound` is still a **valid** bound (weak duality), but λ
/// may sit below `1 − ε` and the certified ratio may exceed the
/// guarantee. A warm engine carries the unfinished repair work forward in
/// its [`WarmState`](crate::WarmState) — an un-budgeted follow-up epoch
/// reconverges to full certification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CertificateQuality {
    /// The first phase ran to full λ-certification.
    #[default]
    Full,
    /// A budget cut the first phase early.
    Truncated {
        /// First-phase (group × stage) slots not yet drained at the cut —
        /// a deterministic, unit-free measure of the work skipped
        /// (`0` only when the cut landed inside the very last stage).
        rounds_left: u64,
    },
}

impl CertificateQuality {
    /// `true` for [`CertificateQuality::Full`].
    pub fn is_full(&self) -> bool {
        matches!(self, CertificateQuality::Full)
    }

    /// `true` for [`CertificateQuality::Truncated`].
    pub fn is_truncated(&self) -> bool {
        !self.is_full()
    }

    /// Combines the qualities of two sub-solves (the wide/narrow
    /// combination): full only when both halves are full; truncated
    /// remainders add.
    pub fn merge(self, other: Self) -> Self {
        use CertificateQuality::*;
        match (self, other) {
            (Full, Full) => Full,
            (Truncated { rounds_left: a }, Truncated { rounds_left: b }) => {
                Truncated { rounds_left: a + b }
            }
            (Truncated { rounds_left }, Full) | (Full, Truncated { rounds_left }) => {
                Truncated { rounds_left }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the truncation ratchet the serving tier guards against:
    /// a simulated engine with fixed per-epoch overhead, calibrated from
    /// its own deadline-cut epochs, compiles ever-smaller round caps until
    /// the cap collapses to the floor — while the same engine calibrated
    /// from full solves only holds a stable cap.
    #[test]
    fn truncated_samples_ratchet_compiled_caps_downward() {
        // Engine model: 5 ms of fixed overhead per epoch (replay,
        // certificate fold) plus 0.1 ms per first-phase round. A full
        // solve takes 100 rounds (15 ms); the 6 ms deadline affords a
        // 40-round cap at the honest full-solve rate of 0.15 ms/round.
        // Feeding cut epochs back attributes the 5 ms overhead to ever
        // fewer rounds (fixed point: 0.6 ms/round → a 10-round cap).
        const OVERHEAD_S: f64 = 5e-3;
        const PER_ROUND_S: f64 = 1e-4;
        const FULL_ROUNDS: u64 = 100;
        let deadline = Duration::from_millis(6);
        let epoch_secs = |rounds: u64| OVERHEAD_S + rounds as f64 * PER_ROUND_S;

        // Prime both calibrations identically from three full solves.
        let mut biased = RoundCalibration::new();
        let mut gated = RoundCalibration::new();
        for _ in 0..RoundCalibration::PRIME_OBSERVATIONS {
            biased.observe(FULL_ROUNDS, epoch_secs(FULL_ROUNDS));
            gated.observe(FULL_ROUNDS, epoch_secs(FULL_ROUNDS));
        }
        let initial_cap = biased.rounds_for(deadline).expect("primed");
        assert!(initial_cap > 10, "the deadline affords real work");

        // Sustained overload: every epoch is cut at its compiled cap, and
        // the *biased* calibration feeds those truncated epochs back. The
        // overhead is attributed to fewer and fewer rounds each time.
        let mut cap = initial_cap;
        let mut caps = vec![cap];
        for _ in 0..40 {
            let rounds = cap.min(FULL_ROUNDS);
            biased.observe(rounds, epoch_secs(rounds));
            cap = biased.rounds_for(deadline).expect("still primed");
            caps.push(cap);
        }
        assert!(
            caps.windows(2).all(|w| w[1] <= w[0]),
            "the biased cap must ratchet monotonically downward: {caps:?}"
        );
        assert!(
            *caps.last().unwrap() < initial_cap / 2,
            "40 overloaded epochs must collapse the biased cap \
             (started {initial_cap}, ended {})",
            caps.last().unwrap()
        );

        // The gated calibration (full solves only — what the session does
        // since the fix) never observes a cut epoch, so overload leaves
        // its compiled cap untouched.
        let gated_cap = gated.rounds_for(deadline).expect("primed");
        for _ in 0..40 {
            // Cut epochs happen, but are *not* observed.
        }
        assert_eq!(gated.rounds_for(deadline), Some(gated_cap));
        assert_eq!(gated_cap, initial_cap);

        // And interleaved recovery epochs (full solves) keep the gated
        // EWMA pinned at the true rate.
        gated.observe(FULL_ROUNDS, epoch_secs(FULL_ROUNDS));
        let recovered = gated.rounds_for(deadline).expect("primed");
        assert!(
            recovered >= initial_cap.saturating_sub(1),
            "full-solve samples must not erode the cap: {recovered} vs {initial_cap}"
        );
    }

    #[test]
    fn unlimited_budgets_never_cut() {
        let budget = Budget::unlimited();
        assert!(!budget.is_limited());
        for _ in 0..10_000 {
            assert!(budget.consume_round());
        }
        // Unlimited budgets skip accounting entirely.
        assert_eq!(budget.rounds_used(), 0);
    }

    #[test]
    fn round_caps_cut_after_exactly_the_cap() {
        let budget = Budget::rounds(3);
        assert!(budget.is_limited());
        assert!(budget.consume_round());
        assert!(budget.consume_round());
        assert!(budget.consume_round());
        assert!(!budget.consume_round());
        assert!(!budget.consume_round());
    }

    #[test]
    fn zero_round_budgets_cut_immediately() {
        let budget = Budget::rounds(0);
        assert!(!budget.consume_round());
    }

    #[test]
    fn cancellation_flags_cut_cooperatively() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget::unlimited().with_cancel(flag.clone());
        assert!(budget.consume_round());
        flag.store(true, Ordering::Relaxed);
        assert!(!budget.consume_round());
    }

    #[test]
    fn elapsed_deadlines_cut() {
        let budget = Budget::until(Instant::now() - Duration::from_millis(1));
        assert!(!budget.consume_round());
        let generous = Budget::deadline(Duration::from_secs(3600));
        assert!(generous.consume_round());
    }

    #[test]
    fn calibration_converges_and_compiles_deadlines_to_round_caps() {
        let mut calib = RoundCalibration::new();
        assert!(!calib.is_primed());
        assert_eq!(calib.rounds_for(Duration::from_millis(10)), None);
        // Degenerate observations carry no signal.
        calib.observe(0, 1.0);
        calib.observe(10, 0.0);
        assert_eq!(calib.observations(), 0);
        // A steady 1 ms/round rate: the EWMA converges to it exactly.
        for _ in 0..20 {
            calib.observe(50, 0.050);
        }
        assert!(calib.is_primed());
        let rate = calib.secs_per_round().unwrap();
        assert!((rate - 1e-3).abs() < 1e-12, "rate = {rate}");
        assert_eq!(calib.rounds_for(Duration::from_millis(10)), Some(10));
        // Even a tiny budget affords at least one round.
        assert_eq!(calib.rounds_for(Duration::from_micros(10)), Some(1));
        // A rate shift is tracked: after enough 2 ms/round epochs the cap
        // halves.
        for _ in 0..60 {
            calib.observe(50, 0.100);
        }
        let rate = calib.secs_per_round().unwrap();
        assert!((rate - 2e-3).abs() < 1e-4, "rate = {rate}");
        assert_eq!(calib.rounds_for(Duration::from_millis(10)), Some(5));
    }

    #[test]
    fn quality_merge_is_commutative_and_adds_remainders() {
        use CertificateQuality::*;
        assert_eq!(Full.merge(Full), Full);
        assert_eq!(
            Full.merge(Truncated { rounds_left: 2 }),
            Truncated { rounds_left: 2 }
        );
        assert_eq!(
            Truncated { rounds_left: 2 }.merge(Truncated { rounds_left: 3 }),
            Truncated { rounds_left: 5 }
        );
        assert!(Truncated { rounds_left: 0 }.is_truncated());
        assert!(Full.is_full());
    }
}
