//! The unified `Solver` trait and the cached `Scheduler` session API.
//!
//! The paper's six algorithms are all instantiations of one two-phase
//! primal-dual engine; this module exposes them (and any baseline) behind a
//! single polymorphic interface:
//!
//! * [`Problem`] — a borrowed tree-network or line-network instance, the one
//!   entry path for every solver;
//! * [`Solver`] — a named algorithm with an optional worst-case guarantee
//!   and a `solve` method over a [`SolveContext`];
//! * [`Scheduler`] — a *session* around one problem that builds the
//!   [`DemandInstanceUniverse`], the [`InstanceLayering`]s and the
//!   wide/narrow split **once** and reuses them across repeated solves with
//!   different `ε`, [`RaiseRule`](crate::RaiseRule) or seeds — the hot-path
//!   win for parameter sweeps, portfolios and the bench harness;
//! * [`registry`] — the paper's algorithms as boxed solvers (baselines
//!   register through the same trait in `netsched-baseline`);
//! * [`Scheduler::portfolio`] — run several solvers on the shared session
//!   caches and keep the best verified schedule.
//!
//! # Auto-selection (the dispatch table)
//!
//! [`Scheduler::solve`] picks the paper algorithm from the instance shape:
//!
//! | shape | heights | solver | paper result | guarantee |
//! |---|---|---|---|---|
//! | tree | all wide (`h > 1/2`) | [`UnitTreeSolver`] | Theorem 5.3 | `7/(1−ε)` |
//! | tree | all narrow (`h ≤ 1/2`) | [`NarrowTreeSolver`] | Lemma 6.2 | `73/(1−ε)` |
//! | tree | mixed | [`ArbitraryTreeSolver`] | Theorem 6.3 | `80/(1−ε)` |
//! | line | all wide | [`LineUnitSolver`] | Theorem 7.1 | `4/(1−ε)` |
//! | line | all narrow | [`LineNarrowSolver`] | Section 7 (narrow) | `19/(1−ε)` |
//! | line | mixed | [`LineArbitrarySolver`] | Theorem 7.2 | `23/(1−ε)` |
//!
//! Unit heights are a special case of "all wide": two overlapping wide
//! instances can never be scheduled together, so unit-height reasoning
//! applies verbatim (Section 6).
//!
//! # Representation
//!
//! Every cached structure is built on the implicit interval-path
//! representation of `netsched-graph`: universes store `O(log n)` interval
//! runs per tree instance (one run per line instance), universe
//! construction is `O(|D| log n)` rather than `O(Σ path length)`, and the
//! conflict graph is assembled by a deterministic interval sweep into a
//! flat CSR. Sessions therefore stay cheap to open even for deep trees and
//! wide windows; see the `netsched-graph` crate docs for the complexity
//! table.
//!
//! # Example
//!
//! ```
//! use netsched_core::{AlgorithmConfig, Scheduler};
//! use netsched_graph::{TreeProblem, VertexId};
//!
//! let mut problem = TreeProblem::new(4);
//! let t = problem.add_network(vec![
//!     (VertexId(0), VertexId(1)),
//!     (VertexId(1), VertexId(2)),
//!     (VertexId(2), VertexId(3)),
//! ]).unwrap();
//! problem.add_unit_demand(VertexId(0), VertexId(2), 3.0, vec![t]).unwrap();
//! problem.add_unit_demand(VertexId(1), VertexId(3), 2.0, vec![t]).unwrap();
//!
//! // One session: the universe and decomposition are built once and shared
//! // by both solves and the portfolio.
//! let session = Scheduler::for_tree(&problem);
//! let coarse = session.solve(&AlgorithmConfig::deterministic(0.2));
//! let fine = session.solve(&AlgorithmConfig::deterministic(0.05));
//! coarse.verify(session.universe()).unwrap();
//! fine.verify(session.universe()).unwrap();
//! assert_eq!(session.build_counts().universe, 1);
//! ```

use crate::budget::Budget;
use crate::config::{AlgorithmConfig, RaiseRule};
use crate::framework::{run_two_phase_on, run_two_phase_on_budgeted};
use crate::sequential::run_sequential;
use crate::solution::{RunDiagnostics, Solution};
use netsched_decomp::{InstanceLayering, TreeDecompositionKind};
use netsched_distrib::{RoundStats, ShardedConflictGraph};
use netsched_graph::{
    DemandId, DemandInstanceUniverse, InstanceId, LineProblem, NetworkId, TreeProblem,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The two network shapes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Tree networks (Sections 5 and 6).
    Tree,
    /// Line networks with windows (Section 7).
    Line,
}

/// A borrowed problem instance: the single entry path unifying
/// [`TreeProblem`] and [`LineProblem`] behind every [`Solver`].
#[derive(Clone, Copy)]
pub enum Problem<'p> {
    /// A tree-network problem.
    Tree(&'p TreeProblem),
    /// A line-network problem with windows.
    Line(&'p LineProblem),
}

impl<'p> Problem<'p> {
    /// The network shape.
    pub fn kind(&self) -> ProblemKind {
        match self {
            Problem::Tree(_) => ProblemKind::Tree,
            Problem::Line(_) => ProblemKind::Line,
        }
    }

    /// Number of demands.
    pub fn num_demands(&self) -> usize {
        match self {
            Problem::Tree(p) => p.num_demands(),
            Problem::Line(p) => p.num_demands(),
        }
    }

    /// `true` when every demand has height exactly 1.
    pub fn is_unit_height(&self) -> bool {
        match self {
            Problem::Tree(p) => p.is_unit_height(),
            Problem::Line(p) => p.is_unit_height(),
        }
    }

    /// `true` when every demand is wide (`h > 1/2`); vacuously true for an
    /// empty problem. Unit heights are the canonical wide case.
    pub fn all_wide(&self) -> bool {
        match self {
            Problem::Tree(p) => p.demands().iter().all(|d| d.is_wide()),
            Problem::Line(p) => p.demands().iter().all(|d| d.height > 0.5),
        }
    }

    /// `true` when every demand is narrow (`h ≤ 1/2`); vacuously true for an
    /// empty problem.
    pub fn all_narrow(&self) -> bool {
        match self {
            Problem::Tree(p) => p.demands().iter().all(|d| d.is_narrow()),
            Problem::Line(p) => p.demands().iter().all(|d| d.height <= 0.5),
        }
    }

    /// The borrowed tree problem, if this is one.
    pub fn as_tree(&self) -> Option<&'p TreeProblem> {
        match self {
            Problem::Tree(p) => Some(p),
            Problem::Line(_) => None,
        }
    }

    /// The borrowed line problem, if this is one.
    pub fn as_line(&self) -> Option<&'p LineProblem> {
        match self {
            Problem::Tree(_) => None,
            Problem::Line(p) => Some(p),
        }
    }

    /// Builds the demand-instance universe (prefer
    /// [`Scheduler::universe`], which caches it).
    pub fn build_universe(&self) -> DemandInstanceUniverse {
        match self {
            Problem::Tree(p) => p.universe(),
            Problem::Line(p) => p.universe(),
        }
    }

    /// The primary layered decomposition for this shape: the ideal tree
    /// layering (Lemma 4.3, `∆ ≤ 6`) or the line length-class layering
    /// (Section 7, `∆ ≤ 3`).
    fn build_layering(&self, universe: &DemandInstanceUniverse) -> InstanceLayering {
        match self {
            Problem::Tree(p) => {
                InstanceLayering::for_tree_problem(p, universe, TreeDecompositionKind::Ideal)
            }
            Problem::Line(_) => InstanceLayering::line_length_classes(universe),
        }
    }
}

impl std::fmt::Debug for Problem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Problem::Tree(p) => f
                .debug_struct("Problem::Tree")
                .field("networks", &p.num_networks())
                .field("demands", &p.num_demands())
                .finish(),
            Problem::Line(p) => f
                .debug_struct("Problem::Line")
                .field("resources", &p.num_resources())
                .field("demands", &p.num_demands())
                .finish(),
        }
    }
}

/// A scheduling algorithm behind the unified interface.
///
/// `solve` receives a [`SolveContext`] giving access to the session's cached
/// universe, layerings and wide/narrow split, plus the run configuration.
/// Implementations must return instance ids of `ctx.universe()`.
pub trait Solver: Sync {
    /// Stable identifier used in registries, tables and portfolios.
    fn name(&self) -> &'static str;

    /// The worst-case approximation guarantee certified by the dual
    /// certificate at accuracy `eps`, or `None` when the solver makes no
    /// worst-case claim (heuristics). When `Some(g)`, every returned
    /// solution with positive profit satisfies
    /// `solution.certified_ratio() ≤ g` on supported instances.
    fn guarantee(&self, eps: f64) -> Option<f64>;

    /// Runs the algorithm on the session caches.
    fn solve(&self, ctx: &SolveContext<'_>) -> Solution;

    /// `true` when the solver's guarantee applies to this instance shape.
    /// Solvers still run on unsupported shapes (the schedule stays feasible)
    /// but the certificate may be meaningless; [`Scheduler::portfolio`] and
    /// the conformance suite filter by this predicate.
    fn supports(&self, _problem: &Problem<'_>) -> bool {
        true
    }
}

/// One cached half of the wide/narrow split used by the arbitrary-height
/// solvers (Theorems 6.3 and 7.2).
pub struct SplitPart {
    problem: OwnedProblem,
    map: Vec<DemandId>,
    universe: DemandInstanceUniverse,
    layering: InstanceLayering,
    conflict: OnceLock<ShardedConflictGraph>,
}

enum OwnedProblem {
    Tree(TreeProblem),
    Line(LineProblem),
}

impl SplitPart {
    /// The sub-universe of this half.
    pub fn universe(&self) -> &DemandInstanceUniverse {
        &self.universe
    }

    /// The layering of this half.
    pub fn layering(&self) -> &InstanceLayering {
        &self.layering
    }

    /// The sharded conflict graph of this half, built on first use and
    /// cached for the lifetime of the session.
    pub fn conflict(&self) -> &ShardedConflictGraph {
        self.conflict
            .get_or_init(|| ShardedConflictGraph::build(&self.universe))
    }

    /// Mapping from sub-problem demand indices to original demand ids.
    pub fn demand_map(&self) -> &[DemandId] {
        &self.map
    }

    /// The sub-problem as a [`Problem`] view.
    pub fn problem(&self) -> Problem<'_> {
        match &self.problem {
            OwnedProblem::Tree(p) => Problem::Tree(p),
            OwnedProblem::Line(p) => Problem::Line(p),
        }
    }
}

struct SplitCaches {
    wide: SplitPart,
    narrow: SplitPart,
}

/// How many times each expensive structure was constructed by a session;
/// after any number of solves on one [`Scheduler`] every count is at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildCounts {
    /// Demand-instance universe constructions.
    pub universe: usize,
    /// Primary layered-decomposition constructions.
    pub layering: usize,
    /// Appendix A layering constructions.
    pub sequential_layering: usize,
    /// Sharded conflict-graph constructions.
    pub conflict: usize,
    /// Wide/narrow split constructions (sub-problems, sub-universes and
    /// their layerings count as one build).
    pub split: usize,
}

/// A scheduling session around one problem.
///
/// The session lazily builds and caches everything the solvers need — the
/// [`DemandInstanceUniverse`], the primary [`InstanceLayering`], the
/// Appendix A layering and the wide/narrow split — and shares those caches
/// across every subsequent [`solve`](Scheduler::solve),
/// [`solve_with`](Scheduler::solve_with) and
/// [`portfolio`](Scheduler::portfolio) call, no matter how `ε`, the MIS
/// strategy or the seed vary between calls.
pub struct Scheduler<'p> {
    problem: Problem<'p>,
    borrowed_universe: Option<&'p DemandInstanceUniverse>,
    universe: OnceLock<DemandInstanceUniverse>,
    layering: OnceLock<InstanceLayering>,
    sequential_layering: OnceLock<InstanceLayering>,
    split: OnceLock<SplitCaches>,
    conflict: OnceLock<ShardedConflictGraph>,
    universe_builds: AtomicUsize,
    layering_builds: AtomicUsize,
    sequential_layering_builds: AtomicUsize,
    split_builds: AtomicUsize,
    conflict_builds: AtomicUsize,
}

impl<'p> Scheduler<'p> {
    /// A session over any [`Problem`].
    pub fn new(problem: Problem<'p>) -> Self {
        Self {
            problem,
            borrowed_universe: None,
            universe: OnceLock::new(),
            layering: OnceLock::new(),
            sequential_layering: OnceLock::new(),
            split: OnceLock::new(),
            conflict: OnceLock::new(),
            universe_builds: AtomicUsize::new(0),
            layering_builds: AtomicUsize::new(0),
            sequential_layering_builds: AtomicUsize::new(0),
            split_builds: AtomicUsize::new(0),
            conflict_builds: AtomicUsize::new(0),
        }
    }

    /// A session over a tree problem.
    pub fn for_tree(problem: &'p TreeProblem) -> Self {
        Self::new(Problem::Tree(problem))
    }

    /// A session over a line problem.
    pub fn for_line(problem: &'p LineProblem) -> Self {
        Self::new(Problem::Line(problem))
    }

    /// A tree session adopting an already-built `problem.universe()`
    /// instead of constructing its own.
    pub fn for_tree_with_universe(
        problem: &'p TreeProblem,
        universe: &'p DemandInstanceUniverse,
    ) -> Self {
        let mut session = Self::for_tree(problem);
        session.borrowed_universe = Some(universe);
        session
    }

    /// A line session adopting an already-built `problem.universe()`.
    pub fn for_line_with_universe(
        problem: &'p LineProblem,
        universe: &'p DemandInstanceUniverse,
    ) -> Self {
        let mut session = Self::for_line(problem);
        session.borrowed_universe = Some(universe);
        session
    }

    /// The problem this session schedules.
    pub fn problem(&self) -> Problem<'p> {
        self.problem
    }

    /// The demand-instance universe, built on first use and cached for the
    /// lifetime of the session.
    pub fn universe(&self) -> &DemandInstanceUniverse {
        if let Some(universe) = self.borrowed_universe {
            return universe;
        }
        self.universe.get_or_init(|| {
            self.universe_builds.fetch_add(1, Ordering::Relaxed);
            self.problem.build_universe()
        })
    }

    /// The primary layered decomposition (ideal tree layering or line
    /// length classes), cached.
    pub fn layering(&self) -> &InstanceLayering {
        self.layering.get_or_init(|| {
            self.layering_builds.fetch_add(1, Ordering::Relaxed);
            self.problem.build_layering(self.universe())
        })
    }

    /// The Appendix A wings-only layering (tree problems only), cached.
    ///
    /// # Panics
    ///
    /// Panics for line problems — the Appendix A ordering is defined on
    /// rooted tree decompositions.
    pub fn sequential_layering(&self) -> &InstanceLayering {
        self.sequential_layering.get_or_init(|| {
            let problem = self
                .problem
                .as_tree()
                .expect("the Appendix A layering requires a tree problem");
            self.sequential_layering_builds
                .fetch_add(1, Ordering::Relaxed);
            InstanceLayering::appendix_a(problem, self.universe())
        })
    }

    /// The sharded conflict graph over the session universe, built on
    /// first use (shard-parallel) and cached; every subsequent solve reuses
    /// it instead of re-sweeping the conflict structure.
    pub fn conflict(&self) -> &ShardedConflictGraph {
        self.conflict.get_or_init(|| {
            self.conflict_builds.fetch_add(1, Ordering::Relaxed);
            ShardedConflictGraph::build(self.universe())
        })
    }

    fn split(&self) -> &SplitCaches {
        self.split.get_or_init(|| {
            self.split_builds.fetch_add(1, Ordering::Relaxed);
            build_split(self.problem)
        })
    }

    /// The wide half (`h > 1/2`) of the cached wide/narrow split.
    pub fn wide(&self) -> &SplitPart {
        &self.split().wide
    }

    /// The narrow half (`h ≤ 1/2`) of the cached wide/narrow split.
    pub fn narrow(&self) -> &SplitPart {
        &self.split().narrow
    }

    /// How many times each cached structure has been constructed so far.
    pub fn build_counts(&self) -> BuildCounts {
        BuildCounts {
            universe: self.universe_builds.load(Ordering::Relaxed),
            layering: self.layering_builds.load(Ordering::Relaxed),
            sequential_layering: self.sequential_layering_builds.load(Ordering::Relaxed),
            conflict: self.conflict_builds.load(Ordering::Relaxed),
            split: self.split_builds.load(Ordering::Relaxed),
        }
    }

    /// The paper algorithm the dispatch table selects for this instance
    /// shape (see the module docs).
    pub fn auto_solver(&self) -> &'static dyn Solver {
        match (
            self.problem.kind(),
            self.problem.all_wide(),
            self.problem.all_narrow(),
        ) {
            (ProblemKind::Tree, true, _) => &UnitTreeSolver,
            (ProblemKind::Tree, _, true) => &NarrowTreeSolver,
            (ProblemKind::Tree, _, _) => &ArbitraryTreeSolver,
            (ProblemKind::Line, true, _) => &LineUnitSolver,
            (ProblemKind::Line, _, true) => &LineNarrowSolver,
            (ProblemKind::Line, _, _) => &LineArbitrarySolver,
        }
    }

    /// Solves with the auto-selected paper algorithm.
    pub fn solve(&self, config: &AlgorithmConfig) -> Solution {
        self.solve_with(self.auto_solver(), config)
    }

    /// Solves with an explicit solver, sharing the session caches.
    ///
    /// The solver runs even on shapes it does not
    /// [`support`](Solver::supports) (the schedule stays feasible; only the
    /// worst-case certificate interpretation is shape-dependent) — with one
    /// exception: a solver whose required cache exists for a single shape
    /// only, such as [`SequentialTreeSolver`] on a line problem, panics (see
    /// [`Scheduler::sequential_layering`]). [`Scheduler::portfolio`] filters
    /// by `supports` and never hits that case.
    pub fn solve_with(&self, solver: &dyn Solver, config: &AlgorithmConfig) -> Solution {
        let ctx = SolveContext {
            session: self,
            config,
        };
        solver.solve(&ctx)
    }

    /// Runs every solver in `solvers` that supports the instance shape and
    /// returns all verified runs; [`Portfolio::best`] is the most profitable
    /// verified schedule (ties broken by registry order).
    pub fn portfolio(&self, solvers: &[Box<dyn Solver>], config: &AlgorithmConfig) -> Portfolio {
        let universe = self.universe();
        let mut runs = Vec::new();
        for solver in solvers {
            if !solver.supports(&self.problem) {
                continue;
            }
            let solution = self.solve_with(solver.as_ref(), config);
            let verified = solution.verify(universe).is_ok();
            runs.push(PortfolioRun {
                name: solver.name(),
                guarantee: solver.guarantee(config.epsilon),
                verified,
                solution,
            });
        }
        Portfolio { runs }
    }
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("problem", &self.problem)
            .field("build_counts", &self.build_counts())
            .finish()
    }
}

/// Everything a [`Solver`] may use during one solve: the borrowed session
/// (cached universe, layerings, split) and the run configuration.
pub struct SolveContext<'a> {
    session: &'a Scheduler<'a>,
    config: &'a AlgorithmConfig,
}

impl<'a> SolveContext<'a> {
    /// The problem under solution.
    pub fn problem(&self) -> Problem<'a> {
        self.session.problem()
    }

    /// The run configuration (`ε`, MIS strategy, seed).
    pub fn config(&self) -> &'a AlgorithmConfig {
        self.config
    }

    /// The cached demand-instance universe.
    pub fn universe(&self) -> &'a DemandInstanceUniverse {
        self.session.universe()
    }

    /// The cached primary layering.
    pub fn layering(&self) -> &'a InstanceLayering {
        self.session.layering()
    }

    /// The cached sharded conflict graph.
    pub fn conflict(&self) -> &'a ShardedConflictGraph {
        self.session.conflict()
    }

    /// The cached Appendix A layering (tree problems only).
    pub fn sequential_layering(&self) -> &'a InstanceLayering {
        self.session.sequential_layering()
    }

    /// The cached wide half of the split.
    pub fn wide(&self) -> &'a SplitPart {
        self.session.wide()
    }

    /// The cached narrow half of the split.
    pub fn narrow(&self) -> &'a SplitPart {
        self.session.narrow()
    }
}

/// One run inside a [`Portfolio`].
pub struct PortfolioRun {
    /// The solver that produced the run.
    pub name: &'static str,
    /// The solver's worst-case guarantee at the configured `ε`.
    pub guarantee: Option<f64>,
    /// Whether the solution passed `verify` against the session universe.
    pub verified: bool,
    /// The produced schedule.
    pub solution: Solution,
}

/// The outcome of [`Scheduler::portfolio`]: every supported solver's run and
/// the best verified schedule.
pub struct Portfolio {
    /// All runs, in solver order.
    pub runs: Vec<PortfolioRun>,
}

impl Portfolio {
    /// The most profitable verified run, if any solver produced one; ties
    /// go to the earliest solver in the list.
    pub fn best(&self) -> Option<&PortfolioRun> {
        let mut best: Option<&PortfolioRun> = None;
        for run in self.runs.iter().filter(|r| r.verified) {
            if best.is_none_or(|b| run.solution.profit > b.solution.profit) {
                best = Some(run);
            }
        }
        best
    }

    /// The best verified solution (panics when every run failed
    /// verification or no solver supported the shape).
    pub fn best_solution(&self) -> &Solution {
        &self
            .best()
            .expect("portfolio produced no verified solution")
            .solution
    }
}

fn build_split(problem: Problem<'_>) -> SplitCaches {
    match problem {
        Problem::Tree(p) => {
            let (wide, wide_map) = crate::tree::subproblem(p, |d| d.is_wide());
            let (narrow, narrow_map) = crate::tree::subproblem(p, |d| d.is_narrow());
            SplitCaches {
                wide: tree_split_part(wide, wide_map),
                narrow: tree_split_part(narrow, narrow_map),
            }
        }
        Problem::Line(p) => {
            let (wide, wide_map) = crate::line::line_subproblem(p, |d| d.height > 0.5);
            let (narrow, narrow_map) = crate::line::line_subproblem(p, |d| d.height <= 0.5);
            SplitCaches {
                wide: line_split_part(wide, wide_map),
                narrow: line_split_part(narrow, narrow_map),
            }
        }
    }
}

fn tree_split_part(problem: TreeProblem, map: Vec<DemandId>) -> SplitPart {
    let universe = problem.universe();
    let layering =
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::Ideal);
    SplitPart {
        problem: OwnedProblem::Tree(problem),
        map,
        universe,
        layering,
        conflict: OnceLock::new(),
    }
}

fn line_split_part(problem: LineProblem, map: Vec<DemandId>) -> SplitPart {
    let universe = problem.universe();
    let layering = InstanceLayering::line_length_classes(&universe);
    SplitPart {
        problem: OwnedProblem::Line(problem),
        map,
        universe,
        layering,
        conflict: OnceLock::new(),
    }
}

/// Translates instance ids of a split sub-universe back into instance ids of
/// the session universe, matching on (original demand, network, start slot).
pub fn translate_split_selection(
    sub_universe: &DemandInstanceUniverse,
    selection: &[InstanceId],
    demand_map: &[DemandId],
    original: &DemandInstanceUniverse,
) -> Vec<InstanceId> {
    selection
        .iter()
        .map(|&d| {
            let inst = sub_universe.instance(d);
            let orig_demand = demand_map[inst.demand.index()];
            *original
                .instances_of_demand(orig_demand)
                .iter()
                .find(|&&o| {
                    let oi = original.instance(o);
                    oi.network == inst.network && oi.start == inst.start
                })
                .expect("original universe must contain the matching instance")
        })
        .collect()
}

/// One half of a wide/narrow split as borrowed engine inputs: the
/// sub-universe, its (pre-built) sharded conflict graph and layering, and
/// the map from sub-problem demand indices back to the original demand ids.
///
/// [`Scheduler`] sessions feed their cached [`SplitPart`]s through this
/// view; the dynamic serving layer (`netsched-service`) feeds its
/// incrementally maintained split cores — both run the exact same
/// combination code, [`solve_wide_narrow_on`].
#[derive(Clone, Copy)]
pub struct EngineHalf<'a> {
    /// The half's sub-universe.
    pub universe: &'a DemandInstanceUniverse,
    /// The sharded conflict graph of the sub-universe.
    pub conflict: &'a ShardedConflictGraph,
    /// The layering of the sub-universe.
    pub layering: &'a InstanceLayering,
    /// Sub-problem demand index → original demand id.
    pub demand_map: &'a [DemandId],
}

impl<'a> EngineHalf<'a> {
    /// The engine view of a cached [`SplitPart`].
    pub fn of_split_part(part: &'a SplitPart) -> Self {
        Self {
            universe: &part.universe,
            conflict: part.conflict(),
            layering: &part.layering,
            demand_map: &part.map,
        }
    }
}

/// The wide/narrow combination of Theorems 6.3 and 7.2 over
/// externally-owned halves: run the unit-height engine on the wide half and
/// the narrow engine on the narrow half, translate both schedules back into
/// `universe`'s instance ids, then per network keep the more profitable
/// schedule. The dual certificates add (`OPT ≤ ub_w + ub_n`).
///
/// This is the engine entry used both by the cached [`Scheduler`] session
/// (via its split caches) and by the dynamic serving layer over a
/// partially-rebuilt conflict graph; the output is a pure function of the
/// halves and the configuration.
pub fn solve_wide_narrow_on(
    universe: &DemandInstanceUniverse,
    wide: EngineHalf<'_>,
    narrow: EngineHalf<'_>,
    config: &AlgorithmConfig,
) -> Solution {
    solve_wide_narrow_on_budgeted(universe, wide, narrow, config, &Budget::unlimited())
}

/// [`solve_wide_narrow_on`] under a cooperative [`Budget`]: both halves
/// are charged against the **same** budget (its round accounting is
/// shared), so the cap bounds the total first-phase work of the combined
/// solve. The combined certificate is tagged with the merge of the two
/// halves' qualities.
pub fn solve_wide_narrow_on_budgeted(
    universe: &DemandInstanceUniverse,
    wide: EngineHalf<'_>,
    narrow: EngineHalf<'_>,
    config: &AlgorithmConfig,
    budget: &Budget,
) -> Solution {
    let wide_solution = if wide.universe.num_instances() > 0 {
        run_two_phase_on_budgeted(
            wide.universe,
            wide.conflict,
            wide.layering,
            RaiseRule::Unit,
            config,
            budget,
        )
    } else {
        Solution::empty()
    };
    let narrow_solution = if narrow.universe.num_instances() > 0 {
        run_two_phase_on_budgeted(
            narrow.universe,
            narrow.conflict,
            narrow.layering,
            RaiseRule::Narrow,
            config,
            budget,
        )
    } else {
        Solution::empty()
    };
    combine_wide_narrow(
        universe,
        HalfOutcome {
            universe: wide.universe,
            demand_map: wide.demand_map,
            solution: wide_solution,
        },
        HalfOutcome {
            universe: narrow.universe,
            demand_map: narrow.demand_map,
            solution: narrow_solution,
        },
    )
}

/// One solved half of a wide/narrow split, ready for
/// [`combine_wide_narrow`]: the half's sub-universe, the map from its
/// demand indices back to the original demand ids, and the half's engine
/// solution (cold **or** warm — the combination is agnostic to how the
/// half was solved, which is what lets the serving layer feed its
/// warm-resumed split cores through the same Theorem 6.3 / 7.2 code).
pub struct HalfOutcome<'a> {
    /// The half's sub-universe.
    pub universe: &'a DemandInstanceUniverse,
    /// Sub-problem demand index → original demand id.
    pub demand_map: &'a [DemandId],
    /// The half's engine solution.
    pub solution: Solution,
}

/// Combines two already-solved wide/narrow halves (Theorems 6.3 and 7.2):
/// translate both schedules into `universe`'s instance ids, keep the more
/// profitable schedule per network, and add the dual certificates
/// (`OPT ≤ ub_w + ub_n`).
pub fn combine_wide_narrow(
    universe: &DemandInstanceUniverse,
    wide: HalfOutcome<'_>,
    narrow: HalfOutcome<'_>,
) -> Solution {
    let wide_solution = wide.solution;
    let narrow_solution = narrow.solution;
    let wide_selected = translate_split_selection(
        wide.universe,
        &wide_solution.selected,
        wide.demand_map,
        universe,
    );
    let narrow_selected = translate_split_selection(
        narrow.universe,
        &narrow_solution.selected,
        narrow.demand_map,
        universe,
    );

    // Per network, keep the more profitable of the two schedules.
    let mut selected: Vec<InstanceId> = Vec::new();
    for t in 0..universe.num_networks() {
        let network = NetworkId::new(t);
        let w = universe.restrict_to_network(&wide_selected, network);
        let n = universe.restrict_to_network(&narrow_selected, network);
        if universe.total_profit(&w) >= universe.total_profit(&n) {
            selected.extend(w);
        } else {
            selected.extend(n);
        }
    }
    selected.sort_unstable();

    let mut stats = RoundStats::new();
    stats.merge(&wide_solution.stats);
    stats.merge(&narrow_solution.stats);

    let mut raised_instances = translate_split_selection(
        wide.universe,
        &wide_solution.raised_instances,
        wide.demand_map,
        universe,
    );
    raised_instances.extend(translate_split_selection(
        narrow.universe,
        &narrow_solution.raised_instances,
        narrow.demand_map,
        universe,
    ));
    raised_instances.sort_unstable();

    let wd = wide_solution.diagnostics;
    let nd = narrow_solution.diagnostics;
    let profit = universe.total_profit(&selected);
    Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: wd.epochs.max(nd.epochs),
            stages_per_epoch: wd.stages_per_epoch.max(nd.stages_per_epoch),
            steps: wd.steps + nd.steps,
            max_steps_per_stage: wd.max_steps_per_stage.max(nd.max_steps_per_stage),
            raised: wd.raised + nd.raised,
            delta: wd.delta.max(nd.delta),
            // Two genuinely empty (fully certified) halves mean an empty
            // universe: λ = 1 by convention. A budget-truncated half that
            // selected nothing must instead report its honest (tiny) λ,
            // or an anytime cut would masquerade as a perfect certificate.
            lambda: if wide_solution.is_empty()
                && narrow_solution.is_empty()
                && wd.quality.is_full()
                && nd.quality.is_full()
            {
                1.0
            } else {
                wd.lambda.min(nd.lambda).max(f64::MIN_POSITIVE)
            },
            dual_objective: wd.dual_objective + nd.dual_objective,
            // OPT ≤ OPT_wide + OPT_narrow ≤ ub_wide + ub_narrow.
            optimum_upper_bound: wd.optimum_upper_bound + nd.optimum_upper_bound,
            quality: wd.quality.merge(nd.quality),
        },
    }
}

/// [`solve_wide_narrow_on`] over the session's cached split.
fn solve_wide_narrow(ctx: &SolveContext<'_>) -> Solution {
    solve_wide_narrow_on(
        ctx.universe(),
        EngineHalf::of_split_part(ctx.wide()),
        EngineHalf::of_split_part(ctx.narrow()),
        ctx.config(),
    )
}

/// Theorem 5.3: the distributed `(7 + ε)`-approximation for unit-height /
/// all-wide tree instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitTreeSolver;

impl Solver for UnitTreeSolver {
    fn name(&self) -> &'static str {
        "tree-unit"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // (∆ + 1)/λ with ∆ = 6 and λ = 1 − ε (Lemma 3.1 + Lemma 4.3).
        Some(7.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Tree && problem.all_wide()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_two_phase_on(
            ctx.universe(),
            ctx.conflict(),
            ctx.layering(),
            RaiseRule::Unit,
            ctx.config(),
        )
    }
}

/// Lemma 6.2: the distributed `(73 + ε)`-approximation for all-narrow tree
/// instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct NarrowTreeSolver;

impl Solver for NarrowTreeSolver {
    fn name(&self) -> &'static str {
        "tree-narrow"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // (2∆² + 1)/λ with ∆ = 6 (Lemma 6.1).
        Some(73.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Tree && problem.all_narrow()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_two_phase_on(
            ctx.universe(),
            ctx.conflict(),
            ctx.layering(),
            RaiseRule::Narrow,
            ctx.config(),
        )
    }
}

/// Theorem 6.3: the distributed `(80 + ε)`-approximation for tree networks
/// with arbitrary heights (wide/narrow split + per-network best).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArbitraryTreeSolver;

impl Solver for ArbitraryTreeSolver {
    fn name(&self) -> &'static str {
        "tree-arbitrary"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // p(S) ≥ max(p_w, p_n) and OPT ≤ ub_w + ub_n with ub_w ≤ 7 p_w/(1−ε)
        // and ub_n ≤ 73 p_n/(1−ε), so the certified ratio is ≤ 80/(1−ε).
        Some(80.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Tree
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        solve_wide_narrow(ctx)
    }
}

/// Appendix A: the sequential 3-approximation for tree networks (singleton
/// raises in capture order, `∆ = 2`, `λ = 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialTreeSolver;

impl Solver for SequentialTreeSolver {
    fn name(&self) -> &'static str {
        "tree-sequential"
    }

    fn guarantee(&self, _eps: f64) -> Option<f64> {
        Some(3.0)
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Tree && problem.all_wide()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_sequential(ctx.universe(), ctx.sequential_layering())
    }
}

/// Theorem 7.1: the distributed `(4 + ε)`-approximation for unit-height /
/// all-wide line instances with windows.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineUnitSolver;

impl Solver for LineUnitSolver {
    fn name(&self) -> &'static str {
        "line-unit"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // (∆ + 1)/λ with ∆ = 3 (Section 7 length classes).
        Some(4.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Line && problem.all_wide()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_two_phase_on(
            ctx.universe(),
            ctx.conflict(),
            ctx.layering(),
            RaiseRule::Unit,
            ctx.config(),
        )
    }
}

/// Section 7 (narrow part): the distributed `(19 + ε)`-approximation for
/// all-narrow line instances with windows.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineNarrowSolver;

impl Solver for LineNarrowSolver {
    fn name(&self) -> &'static str {
        "line-narrow"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // (2∆² + 1)/λ with ∆ = 3.
        Some(19.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Line && problem.all_narrow()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_two_phase_on(
            ctx.universe(),
            ctx.conflict(),
            ctx.layering(),
            RaiseRule::Narrow,
            ctx.config(),
        )
    }
}

/// Theorem 7.2: the distributed `(23 + ε)`-approximation for line networks
/// with windows and arbitrary heights.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineArbitrarySolver;

impl Solver for LineArbitrarySolver {
    fn name(&self) -> &'static str {
        "line-arbitrary"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // 4/(1−ε) on the wide half plus 19/(1−ε) on the narrow half.
        Some(23.0 / (1.0 - eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Line
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        solve_wide_narrow(ctx)
    }
}

/// The paper's algorithms as boxed solvers, in dispatch-table order. The
/// baselines of `netsched-baseline` register through the same trait; the
/// `netsched` facade chains both registries.
pub fn registry() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(UnitTreeSolver),
        Box::new(NarrowTreeSolver),
        Box::new(ArbitraryTreeSolver),
        Box::new(SequentialTreeSolver),
        Box::new(LineUnitSolver),
        Box::new(LineNarrowSolver),
        Box::new(LineArbitrarySolver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem};
    use netsched_graph::VertexId;

    #[test]
    fn session_builds_every_structure_once() {
        let problem = figure6_problem();
        let session = Scheduler::for_tree(&problem);
        let a = session.solve(&AlgorithmConfig::deterministic(0.1));
        let b = session.solve(&AlgorithmConfig::deterministic(0.02));
        a.verify(session.universe()).unwrap();
        b.verify(session.universe()).unwrap();
        let counts = session.build_counts();
        assert_eq!(counts.universe, 1);
        assert_eq!(counts.layering, 1);
        // Finer ε means more stages per epoch.
        assert!(b.diagnostics.stages_per_epoch >= a.diagnostics.stages_per_epoch);
    }

    #[test]
    fn auto_selection_follows_the_dispatch_table() {
        let tree = figure6_problem(); // unit heights → all wide
        assert_eq!(Scheduler::for_tree(&tree).auto_solver().name(), "tree-unit");

        let line = figure1_line_problem(); // heights 0.5/0.7/0.4 → mixed
        assert_eq!(
            Scheduler::for_line(&line).auto_solver().name(),
            "line-arbitrary"
        );

        let mut narrow = TreeProblem::new(3);
        let t = narrow
            .add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        narrow
            .add_demand(VertexId(0), VertexId(2), 1.0, 0.25, vec![t])
            .unwrap();
        assert_eq!(
            Scheduler::for_tree(&narrow).auto_solver().name(),
            "tree-narrow"
        );
        narrow
            .add_demand(VertexId(0), VertexId(1), 1.0, 0.9, vec![t])
            .unwrap();
        assert_eq!(
            Scheduler::for_tree(&narrow).auto_solver().name(),
            "tree-arbitrary"
        );
    }

    #[test]
    fn portfolio_keeps_the_best_verified_run() {
        let problem = figure6_problem();
        let session = Scheduler::for_tree(&problem);
        let config = AlgorithmConfig::deterministic(0.1);
        let portfolio = session.portfolio(&registry(), &config);
        assert!(!portfolio.runs.is_empty());
        let best = portfolio.best().expect("at least one verified run");
        for run in &portfolio.runs {
            assert!(run.verified, "{} failed verification", run.name);
            assert!(best.solution.profit + 1e-12 >= run.solution.profit);
        }
        best.solution.verify(session.universe()).unwrap();
        // The split and both layerings were each built at most once.
        assert!(session.build_counts().split <= 1);
        assert_eq!(session.build_counts().universe, 1);
    }

    #[test]
    fn borrowed_universe_is_not_rebuilt() {
        let problem = figure6_problem();
        let universe = problem.universe();
        let session = Scheduler::for_tree_with_universe(&problem, &universe);
        let solution = session.solve(&AlgorithmConfig::deterministic(0.1));
        solution.verify(&universe).unwrap();
        assert_eq!(session.build_counts().universe, 0);
        assert!(std::ptr::eq(session.universe(), &universe));
    }

    #[test]
    fn guarantees_match_the_paper_table() {
        let eps = 0.1;
        assert!((UnitTreeSolver.guarantee(eps).unwrap() - 7.0 / 0.9).abs() < 1e-12);
        assert!((NarrowTreeSolver.guarantee(eps).unwrap() - 73.0 / 0.9).abs() < 1e-12);
        assert!((ArbitraryTreeSolver.guarantee(eps).unwrap() - 80.0 / 0.9).abs() < 1e-12);
        assert_eq!(SequentialTreeSolver.guarantee(eps), Some(3.0));
        assert!((LineUnitSolver.guarantee(eps).unwrap() - 4.0 / 0.9).abs() < 1e-12);
        assert!((LineNarrowSolver.guarantee(eps).unwrap() - 19.0 / 0.9).abs() < 1e-12);
        assert!((LineArbitrarySolver.guarantee(eps).unwrap() - 23.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn portfolio_ties_go_to_the_earliest_solver() {
        let run = |name: &'static str, profit: f64, verified: bool| PortfolioRun {
            name,
            guarantee: None,
            verified,
            solution: {
                let mut s = Solution::empty();
                s.profit = profit;
                s
            },
        };
        let portfolio = Portfolio {
            runs: vec![
                run("unverified-top", 9.0, false),
                run("first", 5.0, true),
                run("second", 5.0, true),
                run("worse", 4.0, true),
            ],
        };
        assert_eq!(portfolio.best().unwrap().name, "first");
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
