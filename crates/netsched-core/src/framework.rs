//! The two-phase primal-dual framework (Section 3.2) and its distributed
//! first phase (Section 5).
//!
//! The engine is generic over
//!
//! * the **layered decomposition** supplying the epoch of every demand
//!   instance and its critical edges `π(d)` (this is where tree networks,
//!   line networks and the Appendix A ordering differ), and
//! * the **raise rule** ([`RaiseRule::Unit`] for unit-height/wide instances,
//!   [`RaiseRule::Narrow`] for narrow instances).
//!
//! First phase: epochs iterate over the groups of the layered decomposition;
//! each epoch runs `⌈log_ξ ε⌉` stages; each stage repeatedly computes a
//! maximal independent set of the still-unsatisfied instances of the group
//! and raises all of them simultaneously, pushing the MIS onto a stack.
//! Second phase: pop the stack and greedily keep every instance that stays
//! feasible.

use crate::budget::{Budget, CertificateQuality};
use crate::config::{stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
use crate::duals::DualState;
use crate::solution::{RunDiagnostics, Solution};
use netsched_decomp::InstanceLayering;
use netsched_distrib::{
    maximal_independent_set, sharded_mis, ConflictGraph, MisScratch, MisStrategy, RoundStats,
    ShardedConflictGraph,
};
use netsched_graph::{DemandInstanceUniverse, InstanceId, LoadTracker, EPS};
use rayon::prelude::*;

/// Eligibility of every instance (those whose height fits every edge
/// capacity on their path) together with the minimum relative height
/// `h_min` over the eligible instances. Shared by the plain and traced
/// engines; `O(|D|)` under uniform capacities.
pub(crate) fn eligibility(universe: &DemandInstanceUniverse) -> (Vec<bool>, f64) {
    let eligible: Vec<bool> = universe
        .instance_ids()
        .map(|d| DualState::max_relative_height(universe, d) <= 1.0 + EPS)
        .collect();
    let h_min = universe
        .instance_ids()
        .filter(|d| eligible[d.index()])
        .map(|d| DualState::max_relative_height(universe, d))
        .fold(1.0_f64, f64::min);
    (eligible, h_min)
}

/// Runs the two-phase framework on a universe with the given layering and
/// raise rule. This is the engine behind every distributed algorithm in
/// this crate (Theorems 5.3, 6.3, 7.1 and 7.2 only differ in the layering,
/// the raise rule and the universe they pass in).
///
/// Builds the sharded conflict graph and delegates to
/// [`run_two_phase_on`]; callers that solve the same universe repeatedly
/// (the `Scheduler` session) should build the graph once and call
/// [`run_two_phase_on`] directly.
pub fn run_two_phase(
    universe: &DemandInstanceUniverse,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
) -> Solution {
    if universe.num_instances() == 0 {
        config.validate().expect("invalid algorithm configuration");
        return Solution::empty();
    }
    let conflict = ShardedConflictGraph::build(universe);
    run_two_phase_on(universe, &conflict, layering, rule, config)
}

/// Positions within one layering group that are eligible and still below
/// the stage threshold, in group order. The Fenwick-heavy satisfaction
/// checks are evaluated shard-parallel (reads only); the order-preserving
/// merge keeps the result identical to the sequential filter.
pub(crate) fn unsatisfied_of_group(
    universe: &DemandInstanceUniverse,
    duals: &DualState,
    eligible: &[bool],
    group: &[InstanceId],
    group_by_shard: &[Vec<u32>],
    threshold: f64,
) -> Vec<InstanceId> {
    const PAR_MIN_GROUP: usize = 1024;
    let keep =
        |d: InstanceId| eligible[d.index()] && !duals.is_xi_satisfied(universe, d, threshold);
    if group.len() < PAR_MIN_GROUP || group_by_shard.len() <= 1 || rayon::current_num_threads() <= 1
    {
        return group.iter().copied().filter(|&d| keep(d)).collect();
    }
    let kept_parts: Vec<Vec<u32>> = (0..group_by_shard.len())
        .into_par_iter()
        .map(|t| {
            group_by_shard[t]
                .iter()
                .copied()
                .filter(|&p| keep(group[p as usize]))
                .collect()
        })
        .collect();
    let mut mask = vec![false; group.len()];
    for part in &kept_parts {
        for &p in part {
            mask[p as usize] = true;
        }
    }
    group
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask[i])
        .map(|(_, &d)| d)
        .collect()
}

/// Runs the two-phase framework on a prebuilt sharded conflict graph.
///
/// The first phase is executed shard-parallel: the per-step satisfaction
/// filters, the MIS of each step ([`sharded_mis`]) and the dual raises of
/// each MIS ([`DualState::raise_batch`]) all decompose by network. Every
/// decision — MIS contents, raise amounts, schedules, certificates — is
/// identical to the sequential reference engine
/// ([`run_two_phase_reference`]) at any thread count; only the Luby
/// round/message accounting may differ from the message-passing simulator
/// by small constants.
pub fn run_two_phase_on(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
) -> Solution {
    run_two_phase_on_budgeted(
        universe,
        conflict,
        layering,
        rule,
        config,
        &Budget::unlimited(),
    )
}

/// [`run_two_phase_on`] under a cooperative [`Budget`]: the first phase
/// checks the budget before every MIS/raise round and cuts the moment it
/// is exhausted. The second phase always runs (it replays whatever the
/// stack holds, so the schedule is feasible regardless of where the cut
/// landed) and the certificate is computed from the duals as raised so
/// far — a *valid* optimum upper bound by weak duality, tagged
/// [`CertificateQuality::Truncated`] with the number of first-phase
/// (group × stage) slots not yet drained.
pub fn run_two_phase_on_budgeted(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    budget: &Budget,
) -> Solution {
    config.validate().expect("invalid algorithm configuration");
    if universe.num_instances() == 0 {
        return Solution::empty();
    }

    let mut duals = DualState::new(universe, rule);
    let mut stats = RoundStats::new();
    let mut scratch = MisScratch::new(universe.num_instances());

    let (eligible, h_min) = eligibility(universe);
    let xi = stage_xi(rule, layering.max_critical().max(1), h_min);
    let stages = stages_per_epoch(xi, config.epsilon);

    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let step_cap = 4 * (profit_ratio.log2().ceil() as u64 + 4) + 32;

    let groups = layering.groups();
    let sharding = conflict.sharding();
    let mut stack: Vec<Vec<InstanceId>> = Vec::new();
    let mut steps: u64 = 0;
    let mut max_steps_per_stage: u64 = 0;
    let mut raised: u64 = 0;

    // Budget accounting: `rounds_left` on a cut counts the first-phase
    // (group × stage) slots not yet drained when the budget expired.
    let total_slots = (groups.len() * stages) as u64;
    let mut completed_slots: u64 = 0;
    let mut cut = false;

    // ---------------- First phase ----------------
    'groups: for (epoch, group) in groups.iter().enumerate() {
        // Group positions partitioned by shard, once per epoch.
        let mut group_by_shard: Vec<Vec<u32>> = vec![Vec::new(); conflict.num_shards()];
        for (i, &d) in group.iter().enumerate() {
            group_by_shard[sharding.shard_of(d).index()].push(i as u32);
        }
        for stage in 1..=stages {
            let threshold = 1.0 - xi.powi(stage as i32);
            let mut stage_steps: u64 = 0;
            loop {
                let unsatisfied = unsatisfied_of_group(
                    universe,
                    &duals,
                    &eligible,
                    group,
                    &group_by_shard,
                    threshold,
                );
                if unsatisfied.is_empty() {
                    break;
                }
                debug_assert!(
                    stage_steps < step_cap,
                    "stage exceeded the Claim 5.2 step bound ({step_cap})"
                );
                if stage_steps >= step_cap {
                    break;
                }
                if !budget.consume_round() {
                    cut = true;
                    steps += stage_steps;
                    max_steps_per_stage = max_steps_per_stage.max(stage_steps);
                    break 'groups;
                }

                // One step: shard-parallel MIS among the unsatisfied
                // instances of the group, then raise the whole MIS at once
                // (also shard-parallel; an MIS is conflict-free, so the
                // raises are independent).
                let strategy = derive_strategy(config, epoch, stage, stage_steps);
                let mis = sharded_mis(conflict, &unsatisfied, strategy, &mut stats, &mut scratch);

                let batch: Vec<(InstanceId, &[netsched_graph::EdgeId])> =
                    mis.iter().map(|&d| (d, layering.critical(d))).collect();
                duals.raise_batch(universe, &batch);
                let outgoing_messages: u64 = mis.iter().map(|&d| conflict.degree(d) as u64).sum();
                raised += mis.len() as u64;
                // Broadcasting the raised dual variables to the processors
                // that share a resource costs one round; each message
                // carries at most |π(d)| + 1 ≤ ∆ + 1 records.
                stats.record_messages(outgoing_messages, layering.max_critical() as u64 + 1);
                stats.record_round();
                stack.push(mis);
                stage_steps += 1;
            }
            steps += stage_steps;
            max_steps_per_stage = max_steps_per_stage.max(stage_steps);
            completed_slots += 1;
        }
    }

    // ---------------- Second phase ----------------
    // Incremental congestion tracking: each candidate costs O(path(d)),
    // independent of how much has already been selected.
    let selected = replay_stack(
        universe,
        conflict,
        stack.iter().rev().map(Vec::as_slice),
        &mut stats,
    );

    // The certificate: all eligible instances are λ-satisfied, so the dual
    // assignment scaled by 1/λ upper-bounds the optimum (weak duality).
    let lambda = universe
        .instance_ids()
        .filter(|d| eligible[d.index()])
        .map(|d| duals.lhs(universe, d) / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS);
    let dual_objective = duals.objective();

    let mut raised_instances: Vec<InstanceId> = stack.iter().flatten().copied().collect();
    raised_instances.sort_unstable();

    let profit = universe.total_profit(&selected);
    Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: groups.len(),
            stages_per_epoch: stages,
            steps,
            max_steps_per_stage,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
            quality: if cut {
                CertificateQuality::Truncated {
                    rounds_left: total_slots - completed_slots,
                }
            } else {
                CertificateQuality::Full
            },
        },
    }
}

/// The engine's second phase, factored to the **pipelining boundary**:
/// pops the MIS layers newest-first and greedily commits every instance
/// that still fits its edge capacities. It reads only the frozen
/// first-phase output (the MIS stack) plus the immutable
/// universe/conflict structures — no duals, no budget, no mutation of
/// either input — which is exactly why a pipelined serving tier may run
/// other work concurrently with it as long as that work touches neither
/// (see [`run_two_phase_warm_overlapped`](crate::warm::run_two_phase_warm_overlapped)).
/// Shared by the cold sharded engine and the warm-resume engine so their
/// replays cannot drift apart.
pub(crate) fn replay_stack<'a>(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    mises: impl Iterator<Item = &'a [InstanceId]>,
    stats: &mut RoundStats,
) -> Vec<InstanceId> {
    let mut tracker = LoadTracker::new(universe);
    let mut selected: Vec<InstanceId> = Vec::new();
    for mis in mises {
        let mut announced = 0u64;
        for &d in mis {
            if tracker.try_commit(universe, d) {
                selected.push(d);
                announced += conflict.degree(d) as u64;
            }
        }
        stats.record_messages(announced, 1);
        stats.record_round();
    }
    selected.sort_unstable();
    selected
}

/// The pre-shard reference engine: single flat CSR, simulator-driven MIS,
/// strictly sequential filters and raises. Kept as the differential-testing
/// baseline for the sharded engine — the equivalence suite asserts that
/// [`run_two_phase`] reproduces its schedules and certificates exactly —
/// and as the honest "before" side of the `shard_scaling` bench.
pub fn run_two_phase_reference(
    universe: &DemandInstanceUniverse,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
) -> Solution {
    config.validate().expect("invalid algorithm configuration");
    if universe.num_instances() == 0 {
        return Solution::empty();
    }

    let conflict = ConflictGraph::build(universe);
    let mut duals = DualState::new(universe, rule);
    let mut stats = RoundStats::new();

    // Instances that can never be scheduled (their height exceeds some edge
    // capacity on their path) are excluded from raising and from the dual
    // certificate; they cannot belong to any feasible solution, so the
    // optimum is unaffected. ξ and the number of stages per epoch follow
    // (Sections 5, 6.1 and 7).
    let (eligible, h_min) = eligibility(universe);
    let xi = stage_xi(rule, layering.max_critical().max(1), h_min);
    let stages = stages_per_epoch(xi, config.epsilon);

    // Safety cap on the number of steps per stage; Claim 5.2 bounds it by
    // 1 + log2(p_max / p_min).
    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let step_cap = 4 * (profit_ratio.log2().ceil() as u64 + 4) + 32;

    let groups = layering.groups();
    let mut stack: Vec<Vec<InstanceId>> = Vec::new();
    let mut steps: u64 = 0;
    let mut max_steps_per_stage: u64 = 0;
    let mut raised: u64 = 0;

    // ---------------- First phase ----------------
    for (epoch, group) in groups.iter().enumerate() {
        for stage in 1..=stages {
            let threshold = 1.0 - xi.powi(stage as i32);
            let mut stage_steps: u64 = 0;
            loop {
                let unsatisfied: Vec<InstanceId> = group
                    .iter()
                    .copied()
                    .filter(|&d| {
                        eligible[d.index()] && !duals.is_xi_satisfied(universe, d, threshold)
                    })
                    .collect();
                if unsatisfied.is_empty() {
                    break;
                }
                debug_assert!(
                    stage_steps < step_cap,
                    "stage exceeded the Claim 5.2 step bound ({step_cap})"
                );
                if stage_steps >= step_cap {
                    break;
                }

                // One step: MIS among the unsatisfied instances of the
                // group, then raise every selected instance simultaneously.
                let strategy = derive_strategy(config, epoch, stage, stage_steps);
                let mis = maximal_independent_set(&conflict, &unsatisfied, strategy, &mut stats);

                let mut outgoing_messages = 0u64;
                for &d in &mis {
                    duals.raise(universe, d, layering.critical(d));
                    outgoing_messages += conflict.degree(d) as u64;
                }
                raised += mis.len() as u64;
                // Broadcasting the raised dual variables to the processors
                // that share a resource costs one round; each message
                // carries at most |π(d)| + 1 ≤ ∆ + 1 records.
                stats.record_messages(outgoing_messages, layering.max_critical() as u64 + 1);
                stats.record_round();
                stack.push(mis);
                stage_steps += 1;
            }
            steps += stage_steps;
            max_steps_per_stage = max_steps_per_stage.max(stage_steps);
        }
    }

    // ---------------- Second phase ----------------
    // Incremental congestion tracking: each candidate costs O(path(d)),
    // independent of how much has already been selected.
    let mut tracker = LoadTracker::new(universe);
    let mut selected: Vec<InstanceId> = Vec::new();
    for mis in stack.iter().rev() {
        let mut announced = 0u64;
        for &d in mis {
            if tracker.try_commit(universe, d) {
                selected.push(d);
                announced += conflict.degree(d) as u64;
            }
        }
        stats.record_messages(announced, 1);
        stats.record_round();
    }
    selected.sort_unstable();

    // The certificate: all eligible instances are λ-satisfied, so the dual
    // assignment scaled by 1/λ upper-bounds the optimum (weak duality).
    let lambda = universe
        .instance_ids()
        .filter(|d| eligible[d.index()])
        .map(|d| duals.lhs(universe, d) / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS);
    let dual_objective = duals.objective();

    let mut raised_instances: Vec<InstanceId> = stack.iter().flatten().copied().collect();
    raised_instances.sort_unstable();

    let profit = universe.total_profit(&selected);
    Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: groups.len(),
            stages_per_epoch: stages,
            steps,
            max_steps_per_stage,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
            quality: CertificateQuality::Full,
        },
    }
}

/// Derives a per-step MIS strategy from the base configuration so that
/// every step uses fresh (but reproducible) randomness.
pub(crate) fn derive_strategy(
    config: &AlgorithmConfig,
    epoch: usize,
    stage: usize,
    step: u64,
) -> MisStrategy {
    match config.mis {
        MisStrategy::SequentialGreedy => MisStrategy::SequentialGreedy,
        MisStrategy::Luby { seed } => {
            let mut x = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(epoch as u64)
                .wrapping_mul(0xBF58476D1CE4E5B9)
                .wrapping_add(stage as u64)
                .wrapping_mul(0x94D049BB133111EB)
                .wrapping_add(step);
            x ^= x >> 31;
            MisStrategy::Luby { seed: x }
        }
    }
}

/// Verifies the *interference property* of a completed run (Section 3.2):
/// replays the first phase deterministically is not possible, so instead we
/// check the property that the layering guarantees — every pair of
/// overlapping instances with `group(d1) ≤ group(d2)` has a critical edge of
/// `d1` on `path(d2)`. Exposed mainly for tests and the experiment harness.
pub fn check_interference_property(
    universe: &DemandInstanceUniverse,
    layering: &InstanceLayering,
) -> Result<(), String> {
    layering.check_layered_property(universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::approximation_bound;
    use netsched_decomp::TreeDecompositionKind;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};
    use netsched_graph::{LineProblem, NetworkId, TreeProblem, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unit_tree_problem(seed: u64, n: usize, r: usize, m: usize) -> TreeProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..64.0),
                access,
            )
            .unwrap();
        }
        p
    }

    /// Internal consistency of Lemma 3.1: `dual_objective ≤ (∆ + 1)·p(S)`
    /// and `OPT ≤ dual_objective / λ`, hence the certified ratio is at most
    /// `(∆ + 1)/λ`.
    fn assert_lemma_3_1(sol: &Solution) {
        let d = sol.diagnostics;
        assert!(
            sol.profit * (d.delta as f64 + 1.0) + 1e-6 >= d.dual_objective,
            "Lemma 3.1 inequality violated: profit {} · (∆+1) {} < dual {}",
            sol.profit,
            d.delta + 1,
            d.dual_objective
        );
        let bound = approximation_bound(RaiseRule::Unit, d.delta, d.lambda);
        let ratio = sol.certified_ratio().unwrap_or(1.0);
        assert!(
            ratio <= bound + 1e-6,
            "certified ratio {ratio} exceeds the theorem bound {bound}"
        );
    }

    #[test]
    fn unit_engine_on_figure6() {
        let p = figure6_problem();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        sol.verify(&u).unwrap();
        assert!(sol.profit > 0.0);
        assert!(sol.diagnostics.lambda >= 1.0 - 0.1 - 1e-9);
        assert_lemma_3_1(&sol);
    }

    #[test]
    fn unit_engine_on_two_trees_picks_non_conflicting_routes() {
        let p = two_tree_problem();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.05),
        );
        sol.verify(&u).unwrap();
        // The three demands have total profit 7.5; at least two of them can
        // always be scheduled (demand 0 via tree 1 and demand 1 via tree 0,
        // say), and the 3-approximation guarantee forces a profit of at
        // least opt/3+ε ≥ 2.5 even in the worst case. Empirically the engine
        // schedules ≥ 2 demands here.
        assert!(sol.len() >= 2, "expected at least two demands scheduled");
        assert_lemma_3_1(&sol);
    }

    #[test]
    fn narrow_engine_on_figure1() {
        let p = figure1_line_problem();
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Narrow,
            &AlgorithmConfig::deterministic(0.1),
        );
        sol.verify(&u).unwrap();
        // {A, C} or {B, C} (profit 2) are feasible; the engine should find
        // a solution of profit at least 1.
        assert!(sol.profit >= 1.0);
    }

    #[test]
    fn narrow_engine_respects_lemma_6_1_on_all_narrow_instances() {
        // All heights at most 1/2 so the Lemma 6.1 accounting applies.
        let mut rng = StdRng::seed_from_u64(21);
        let mut p = LineProblem::new(30, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for _ in 0..20 {
            let len = rng.gen_range(1..=8u32);
            let release = rng.gen_range(0..=(30 - len));
            p.add_demand(
                release,
                release + len - 1,
                len,
                rng.gen_range(1.0..10.0),
                rng.gen_range(0.1..=0.5),
                acc.clone(),
            )
            .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Narrow,
            &AlgorithmConfig::deterministic(0.1),
        );
        sol.verify(&u).unwrap();
        let d = sol.diagnostics;
        assert!(
            sol.profit * (2.0 * (d.delta as f64).powi(2) + 1.0) + 1e-6 >= d.dual_objective,
            "Lemma 6.1 inequality violated: profit {} vs dual {}",
            sol.profit,
            d.dual_objective
        );
        assert!(d.lambda >= 0.9 - 1e-9);
        // Theorem bound for the narrow line case: (2·3² + 1)/λ = 19/(1 − ε).
        assert!(sol.certified_ratio().unwrap() <= 19.0 / 0.9 + 1e-6);
    }

    #[test]
    fn random_instances_unit_rule_respects_guarantees() {
        for seed in 0..4u64 {
            let p = random_unit_tree_problem(seed, 24, 3, 20);
            let u = p.universe();
            let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
            check_interference_property(&u, &layering).unwrap();
            let cfg = AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 99 + seed },
                seed,
            };
            let sol = run_two_phase(&u, &layering, RaiseRule::Unit, &cfg);
            sol.verify(&u).unwrap();
            assert!(sol.diagnostics.lambda >= 0.9 - 1e-9, "λ must reach 1 − ε");
            assert_lemma_3_1(&sol);
            assert!(sol.stats.rounds > 0);
            assert!(sol.stats.mis_invocations > 0);
        }
    }

    #[test]
    fn every_raised_instance_is_selected_or_blocked() {
        // The invariant used in the proof of Lemma 3.1: "for any d' ∈ R,
        // either d' belongs to S or a successor of d' belongs to S" — in
        // particular every raised instance is selected or conflicts with a
        // selected instance.
        let p = random_unit_tree_problem(7, 20, 2, 15);
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        let conflict = ConflictGraph::build(&u);
        assert!(!sol.raised_instances.is_empty());
        for &d in &sol.raised_instances {
            let covered = sol.selected.contains(&d)
                || sol.selected.iter().any(|&s| conflict.are_conflicting(s, d));
            assert!(
                covered,
                "raised instance {d} is neither selected nor blocked"
            );
        }
    }

    #[test]
    fn deterministic_and_luby_runs_are_both_feasible_and_comparable() {
        let p = random_unit_tree_problem(11, 30, 3, 25);
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let det = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        let rnd = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 1 },
                seed: 1,
            },
        );
        det.verify(&u).unwrap();
        rnd.verify(&u).unwrap();
        // Both must satisfy the same worst-case bound; their profits should
        // be in the same ballpark (within the approximation factor of each
        // other).
        let bound = approximation_bound(RaiseRule::Unit, layering.max_critical(), 0.9);
        assert!(det.profit * bound + 1e-9 >= rnd.profit);
        assert!(rnd.profit * bound + 1e-9 >= det.profit);
    }

    #[test]
    fn steps_per_stage_respect_profit_ratio_bound() {
        // Lemma 5.1 / Claim 5.2: the number of steps in a stage is at most
        // 1 + log2(p_max / p_min) ... with the MIS tie-breaking this is a
        // worst-case bound; we check a slightly relaxed version.
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = TreeProblem::new(16);
        let edges = (1..16)
            .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
            .collect();
        let t = p.add_network(edges).unwrap();
        for _ in 0..30 {
            let u = rng.gen_range(0..16);
            let mut v = rng.gen_range(0..16);
            while v == u {
                v = rng.gen_range(0..16);
            }
            p.add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..=16.0),
                vec![t],
            )
            .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        let ratio: f64 = 16.0;
        assert!(
            (sol.diagnostics.max_steps_per_stage as f64) <= ratio.log2() + 2.0,
            "steps per stage {} exceed Claim 5.2 bound",
            sol.diagnostics.max_steps_per_stage
        );
    }

    #[test]
    fn empty_universe_returns_empty_solution() {
        let p = TreeProblem::new(4);
        // A problem with a network but no demands.
        let mut p = p;
        p.add_network(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(2), VertexId(3)),
        ])
        .unwrap();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let sol = run_two_phase(&u, &layering, RaiseRule::Unit, &AlgorithmConfig::default());
        assert!(sol.is_empty());
        assert_eq!(sol.profit, 0.0);
    }

    #[test]
    fn line_problem_with_windows_unit_rule() {
        let mut p = LineProblem::new(20, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..12 {
            let len = rng.gen_range(1..=6u32);
            let release = rng.gen_range(0..=(20 - len));
            let slack = rng.gen_range(0..=(20 - release - len).min(4));
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..10.0),
                1.0,
                acc.clone(),
            )
            .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        let sol = run_two_phase(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        sol.verify(&u).unwrap();
        assert!(sol.profit > 0.0);
        assert_lemma_3_1(&sol);
        // ∆ = 3 for the line layering, so the certified ratio is ≤ 4/(1−ε).
        assert!(sol.certified_ratio().unwrap() <= 4.0 / 0.9 + 1e-6);
    }
}
