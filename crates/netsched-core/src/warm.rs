//! Warm-started incremental re-solve with certificate repair.
//!
//! The paper's approximation guarantee is carried by the **dual
//! certificate** (Lemma 3.1 / 6.1), not by any particular execution order
//! of the first phase: weak duality holds for *any* non-negative dual
//! assignment, scaled by the worst satisfaction slackness `λ` over the
//! eligible instances. That freedom is what this module exploits. Instead
//! of re-running the two-phase engine from zero duals after every demand
//! splice, a [`WarmState`] persists
//!
//! * the [`DualState`] of the previous solve,
//! * per-instance **raise records** (the exact `β` amounts each instance's
//!   raises added, so an expiring demand's contributions can be cleared
//!   out point by point — the "Fenwick point-clears"),
//! * the surviving first-phase **stack** (the selection seed the second
//!   phase replays), and
//! * cached eligibility / relative heights / constraint-LHS lower bounds.
//!
//! [`WarmState::splice`] follows a universe splice: expired instances'
//! `β` contributions are subtracted, expired demands' `α` variables are
//! dropped, and every per-instance vector is renumbered through the
//! [`UniverseDelta`] id maps. [`run_two_phase_warm_on`] then **repairs**
//! the certificate: only the instances of *dirty* networks (the networks
//! the splices touched since the last solve) can have lost satisfaction —
//! a clean network's `β` range sums are untouched and `α` variables only
//! ever grow — so the MIS/raise loop re-runs over the dirty shards alone,
//! until every eligible instance is `(1 − ε)`-satisfied again. The second
//! phase replays the whole stack (surviving seed + repair MISes, newest
//! first), exactly like a cold run's stack pop.
//!
//! # The relaxed equivalence contract
//!
//! A warm re-solve is **certificate-equivalent**, not byte-equivalent, to
//! a cold solve: the schedule may differ, but every epoch's certificate
//! must verify (`λ ≥ 1 − ε`, feasible schedule) and the certified ratio
//! must stay within the solver's worst-case guarantee. Both are checked
//! in-engine: in debug builds they are asserted outright; in all builds a
//! failed check triggers the safety valve — the state is reset and the
//! solve re-runs from zero duals over all shards, which reproduces the
//! cold engine's output exactly (a fresh [`WarmState`] with every shard
//! dirty executes the identical step sequence as
//! [`run_two_phase_on`](crate::run_two_phase_on)).

use crate::config::{approximation_bound, stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
use crate::duals::DualState;
use crate::framework::{derive_strategy, unsatisfied_of_group};
use crate::solution::{RunDiagnostics, Solution};
use netsched_decomp::InstanceLayering;
use netsched_distrib::{sharded_mis, MisScratch, RoundStats, ShardedConflictGraph};
use netsched_graph::{
    DemandInstanceUniverse, EdgeId, InstanceId, LoadTracker, NetworkId, UniverseDelta, EPS,
};

/// The `β` contributions of one instance's raises: the exact amounts added
/// to each edge of its own network, accumulated across repair epochs.
#[derive(Debug, Clone)]
struct RaiseRecord {
    network: NetworkId,
    beta: Vec<(EdgeId, f64)>,
}

impl Default for RaiseRecord {
    fn default() -> Self {
        Self {
            network: NetworkId::new(0),
            beta: Vec::new(),
        }
    }
}

/// The persisted solver state a warm re-solve resumes from; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct WarmState {
    rule: RaiseRule,
    duals: DualState,
    /// Per-instance raise bookkeeping, indexed by current instance id.
    records: Vec<RaiseRecord>,
    /// The surviving first-phase stack (oldest MIS first) — the selection
    /// seed the second phase replays.
    stack: Vec<Vec<InstanceId>>,
    /// Per-instance lower bound on the constraint LHS, exact as of the
    /// instance's last visit by a repair pass (later raises only grow the
    /// true LHS, so the cache never over-estimates).
    lhs: Vec<f64>,
    /// Cached eligibility (static per instance: heights and capacities
    /// never change after admission).
    eligible: Vec<bool>,
    /// Cached maximum relative height `ĥ(d)` (static per instance).
    rel_height: Vec<f64>,
    /// Networks whose duals were perturbed by splices since the last
    /// completed warm solve.
    pending_dirty: Vec<bool>,
    /// `false` until a warm solve has completed on this state; a fresh
    /// state repairs every shard, which reproduces the cold engine.
    primed: bool,
    /// Warm solves completed on this state (telemetry).
    epochs_resumed: u64,
}

impl WarmState {
    /// A fresh state over a universe: zero duals, empty stack, every shard
    /// pending. The first [`run_two_phase_warm_on`] on a fresh state is
    /// step-for-step identical to the cold engine.
    pub fn new(universe: &DemandInstanceUniverse, rule: RaiseRule) -> Self {
        let n = universe.num_instances();
        let rel_height: Vec<f64> = universe
            .instance_ids()
            .map(|d| DualState::max_relative_height(universe, d))
            .collect();
        let eligible = rel_height.iter().map(|&h| h <= 1.0 + EPS).collect();
        Self {
            rule,
            duals: DualState::new(universe, rule),
            records: vec![RaiseRecord::default(); n],
            stack: Vec::new(),
            lhs: vec![0.0; n],
            eligible,
            rel_height,
            pending_dirty: vec![false; universe.num_networks()],
            primed: false,
            epochs_resumed: 0,
        }
    }

    /// The raise rule this state resumes.
    #[inline]
    pub fn rule(&self) -> RaiseRule {
        self.rule
    }

    /// Warm solves completed on this state so far.
    #[inline]
    pub fn epochs_resumed(&self) -> u64 {
        self.epochs_resumed
    }

    /// The persisted dual assignment (read-only; certification telemetry).
    #[inline]
    pub fn duals(&self) -> &DualState {
        &self.duals
    }

    /// Splices one universe delta through the persisted state. Must be
    /// called **after** the universe splice, with the same
    /// [`UniverseDelta`], exactly once per splice:
    ///
    /// 1. every removed instance's recorded `β` contributions are
    ///    subtracted from the Fenwick trees (point-clears),
    /// 2. expired demands' `α` variables are dropped and survivors
    ///    compacted through the demand id map,
    /// 3. the per-instance vectors (records, LHS cache, eligibility,
    ///    relative heights) renumber through the instance id map, with the
    ///    arrivals' entries freshly computed,
    /// 4. the stack renumbers likewise (expired members drop out; only the
    ///    newest occurrence of a re-raised instance is kept — an older
    ///    duplicate below a newer one can never commit in the second
    ///    phase, since tracker loads only grow), and
    /// 5. the delta's dirty networks accumulate into the pending set the
    ///    next repair consumes.
    pub fn splice(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        assert_eq!(
            delta.old_num_instances(),
            self.records.len(),
            "warm state spliced against a delta of a different universe"
        );
        let n_new = universe.num_instances();

        // 1. Point-clear the removed instances' β contributions.
        for old in delta.removed_instances() {
            let record = std::mem::take(&mut self.records[old.index()]);
            for (edge, amount) in record.beta {
                self.duals
                    .subtract_beta(universe, record.network, edge, amount);
            }
        }

        // 2. Compact α through the demand renumbering.
        self.duals
            .compact_alpha(delta.demand_remap(), universe.num_demands());

        // 3. Renumber the per-instance vectors; arrivals get fresh entries.
        let old_records = std::mem::take(&mut self.records);
        let old_lhs = std::mem::take(&mut self.lhs);
        let old_eligible = std::mem::take(&mut self.eligible);
        let old_rel = std::mem::take(&mut self.rel_height);
        self.records = vec![RaiseRecord::default(); n_new];
        self.lhs = vec![0.0; n_new];
        self.eligible = vec![false; n_new];
        self.rel_height = vec![0.0; n_new];
        for (old, record) in old_records.into_iter().enumerate() {
            if let Some(new) = delta.map_instance(InstanceId::new(old)) {
                self.records[new.index()] = record;
                self.lhs[new.index()] = old_lhs[old];
                self.eligible[new.index()] = old_eligible[old];
                self.rel_height[new.index()] = old_rel[old];
            }
        }
        for d in delta.first_added()..n_new {
            let rel = DualState::max_relative_height(universe, InstanceId::new(d));
            self.rel_height[d] = rel;
            self.eligible[d] = rel <= 1.0 + EPS;
        }

        // 4. Renumber the stack, keeping only the newest occurrence.
        let mut seen = vec![false; n_new];
        for mis in self.stack.iter_mut().rev() {
            mis.retain_mut(|d| match delta.map_instance(*d) {
                Some(new) if !seen[new.index()] => {
                    seen[new.index()] = true;
                    *d = new;
                    true
                }
                _ => false,
            });
        }
        self.stack.retain(|mis| !mis.is_empty());

        // 5. Accumulate the dirt for the next repair.
        for (pending, &dirty) in self.pending_dirty.iter_mut().zip(delta.dirty()) {
            *pending |= dirty;
        }
    }
}

/// One repair pass over the active instances: the cold engine's
/// group × stage × step loop, restricted to `active`. Returns
/// `(steps, max_steps_per_stage, raised)` and appends the new MIS sets to
/// `stack`.
#[allow(clippy::too_many_arguments)]
fn repair_pass(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
    active: &[bool],
    groups: &[Vec<InstanceId>],
    stages: usize,
    xi: f64,
    step_cap: u64,
    stats: &mut RoundStats,
    scratch: &mut MisScratch,
    stack: &mut Vec<Vec<InstanceId>>,
) -> (u64, u64, u64) {
    let sharding = conflict.sharding();
    let mut steps: u64 = 0;
    let mut max_steps_per_stage: u64 = 0;
    let mut raised: u64 = 0;
    for (epoch, group) in groups.iter().enumerate() {
        let filtered: Vec<InstanceId> = group
            .iter()
            .copied()
            .filter(|d| active[d.index()])
            .collect();
        if filtered.is_empty() {
            continue;
        }
        let mut group_by_shard: Vec<Vec<u32>> = vec![Vec::new(); conflict.num_shards()];
        for (i, &d) in filtered.iter().enumerate() {
            group_by_shard[sharding.shard_of(d).index()].push(i as u32);
        }
        for stage in 1..=stages {
            let threshold = 1.0 - xi.powi(stage as i32);
            let mut stage_steps: u64 = 0;
            loop {
                let unsatisfied = unsatisfied_of_group(
                    universe,
                    &warm.duals,
                    &warm.eligible,
                    &filtered,
                    &group_by_shard,
                    threshold,
                );
                if unsatisfied.is_empty() {
                    break;
                }
                debug_assert!(
                    stage_steps < step_cap,
                    "stage exceeded the Claim 5.2 step bound ({step_cap})"
                );
                if stage_steps >= step_cap {
                    break;
                }
                let strategy = derive_strategy(config, epoch, stage, stage_steps);
                let mis = sharded_mis(conflict, &unsatisfied, strategy, stats, scratch);
                let mut outgoing_messages = 0u64;
                for &d in &mis {
                    let pi = layering.critical(d);
                    let delta = warm.duals.raise(universe, d, pi);
                    if delta > 0.0 {
                        let record = &mut warm.records[d.index()];
                        record.network = universe.instance(d).network;
                        let per_edge = match warm.rule {
                            RaiseRule::Unit => delta,
                            RaiseRule::Narrow => 2.0 * pi.len() as f64 * delta,
                        };
                        // Accumulate per edge so a long-lived instance's
                        // record stays O(|π|) no matter how many repair
                        // epochs re-raise it; the point-clear subtracts
                        // the running total.
                        for &e in pi {
                            match record.beta.iter_mut().find(|(edge, _)| *edge == e) {
                                Some(entry) => entry.1 += per_edge,
                                None => record.beta.push((e, per_edge)),
                            }
                        }
                    }
                    outgoing_messages += conflict.degree(d) as u64;
                }
                raised += mis.len() as u64;
                stats.record_messages(outgoing_messages, layering.max_critical() as u64 + 1);
                stats.record_round();
                stack.push(mis);
                stage_steps += 1;
            }
            steps += stage_steps;
            max_steps_per_stage = max_steps_per_stage.max(stage_steps);
        }
    }
    (steps, max_steps_per_stage, raised)
}

/// Resumes the two-phase engine from a persisted [`WarmState`] after a
/// universe splice (see the [module docs](self)).
///
/// `rule` must match the state's rule; callers switching rules (the
/// serving layer when the live height mix changes class) must reset the
/// state with [`WarmState::new`] first. The state must have been
/// [spliced](WarmState::splice) through every universe delta since the
/// previous solve.
///
/// On a fresh (never-solved) state this executes exactly the cold
/// engine's step sequence and returns its exact output; on a primed state
/// it repairs only the pending dirty shards and re-certifies.
pub fn run_two_phase_warm_on(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
) -> Solution {
    config.validate().expect("invalid algorithm configuration");
    assert_eq!(
        rule, warm.rule,
        "warm state carries a different raise rule; reset it with WarmState::new"
    );
    assert_eq!(
        warm.records.len(),
        universe.num_instances(),
        "warm state missed a universe splice"
    );
    if universe.num_instances() == 0 {
        *warm = WarmState::new(universe, rule);
        return Solution::empty();
    }

    let fresh = !warm.primed;
    let mut active: Vec<bool> = if fresh {
        vec![true; universe.num_instances()]
    } else {
        let mut mask = vec![false; universe.num_instances()];
        for (t, &dirty) in warm.pending_dirty.iter().enumerate() {
            if dirty {
                for &d in universe.instances_on_network(NetworkId::new(t)) {
                    mask[d.index()] = true;
                }
            }
        }
        mask
    };

    let h_min = warm
        .rel_height
        .iter()
        .zip(&warm.eligible)
        .filter(|&(_, &e)| e)
        .map(|(&h, _)| h)
        .fold(1.0_f64, f64::min);
    let xi = stage_xi(rule, layering.max_critical().max(1), h_min);
    let stages = stages_per_epoch(xi, config.epsilon);
    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let step_cap = 4 * (profit_ratio.log2().ceil() as u64 + 4) + 32;

    let groups = layering.groups();
    let mut stats = RoundStats::new();
    let mut scratch = MisScratch::new(universe.num_instances());
    let mut new_stack: Vec<Vec<InstanceId>> = Vec::new();

    // ---------------- First phase: certificate repair ----------------
    let mut steps = 0u64;
    let mut max_steps_per_stage = 0u64;
    let mut raised = 0u64;
    let lambda_target = 1.0 - config.epsilon - 1e-6;
    for attempt in 0..2 {
        let (s, m, r) = repair_pass(
            universe,
            conflict,
            layering,
            config,
            warm,
            &active,
            &groups,
            stages,
            xi,
            step_cap,
            &mut stats,
            &mut scratch,
            &mut new_stack,
        );
        steps += s;
        max_steps_per_stage = max_steps_per_stage.max(m);
        raised += r;

        // Refresh the LHS cache exactly for everything this pass scanned.
        for d in universe.instance_ids().filter(|d| active[d.index()]) {
            warm.lhs[d.index()] = warm.duals.lhs(universe, d);
        }
        let lambda = cached_lambda(universe, warm);
        let all_active = active.iter().all(|&a| a);
        if lambda >= lambda_target || all_active || attempt == 1 {
            break;
        }
        // A clean shard's satisfaction regressed beyond what the dirty
        // bookkeeping predicted (should not happen — clean duals only
        // grow); repair everything before certifying.
        active = vec![true; universe.num_instances()];
    }

    // In debug builds, prove the LHS cache is a true lower bound.
    #[cfg(debug_assertions)]
    for d in universe.instance_ids() {
        let exact = warm.duals.lhs(universe, d);
        debug_assert!(
            warm.lhs[d.index()] <= exact + 1e-9 * (1.0 + exact.abs()),
            "LHS cache over-estimates instance {d}: cached {} > exact {exact}",
            warm.lhs[d.index()]
        );
    }

    let lambda = cached_lambda(universe, warm);
    let dual_objective = warm.duals.objective();

    // ---------------- Second phase: replay the full stack ----------------
    let mut stack = std::mem::take(&mut warm.stack);
    stack.append(&mut new_stack);
    let mut tracker = LoadTracker::new(universe);
    let mut selected: Vec<InstanceId> = Vec::new();
    for mis in stack.iter().rev() {
        let mut announced = 0u64;
        for &d in mis {
            if tracker.try_commit(universe, d) {
                selected.push(d);
                announced += conflict.degree(d) as u64;
            }
        }
        stats.record_messages(announced, 1);
        stats.record_round();
    }
    selected.sort_unstable();

    let mut raised_instances: Vec<InstanceId> = stack.iter().flatten().copied().collect();
    raised_instances.sort_unstable();
    raised_instances.dedup();

    warm.stack = stack;
    warm.pending_dirty.iter_mut().for_each(|d| *d = false);
    warm.primed = true;
    warm.epochs_resumed += 1;

    let profit = universe.total_profit(&selected);
    let solution = Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: groups.len(),
            stages_per_epoch: stages,
            steps,
            max_steps_per_stage,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
        },
    };

    // ---------------- Certificate check + safety valve ----------------
    let bound = approximation_bound(rule, layering.max_critical(), 1.0 - config.epsilon);
    let ratio = solution.certified_ratio().unwrap_or(1.0);
    let certified = solution.verify(universe).is_ok()
        && lambda >= lambda_target
        && ratio <= bound * (1.0 + 1e-9) + 1e-9;
    if !certified && !fresh {
        // The repaired certificate did not re-verify: fall back to a full
        // from-zero warm run, which reproduces the cold engine exactly.
        *warm = WarmState::new(universe, rule);
        return run_two_phase_warm_on(universe, conflict, layering, rule, config, warm);
    }
    debug_assert!(
        solution.verify(universe).is_ok(),
        "warm schedule failed feasibility verification"
    );
    debug_assert!(
        lambda >= lambda_target,
        "warm certificate slackness λ = {lambda} below 1 − ε"
    );
    debug_assert!(
        ratio <= bound * (1.0 + 1e-9) + 1e-9,
        "warm certified ratio {ratio} exceeds the {bound} guarantee"
    );
    solution
}

/// `λ` from the cached LHS lower bounds: `min` over eligible instances of
/// `LHS(d)/p(d)` (clamped exactly like the cold engine's certificate).
fn cached_lambda(universe: &DemandInstanceUniverse, warm: &WarmState) -> f64 {
    universe
        .instance_ids()
        .filter(|d| warm.eligible[d.index()])
        .map(|d| warm.lhs[d.index()] / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_two_phase_on;
    use netsched_graph::{ArrivingDemand, DemandId, EdgePath, LineProblem, NetworkId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line_universe(seed: u64, demands: usize) -> DemandInstanceUniverse {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(40, 3);
        let nets: Vec<NetworkId> = (0..3).map(NetworkId::new).collect();
        for _ in 0..demands {
            let len = rng.gen_range(2..=8u32);
            let release = rng.gen_range(0..=(40 - len));
            let slack = rng.gen_range(0..=(40 - release - len).min(3));
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..10.0),
                1.0,
                access,
            )
            .unwrap();
        }
        p.universe()
    }

    fn solve_pair(
        universe: &DemandInstanceUniverse,
        warm: &mut WarmState,
        config: &AlgorithmConfig,
    ) -> (Solution, Solution) {
        let conflict = ShardedConflictGraph::build(universe);
        let layering = InstanceLayering::line_length_classes(universe);
        let cold = run_two_phase_on(universe, &conflict, &layering, RaiseRule::Unit, config);
        let warm_sol = run_two_phase_warm_on(
            universe,
            &conflict,
            &layering,
            RaiseRule::Unit,
            config,
            warm,
        );
        (cold, warm_sol)
    }

    #[test]
    fn fresh_warm_run_reproduces_the_cold_engine_exactly() {
        let u = line_universe(3, 24);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        let (cold, warm_sol) = solve_pair(&u, &mut warm, &config);
        assert_eq!(cold.selected, warm_sol.selected);
        assert_eq!(cold.raised_instances, warm_sol.raised_instances);
        assert_eq!(cold.profit, warm_sol.profit);
        assert_eq!(cold.diagnostics.lambda, warm_sol.diagnostics.lambda);
        assert_eq!(
            cold.diagnostics.dual_objective,
            warm_sol.diagnostics.dual_objective
        );
        assert_eq!(cold.diagnostics.steps, warm_sol.diagnostics.steps);
        assert_eq!(warm.epochs_resumed(), 1);
    }

    #[test]
    fn spliced_state_repairs_the_certificate_after_churn() {
        let mut u = line_universe(7, 26);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);

        let mut delta = UniverseDelta::new();
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..6 {
            // Expire two random demands, admit one fresh arrival.
            let m = u.num_demands();
            let mut expired = vec![
                DemandId::new(rng.gen_range(0..m)),
                DemandId::new(rng.gen_range(0..m)),
            ];
            expired.sort_unstable();
            expired.dedup();
            let start = rng.gen_range(0..34u32);
            let arrival = ArrivingDemand {
                profit: rng.gen_range(1.0..10.0),
                height: 1.0,
                instances: vec![(
                    NetworkId::new(rng.gen_range(0..3)),
                    EdgePath::interval(start as usize, start as usize + 4),
                    Some(start),
                )],
            };
            u.apply_demand_delta(&expired, &[arrival], &mut delta);
            warm.splice(&u, &delta);

            let conflict = ShardedConflictGraph::build(&u);
            let layering = InstanceLayering::line_length_classes(&u);
            let sol = run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &config,
                &mut warm,
            );
            sol.verify(&u).unwrap();
            assert!(
                sol.diagnostics.lambda >= 0.9 - 1e-6,
                "round {round}: λ = {} below 1 − ε",
                sol.diagnostics.lambda
            );
            let bound = approximation_bound(RaiseRule::Unit, layering.max_critical(), 0.9);
            assert!(
                sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6,
                "round {round}: certified ratio exceeds the guarantee"
            );
        }
        assert_eq!(warm.epochs_resumed(), 7);
    }

    #[test]
    fn expiring_everything_clears_the_dual_objective() {
        let mut u = line_universe(13, 15);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);
        assert!(warm.duals().objective() > 0.0);

        let everyone: Vec<DemandId> = (0..u.num_demands()).map(DemandId::new).collect();
        let mut delta = UniverseDelta::new();
        u.apply_demand_delta(&everyone, &[], &mut delta);
        warm.splice(&u, &delta);
        // All α dropped, all recorded β point-cleared: the objective is
        // (numerically) zero again.
        assert!(
            warm.duals().objective().abs() < 1e-9,
            "stale dual mass survived the splice: {}",
            warm.duals().objective()
        );
    }

    #[test]
    fn rule_mismatch_panics() {
        let u = line_universe(1, 5);
        let conflict = ShardedConflictGraph::build(&u);
        let layering = InstanceLayering::line_length_classes(&u);
        let mut warm = WarmState::new(&u, RaiseRule::Narrow);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &AlgorithmConfig::deterministic(0.1),
                &mut warm,
            )
        }));
        assert!(result.is_err());
    }
}
