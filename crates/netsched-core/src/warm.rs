//! Warm-started incremental re-solve with certificate repair.
//!
//! The paper's approximation guarantee is carried by the **dual
//! certificate** (Lemma 3.1 / 6.1), not by any particular execution order
//! of the first phase: weak duality holds for *any* non-negative dual
//! assignment, scaled by the worst satisfaction slackness `λ` over the
//! eligible instances. That freedom is what this module exploits. Instead
//! of re-running the two-phase engine from zero duals after every demand
//! splice, a [`WarmState`] persists
//!
//! * the [`DualState`] of the previous solve,
//! * per-instance **raise records** (the exact `β` amounts each instance's
//!   raises added, so an expiring demand's contributions can be cleared
//!   out point by point — the "Fenwick point-clears"),
//! * the surviving first-phase **stack** (the selection seed the second
//!   phase replays), and
//! * cached eligibility / relative heights / constraint-LHS lower bounds.
//!
//! [`WarmState::splice`] follows a universe splice: expired instances'
//! `β` contributions are subtracted, expired demands' `α` variables are
//! dropped, and every per-instance vector is renumbered through the
//! [`UniverseDelta`] id maps. [`run_two_phase_warm_on`] then **repairs**
//! the certificate: only the instances of *dirty* networks (the networks
//! the splices touched since the last solve) can have lost satisfaction —
//! a clean network's `β` range sums are untouched and `α` variables only
//! ever grow — so the MIS/raise loop re-runs over the dirty shards alone,
//! until every eligible instance is `(1 − ε)`-satisfied again. The second
//! phase replays the whole stack (surviving seed + repair MISes, newest
//! first), exactly like a cold run's stack pop.
//!
//! # The relaxed equivalence contract
//!
//! A warm re-solve is **certificate-equivalent**, not byte-equivalent, to
//! a cold solve: the schedule may differ, but every epoch's certificate
//! must verify (`λ ≥ 1 − ε`, feasible schedule) and the certified ratio
//! must stay within the solver's worst-case guarantee. Both are checked
//! in-engine: in debug builds they are asserted outright; in all builds a
//! failed check triggers the safety valve — the state is reset and the
//! solve re-runs from zero duals over all shards, which reproduces the
//! cold engine's output exactly (a fresh [`WarmState`] with every shard
//! dirty executes the identical step sequence as
//! [`run_two_phase_on`](crate::run_two_phase_on)).

use crate::budget::{Budget, CertificateQuality};
use crate::config::{approximation_bound, stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
use crate::duals::DualState;
use crate::framework::{derive_strategy, replay_stack, unsatisfied_of_group};
use crate::solution::{RunDiagnostics, Solution};
use netsched_decomp::InstanceLayering;
use netsched_distrib::{sharded_mis, MisScratch, RoundStats, ShardedConflictGraph};
use netsched_graph::{DemandInstanceUniverse, EdgeId, InstanceId, NetworkId, UniverseDelta, EPS};
use netsched_workloads::json::{FromJson, JsonValue, ToJson};

/// Linked-arena sentinel: "no entry".
const NIL: u32 = u32::MAX;

/// The persisted solver state a warm re-solve resumes from; see the
/// [module docs](self).
///
/// # Memory layout
///
/// The raise records and the replay stack — the two structures that used
/// to be vectors-of-vectors — live in flat SoA arenas keyed by `u32`
/// indices:
///
/// * **Raise records**: per-instance columns `rec_network` / `rec_head` /
///   `rec_tail` point into a shared `(beta_edge, beta_amount, beta_next)`
///   linked arena. Appending a raise entry reuses a freelist slot, so
///   steady-state repair epochs never allocate; an expiring instance's
///   chain is point-cleared and returned to the freelist.
/// * **Replay stack**: `stack_items` + `stack_offsets` (one `[start, end)`
///   range per MIS, oldest first). Splices compact both in place.
#[derive(Debug, Clone)]
pub struct WarmState {
    rule: RaiseRule,
    duals: DualState,
    /// Per instance: the network its recorded raises live on.
    rec_network: Vec<NetworkId>,
    /// Per instance: head of its `β` entry chain in the arena (`NIL` =
    /// no recorded raises).
    rec_head: Vec<u32>,
    /// Per instance: tail of its chain (appends preserve insertion order,
    /// so point-clears subtract in exactly the order raises accumulated).
    rec_tail: Vec<u32>,
    /// Arena column: the edge of each `β` entry.
    beta_edge: Vec<EdgeId>,
    /// Arena column: the accumulated amount of each `β` entry.
    beta_amount: Vec<f64>,
    /// Arena column: next entry of the owning chain (`NIL` = end); doubles
    /// as the freelist link for dead slots.
    beta_next: Vec<u32>,
    /// Head of the arena freelist (`NIL` = arena is dense).
    free_head: u32,
    /// The surviving first-phase stack, flattened (oldest MIS first) — the
    /// selection seed the second phase replays.
    stack_items: Vec<InstanceId>,
    /// MIS `m` of the stack is `stack_items[stack_offsets[m] ..
    /// stack_offsets[m + 1]]`.
    stack_offsets: Vec<u32>,
    /// Splice scratch: newest-occurrence marks (per new instance id).
    seen: Vec<bool>,
    /// Splice scratch: per stack item, survives-the-splice flag.
    keep: Vec<bool>,
    /// Per-instance lower bound on the constraint LHS, exact as of the
    /// instance's last visit by a repair pass (later raises only grow the
    /// true LHS, so the cache never over-estimates).
    lhs: Vec<f64>,
    /// Cached eligibility (static per instance: heights and capacities
    /// never change after admission).
    eligible: Vec<bool>,
    /// Cached maximum relative height `ĥ(d)` (static per instance).
    rel_height: Vec<f64>,
    /// Networks whose duals were perturbed by splices since the last
    /// completed warm solve.
    pending_dirty: Vec<bool>,
    /// Per-network minimum of `LHS(d)/p(d)` over eligible instances
    /// (`+∞` for a network with none), mirroring the cached LHS values.
    /// Folding these `num_networks` entries yields the certificate's `λ`
    /// bit-for-bit equal to the full `O(|D|)` scan (`f64::min` is exact,
    /// associative and commutative), so certification after a repair is
    /// `O(dirty shards + num_networks)`: clean networks' entries stay valid
    /// across splices because a clean network's instance membership and
    /// cached LHS entries are untouched.
    shard_min: Vec<f64>,
    /// `false` until a warm solve has completed on this state; a fresh
    /// state repairs every shard, which reproduces the cold engine.
    primed: bool,
    /// Warm solves completed on this state (telemetry).
    epochs_resumed: u64,
}

impl WarmState {
    /// A fresh state over a universe: zero duals, empty stack, every shard
    /// pending. The first [`run_two_phase_warm_on`] on a fresh state is
    /// step-for-step identical to the cold engine.
    pub fn new(universe: &DemandInstanceUniverse, rule: RaiseRule) -> Self {
        let n = universe.num_instances();
        let rel_height: Vec<f64> = universe
            .instance_ids()
            .map(|d| DualState::max_relative_height(universe, d))
            .collect();
        let eligible = rel_height.iter().map(|&h| h <= 1.0 + EPS).collect();
        let mut state = Self {
            rule,
            duals: DualState::new(universe, rule),
            rec_network: vec![NetworkId::new(0); n],
            rec_head: vec![NIL; n],
            rec_tail: vec![NIL; n],
            beta_edge: Vec::new(),
            beta_amount: Vec::new(),
            beta_next: Vec::new(),
            free_head: NIL,
            stack_items: Vec::new(),
            stack_offsets: vec![0],
            seen: Vec::new(),
            keep: Vec::new(),
            lhs: vec![0.0; n],
            eligible,
            rel_height,
            pending_dirty: vec![false; universe.num_networks()],
            shard_min: vec![f64::INFINITY; universe.num_networks()],
            primed: false,
            epochs_resumed: 0,
        };
        for t in 0..universe.num_networks() {
            state.recompute_shard_min(universe, NetworkId::new(t));
        }
        state
    }

    /// The raise rule this state resumes.
    #[inline]
    pub fn rule(&self) -> RaiseRule {
        self.rule
    }

    /// Warm solves completed on this state so far.
    #[inline]
    pub fn epochs_resumed(&self) -> u64 {
        self.epochs_resumed
    }

    /// The persisted dual assignment (read-only; certification telemetry).
    #[inline]
    pub fn duals(&self) -> &DualState {
        &self.duals
    }

    /// Total instance entries across the persisted first-phase stack — the
    /// replay cost the second phase pays every epoch. Lifecycle policies
    /// reset states whose stack mass has grown far beyond the live
    /// instance count (a cold re-epoch is certificate-safe by
    /// construction).
    #[inline]
    pub fn stack_mass(&self) -> usize {
        self.stack_items.len()
    }

    /// The number of instances this state tracks (one record per
    /// instance of the spliced universe).
    #[inline]
    fn instance_count(&self) -> usize {
        self.rec_head.len()
    }

    /// MIS sets on the persisted replay stack.
    #[inline]
    fn num_mises(&self) -> usize {
        self.stack_offsets.len() - 1
    }

    /// MIS `m` of the replay stack (oldest first).
    #[inline]
    fn mis(&self, m: usize) -> &[InstanceId] {
        &self.stack_items[self.stack_offsets[m] as usize..self.stack_offsets[m + 1] as usize]
    }

    /// Appends one MIS to the replay stack (no per-MIS allocation once
    /// the flat arena has warmed up).
    #[inline]
    fn push_mis(&mut self, mis: &[InstanceId]) {
        self.stack_items.extend_from_slice(mis);
        self.stack_offsets.push(self.stack_items.len() as u32);
    }

    /// Allocates one `β` arena slot (freelist first, then growth).
    fn alloc_beta(&mut self, edge: EdgeId, amount: f64) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.beta_next[slot as usize];
            self.beta_edge[slot as usize] = edge;
            self.beta_amount[slot as usize] = amount;
            self.beta_next[slot as usize] = NIL;
            slot
        } else {
            let slot = self.beta_edge.len() as u32;
            self.beta_edge.push(edge);
            self.beta_amount.push(amount);
            self.beta_next.push(NIL);
            slot
        }
    }

    /// Accumulates a raise of `per_edge` on every edge of `pi` into
    /// instance `d`'s record chain, so a long-lived instance's record
    /// stays `O(|π|)` no matter how many repair epochs re-raise it; the
    /// point-clear subtracts the running totals.
    fn record_raise(&mut self, d: InstanceId, network: NetworkId, pi: &[EdgeId], per_edge: f64) {
        self.rec_network[d.index()] = network;
        'edges: for &e in pi {
            let mut cur = self.rec_head[d.index()];
            while cur != NIL {
                if self.beta_edge[cur as usize] == e {
                    self.beta_amount[cur as usize] += per_edge;
                    continue 'edges;
                }
                cur = self.beta_next[cur as usize];
            }
            let slot = self.alloc_beta(e, per_edge);
            match self.rec_tail[d.index()] {
                NIL => self.rec_head[d.index()] = slot,
                tail => self.beta_next[tail as usize] = slot,
            }
            self.rec_tail[d.index()] = slot;
        }
    }

    /// Heap bytes currently committed by this state's arenas and caches
    /// (capacities, not lengths) — the serving tier's bytes/demand audit.
    pub fn committed_bytes(&self) -> usize {
        use std::mem::size_of;
        self.duals.committed_bytes()
            + self.rec_network.capacity() * size_of::<NetworkId>()
            + (self.rec_head.capacity() + self.rec_tail.capacity()) * size_of::<u32>()
            + self.beta_edge.capacity() * size_of::<EdgeId>()
            + self.beta_amount.capacity() * size_of::<f64>()
            + self.beta_next.capacity() * size_of::<u32>()
            + self.stack_items.capacity() * size_of::<InstanceId>()
            + self.stack_offsets.capacity() * size_of::<u32>()
            + self.seen.capacity()
            + self.keep.capacity()
            + (self.lhs.capacity() + self.rel_height.capacity() + self.shard_min.capacity())
                * size_of::<f64>()
            + self.eligible.capacity()
            + self.pending_dirty.capacity()
    }

    /// Recomputes one network's λ minimum from the cached LHS values.
    fn recompute_shard_min(&mut self, universe: &DemandInstanceUniverse, network: NetworkId) {
        self.shard_min[network.index()] = universe
            .instances_on_network(network)
            .iter()
            .copied()
            .filter(|d| self.eligible[d.index()])
            .map(|d| self.lhs[d.index()] / universe.profit(d))
            .fold(f64::INFINITY, f64::min);
    }

    /// The certificate's `λ` from the per-network minima: bit-for-bit equal
    /// to the full cached-LHS scan ([`cached_lambda`]), in
    /// `O(num_networks)`.
    fn shard_lambda(&self) -> f64 {
        self.shard_min
            .iter()
            .copied()
            .fold(1.0_f64, f64::min)
            .max(EPS)
    }

    /// Checks a deserialized state's dimensions against a universe; see
    /// [`DualState::validate_shape`] for the dual-side checks.
    pub fn validate_shape(&self, universe: &DemandInstanceUniverse) -> Result<(), String> {
        let n = universe.num_instances();
        if self.instance_count() != n {
            return Err(format!(
                "warm state has {} instance records, universe has {n} instances",
                self.instance_count()
            ));
        }
        if self.pending_dirty.len() != universe.num_networks() {
            return Err(format!(
                "warm state has {} networks, universe has {}",
                self.pending_dirty.len(),
                universe.num_networks()
            ));
        }
        for network in &self.rec_network {
            if network.index() >= universe.num_networks() {
                return Err(format!(
                    "raise record names network {} of a {}-network universe",
                    network.index(),
                    universe.num_networks()
                ));
            }
        }
        for &d in &self.stack_items {
            if d.index() >= n {
                return Err(format!(
                    "stack names instance {} of a {n}-instance universe",
                    d.index()
                ));
            }
        }
        self.duals.validate_shape(universe)
    }

    /// Splices one universe delta through the persisted state. Must be
    /// called **after** the universe splice, with the same
    /// [`UniverseDelta`], exactly once per splice:
    ///
    /// 1. every removed instance's recorded `β` contributions are
    ///    subtracted from the Fenwick trees (point-clears),
    /// 2. expired demands' `α` variables are dropped and survivors
    ///    compacted through the demand id map,
    /// 3. the per-instance vectors (records, LHS cache, eligibility,
    ///    relative heights) renumber through the instance id map, with the
    ///    arrivals' entries freshly computed,
    /// 4. the stack renumbers likewise (expired members drop out; only the
    ///    newest occurrence of a re-raised instance is kept — an older
    ///    duplicate below a newer one can never commit in the second
    ///    phase, since tracker loads only grow), and
    /// 5. the delta's dirty networks accumulate into the pending set the
    ///    next repair consumes.
    pub fn splice(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        assert_eq!(
            delta.old_num_instances(),
            self.instance_count(),
            "warm state spliced against a delta of a different universe"
        );
        let n_new = universe.num_instances();
        let first_added = delta.first_added();
        let remap = delta.instance_remap();
        // Survivors form a prefix of the new id space; no removals means
        // the remap is the identity on everything that existed before.
        let has_removals = first_added < delta.old_num_instances();

        if has_removals {
            // 1. Point-clear the removed instances' β contributions and
            //    return their chains to the freelist. The chain walks from
            //    head to tail, so the subtracts happen in exactly the order
            //    the raises accumulated — the float behavior of the old
            //    per-record vector is preserved bit for bit.
            for old in delta.removed_instances() {
                let network = self.rec_network[old.index()];
                let mut cur = self.rec_head[old.index()];
                while cur != NIL {
                    let next = self.beta_next[cur as usize];
                    self.duals.subtract_beta(
                        universe,
                        network,
                        self.beta_edge[cur as usize],
                        self.beta_amount[cur as usize],
                    );
                    self.beta_next[cur as usize] = self.free_head;
                    self.free_head = cur;
                    cur = next;
                }
            }
        }

        // 2. Compact α through the demand renumbering.
        self.duals
            .compact_alpha(delta.demand_remap(), universe.num_demands());

        // 3. Renumber the per-instance columns in place. The remap is
        //    monotone on survivors (new ≤ old), so a single forward pass
        //    compacts every column without scratch; arrivals then extend
        //    the columns with fresh entries.
        if has_removals {
            for (old, &new) in remap.iter().enumerate() {
                if new == u32::MAX {
                    continue;
                }
                let new = new as usize;
                self.rec_network[new] = self.rec_network[old];
                self.rec_head[new] = self.rec_head[old];
                self.rec_tail[new] = self.rec_tail[old];
                self.lhs[new] = self.lhs[old];
                self.eligible[new] = self.eligible[old];
                self.rel_height[new] = self.rel_height[old];
            }
        }
        self.rec_network.truncate(first_added);
        self.rec_network.resize(n_new, NetworkId::new(0));
        self.rec_head.truncate(first_added);
        self.rec_head.resize(n_new, NIL);
        self.rec_tail.truncate(first_added);
        self.rec_tail.resize(n_new, NIL);
        self.lhs.truncate(first_added);
        self.lhs.resize(n_new, 0.0);
        self.eligible.truncate(first_added);
        self.eligible.resize(n_new, false);
        self.rel_height.truncate(first_added);
        self.rel_height.resize(n_new, 0.0);
        for d in first_added..n_new {
            let rel = DualState::max_relative_height(universe, InstanceId::new(d));
            self.rel_height[d] = rel;
            self.eligible[d] = rel <= 1.0 + EPS;
        }

        // 4. Renumber the stack, keeping only the newest occurrence (an
        //    older duplicate below a newer one can never commit in the
        //    second phase, since tracker loads only grow). Pass one walks
        //    newest → oldest marking keepers; pass two compacts forward in
        //    place (the write cursor never passes the read cursor).
        self.seen.clear();
        self.seen.resize(n_new, false);
        self.keep.clear();
        self.keep.resize(self.stack_items.len(), false);
        let num_mises = self.num_mises();
        for m in (0..num_mises).rev() {
            for i in self.stack_offsets[m] as usize..self.stack_offsets[m + 1] as usize {
                let new = remap[self.stack_items[i].index()];
                if new != u32::MAX && !self.seen[new as usize] {
                    self.seen[new as usize] = true;
                    self.keep[i] = true;
                }
            }
        }
        let mut iw = 0usize;
        let mut ow = 0usize;
        for m in 0..num_mises {
            let (s, e) = (
                self.stack_offsets[m] as usize,
                self.stack_offsets[m + 1] as usize,
            );
            let start_iw = iw;
            for i in s..e {
                if self.keep[i] {
                    self.stack_items[iw] =
                        InstanceId::new(remap[self.stack_items[i].index()] as usize);
                    iw += 1;
                }
            }
            if iw > start_iw {
                self.stack_offsets[ow] = start_iw as u32;
                ow += 1;
            }
        }
        self.stack_offsets[ow] = iw as u32;
        self.stack_offsets.truncate(ow + 1);
        self.stack_items.truncate(iw);

        // 5. Accumulate the dirt for the next repair.
        for (pending, &dirty) in self.pending_dirty.iter_mut().zip(delta.dirty()) {
            *pending |= dirty;
        }
    }
}

impl ToJson for WarmState {
    fn to_json(&self) -> JsonValue {
        let records = (0..self.instance_count())
            .map(|d| {
                let mut beta = Vec::new();
                let mut cur = self.rec_head[d];
                while cur != NIL {
                    beta.push(JsonValue::Array(vec![
                        JsonValue::int(self.beta_edge[cur as usize].index()),
                        JsonValue::num(self.beta_amount[cur as usize]),
                    ]));
                    cur = self.beta_next[cur as usize];
                }
                JsonValue::object(vec![
                    ("network", JsonValue::int(self.rec_network[d].index())),
                    ("beta", JsonValue::Array(beta)),
                ])
            })
            .collect();
        let stack = (0..self.num_mises())
            .map(|m| {
                JsonValue::Array(
                    self.mis(m)
                        .iter()
                        .map(|d| JsonValue::int(d.index()))
                        .collect(),
                )
            })
            .collect();
        // `+∞` (a network with no eligible instances) is not a JSON number;
        // it travels as `null`.
        let shard_min = self
            .shard_min
            .iter()
            .map(|&x| {
                if x.is_finite() {
                    JsonValue::num(x)
                } else {
                    JsonValue::Null
                }
            })
            .collect();
        JsonValue::object(vec![
            ("rule", self.rule.to_json()),
            ("duals", self.duals.to_json()),
            ("records", JsonValue::Array(records)),
            ("stack", JsonValue::Array(stack)),
            (
                "lhs",
                JsonValue::Array(self.lhs.iter().map(|&x| JsonValue::num(x)).collect()),
            ),
            (
                "eligible",
                JsonValue::Array(self.eligible.iter().map(|&b| JsonValue::Bool(b)).collect()),
            ),
            (
                "rel_height",
                JsonValue::Array(self.rel_height.iter().map(|&x| JsonValue::num(x)).collect()),
            ),
            (
                "pending_dirty",
                JsonValue::Array(
                    self.pending_dirty
                        .iter()
                        .map(|&b| JsonValue::Bool(b))
                        .collect(),
                ),
            ),
            ("shard_min", JsonValue::Array(shard_min)),
            ("primed", JsonValue::Bool(self.primed)),
            ("epochs_resumed", JsonValue::u64_value(self.epochs_resumed)),
        ])
    }
}

fn bool_from_json(value: &JsonValue) -> Result<bool, String> {
    match value {
        JsonValue::Bool(b) => Ok(*b),
        other => Err(format!("expected a boolean, got {}", other.render())),
    }
}

impl FromJson for WarmState {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let record_rows = value.field("records")?.as_array()?;
        let mut rec_network = Vec::with_capacity(record_rows.len());
        let mut rec_head = Vec::with_capacity(record_rows.len());
        let mut rec_tail = Vec::with_capacity(record_rows.len());
        let mut beta_edge = Vec::new();
        let mut beta_amount = Vec::new();
        let mut beta_next = Vec::new();
        for r in record_rows {
            rec_network.push(NetworkId::new(r.field("network")?.as_usize()?));
            let mut head = NIL;
            let mut tail = NIL;
            for pair in r.field("beta")?.as_array()? {
                let pair = pair.as_array()?;
                if pair.len() != 2 {
                    return Err("raise record entries are [edge, amount] pairs".into());
                }
                let slot = beta_edge.len() as u32;
                beta_edge.push(EdgeId::new(pair[0].as_usize()?));
                beta_amount.push(pair[1].as_f64()?);
                beta_next.push(NIL);
                match tail {
                    NIL => head = slot,
                    t => beta_next[t as usize] = slot,
                }
                tail = slot;
            }
            rec_head.push(head);
            rec_tail.push(tail);
        }
        let mut stack_items = Vec::new();
        let mut stack_offsets = vec![0u32];
        for mis in value.field("stack")?.as_array()? {
            for d in mis.as_array()? {
                stack_items.push(InstanceId::new(d.as_usize()?));
            }
            stack_offsets.push(stack_items.len() as u32);
        }
        let floats = |name: &str| -> Result<Vec<f64>, String> {
            value
                .field(name)?
                .as_array()?
                .iter()
                .map(JsonValue::as_f64)
                .collect()
        };
        let bools = |name: &str| -> Result<Vec<bool>, String> {
            value
                .field(name)?
                .as_array()?
                .iter()
                .map(bool_from_json)
                .collect()
        };
        let shard_min = value
            .field("shard_min")?
            .as_array()?
            .iter()
            .map(|x| match x {
                JsonValue::Null => Ok(f64::INFINITY),
                other => other.as_f64(),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let state = Self {
            rule: RaiseRule::from_json(value.field("rule")?)?,
            duals: DualState::from_json(value.field("duals")?)?,
            rec_network,
            rec_head,
            rec_tail,
            beta_edge,
            beta_amount,
            beta_next,
            free_head: NIL,
            stack_items,
            stack_offsets,
            seen: Vec::new(),
            keep: Vec::new(),
            lhs: floats("lhs")?,
            eligible: bools("eligible")?,
            rel_height: floats("rel_height")?,
            pending_dirty: bools("pending_dirty")?,
            shard_min,
            primed: bool_from_json(value.field("primed")?)?,
            epochs_resumed: value.field("epochs_resumed")?.as_u64()?,
        };
        let n = state.instance_count();
        if state.lhs.len() != n || state.eligible.len() != n || state.rel_height.len() != n {
            return Err("per-instance vectors disagree on the instance count".into());
        }
        if state.shard_min.len() != state.pending_dirty.len() {
            return Err("per-network vectors disagree on the network count".into());
        }
        Ok(state)
    }
}

/// What one repair pass did, and where a [`Budget`] cut it (if it did).
struct PassOutcome {
    steps: u64,
    max_steps_per_stage: u64,
    raised: u64,
    /// `true` when the budget cut the pass before it drained every stage.
    cut: bool,
    /// First-phase (group × stage) slots not yet drained at the cut.
    rounds_left: u64,
}

/// One repair pass over the active instances: the cold engine's
/// group × stage × step loop, restricted to `active` and checked against
/// `budget` before every MIS/raise round. Appends the new MIS sets
/// directly to `warm`'s replay stack.
#[allow(clippy::too_many_arguments)]
fn repair_pass(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
    active: &[bool],
    groups: &[Vec<InstanceId>],
    stages: usize,
    xi: f64,
    step_cap: u64,
    budget: &Budget,
    stats: &mut RoundStats,
    scratch: &mut MisScratch,
) -> PassOutcome {
    let sharding = conflict.sharding();
    let mut steps: u64 = 0;
    let mut max_steps_per_stage: u64 = 0;
    let mut raised: u64 = 0;
    let total_slots = (groups.len() * stages) as u64;
    let mut completed_slots: u64 = 0;
    let mut cut = false;
    'groups: for (epoch, group) in groups.iter().enumerate() {
        let filtered: Vec<InstanceId> = group
            .iter()
            .copied()
            .filter(|d| active[d.index()])
            .collect();
        if filtered.is_empty() {
            // Nothing to repair in this group: its slots count as drained.
            completed_slots += stages as u64;
            continue;
        }
        let mut group_by_shard: Vec<Vec<u32>> = vec![Vec::new(); conflict.num_shards()];
        for (i, &d) in filtered.iter().enumerate() {
            group_by_shard[sharding.shard_of(d).index()].push(i as u32);
        }
        for stage in 1..=stages {
            let threshold = 1.0 - xi.powi(stage as i32);
            let mut stage_steps: u64 = 0;
            loop {
                let unsatisfied = unsatisfied_of_group(
                    universe,
                    &warm.duals,
                    &warm.eligible,
                    &filtered,
                    &group_by_shard,
                    threshold,
                );
                if unsatisfied.is_empty() {
                    break;
                }
                debug_assert!(
                    stage_steps < step_cap,
                    "stage exceeded the Claim 5.2 step bound ({step_cap})"
                );
                if stage_steps >= step_cap {
                    break;
                }
                if !budget.consume_round() {
                    cut = true;
                    steps += stage_steps;
                    max_steps_per_stage = max_steps_per_stage.max(stage_steps);
                    break 'groups;
                }
                let strategy = derive_strategy(config, epoch, stage, stage_steps);
                let mis = sharded_mis(conflict, &unsatisfied, strategy, stats, scratch);
                let mut outgoing_messages = 0u64;
                for &d in &mis {
                    let pi = layering.critical(d);
                    let delta = warm.duals.raise(universe, d, pi);
                    if delta > 0.0 {
                        let per_edge = match warm.rule {
                            RaiseRule::Unit => delta,
                            RaiseRule::Narrow => 2.0 * pi.len() as f64 * delta,
                        };
                        warm.record_raise(d, universe.instance(d).network, pi, per_edge);
                    }
                    outgoing_messages += conflict.degree(d) as u64;
                }
                raised += mis.len() as u64;
                stats.record_messages(outgoing_messages, layering.max_critical() as u64 + 1);
                stats.record_round();
                warm.push_mis(&mis);
                stage_steps += 1;
            }
            steps += stage_steps;
            max_steps_per_stage = max_steps_per_stage.max(stage_steps);
            completed_slots += 1;
        }
    }
    PassOutcome {
        steps,
        max_steps_per_stage,
        raised,
        cut,
        rounds_left: total_slots - completed_slots,
    }
}

/// Resumes the two-phase engine from a persisted [`WarmState`] after a
/// universe splice (see the [module docs](self)).
///
/// `rule` must match the state's rule; callers switching rules (the
/// serving layer when the live height mix changes class) must reset the
/// state with [`WarmState::new`] first. The state must have been
/// [spliced](WarmState::splice) through every universe delta since the
/// previous solve.
///
/// On a fresh (never-solved) state this executes exactly the cold
/// engine's step sequence and returns its exact output; on a primed state
/// it repairs only the pending dirty shards and re-certifies.
pub fn run_two_phase_warm_on(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
) -> Solution {
    run_two_phase_warm_on_budgeted(
        universe,
        conflict,
        layering,
        rule,
        config,
        warm,
        &Budget::unlimited(),
    )
}

/// [`run_two_phase_warm_on`] under a cooperative [`Budget`]: the repair
/// loop checks the budget before every MIS/raise round and cuts when it
/// is exhausted. On a cut the certificate is re-derived from the
/// per-network λ minima cache over everything the pass scanned — a valid
/// (if weaker) bound by weak duality — the solution is tagged
/// [`CertificateQuality::Truncated`], and the **unfinished repair work is
/// carried forward**: the scanned networks stay pending-dirty in `warm`,
/// so an un-budgeted follow-up solve resumes the repair and reconverges
/// to full certification. The in-engine certificate check and safety
/// valve only apply to full (uncut) runs.
#[allow(clippy::too_many_arguments)]
pub fn run_two_phase_warm_on_budgeted(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
    budget: &Budget,
) -> Solution {
    // `None` overlap takes the exact single-threaded path — no scope, no
    // spawn — so this entry point is bit-for-bit the pre-pipelining one.
    warm_impl(
        universe,
        conflict,
        layering,
        rule,
        config,
        warm,
        budget,
        None::<fn()>,
    )
    .0
}

/// The warm engine's **pipelined phase boundary**:
/// [`run_two_phase_warm_on_budgeted`] that additionally runs `overlap` on
/// a scoped thread **concurrently with the second-phase stack replay**,
/// returning the solution together with the closure's result.
///
/// The second phase reads only the frozen first-phase output (the MIS
/// stack arena) plus the immutable universe/conflict structures
/// ([`replay_stack`](crate::framework) — factored so the boundary is a
/// function call, not a convention), so any `overlap` work that touches
/// *neither the warm state nor this solve's universe/conflict/layering*
/// is sound to interleave. The serving tier uses this to pre-materialize
/// the **next** epoch's arrival instances (which read only the immutable
/// base topology) while the current epoch replays — the "rebuild of
/// epoch N+1 under replay of epoch N" half of the pipelined serving
/// design. The closure runs exactly once, even when the first phase was
/// budget-cut; a panic inside it propagates after the replay finishes.
#[allow(clippy::too_many_arguments)]
pub fn run_two_phase_warm_overlapped<R: Send>(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
    budget: &Budget,
    overlap: impl FnOnce() -> R + Send,
) -> (Solution, R) {
    let (solution, extra) = warm_impl(
        universe,
        conflict,
        layering,
        rule,
        config,
        warm,
        budget,
        Some(overlap),
    );
    (solution, extra.expect("overlap closure runs exactly once"))
}

#[allow(clippy::too_many_arguments)]
fn warm_impl<R: Send>(
    universe: &DemandInstanceUniverse,
    conflict: &ShardedConflictGraph,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
    warm: &mut WarmState,
    budget: &Budget,
    overlap: Option<impl FnOnce() -> R + Send>,
) -> (Solution, Option<R>) {
    config.validate().expect("invalid algorithm configuration");
    assert_eq!(
        rule, warm.rule,
        "warm state carries a different raise rule; reset it with WarmState::new"
    );
    assert_eq!(
        warm.instance_count(),
        universe.num_instances(),
        "warm state missed a universe splice"
    );
    if universe.num_instances() == 0 {
        *warm = WarmState::new(universe, rule);
        // The overlap contract holds even for degenerate solves: the
        // closure runs exactly once (inline — there is no replay to hide
        // it behind).
        return (Solution::empty(), overlap.map(|f| f()));
    }

    let fresh = !warm.primed;
    let mut active_networks: Vec<bool> = if fresh {
        vec![true; universe.num_networks()]
    } else {
        warm.pending_dirty.clone()
    };
    let mut active: Vec<bool> = if fresh {
        vec![true; universe.num_instances()]
    } else {
        let mut mask = vec![false; universe.num_instances()];
        for (t, &dirty) in warm.pending_dirty.iter().enumerate() {
            if dirty {
                for &d in universe.instances_on_network(NetworkId::new(t)) {
                    mask[d.index()] = true;
                }
            }
        }
        mask
    };

    let h_min = warm
        .rel_height
        .iter()
        .zip(&warm.eligible)
        .filter(|&(_, &e)| e)
        .map(|(&h, _)| h)
        .fold(1.0_f64, f64::min);
    let xi = stage_xi(rule, layering.max_critical().max(1), h_min);
    let stages = stages_per_epoch(xi, config.epsilon);
    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let step_cap = 4 * (profit_ratio.log2().ceil() as u64 + 4) + 32;

    let groups = layering.groups();
    let mut stats = RoundStats::new();
    let mut scratch = MisScratch::new(universe.num_instances());

    // ---------------- First phase: certificate repair ----------------
    let mut steps = 0u64;
    let mut max_steps_per_stage = 0u64;
    let mut raised = 0u64;
    let lambda_target = 1.0 - config.epsilon - 1e-6;
    let mut truncated: Option<u64> = None;
    for attempt in 0..2 {
        let pass = repair_pass(
            universe,
            conflict,
            layering,
            config,
            warm,
            &active,
            &groups,
            stages,
            xi,
            step_cap,
            budget,
            &mut stats,
            &mut scratch,
        );
        steps += pass.steps;
        max_steps_per_stage = max_steps_per_stage.max(pass.max_steps_per_stage);
        raised += pass.raised;

        // Refresh the LHS cache exactly for everything this pass scanned,
        // then fold the scanned networks' λ minima from it.
        for d in universe.instance_ids().filter(|d| active[d.index()]) {
            warm.lhs[d.index()] = warm.duals.lhs(universe, d);
        }
        for (t, &scanned) in active_networks.iter().enumerate() {
            if scanned {
                warm.recompute_shard_min(universe, NetworkId::new(t));
            }
        }
        let lambda = warm.shard_lambda();
        debug_assert_eq!(
            lambda.to_bits(),
            cached_lambda(universe, warm).to_bits(),
            "per-network λ minima diverged from the full cached-LHS scan"
        );
        if pass.cut {
            // Budget exhausted mid-repair: certify from the (just
            // refreshed) per-network minima cache and stop here — the
            // schedule is feasible and the bound valid either way.
            truncated = Some(pass.rounds_left);
            break;
        }
        let all_active = active.iter().all(|&a| a);
        if lambda >= lambda_target || all_active || attempt == 1 {
            break;
        }
        // A clean shard's satisfaction regressed beyond what the dirty
        // bookkeeping predicted (should not happen — clean duals only
        // grow); repair everything before certifying.
        active = vec![true; universe.num_instances()];
        active_networks = vec![true; universe.num_networks()];
    }

    // In debug builds, prove the LHS cache is a true lower bound.
    #[cfg(debug_assertions)]
    for d in universe.instance_ids() {
        let exact = warm.duals.lhs(universe, d);
        debug_assert!(
            warm.lhs[d.index()] <= exact + 1e-9 * (1.0 + exact.abs()),
            "LHS cache over-estimates instance {d}: cached {} > exact {exact}",
            warm.lhs[d.index()]
        );
    }

    let lambda = warm.shard_lambda();
    debug_assert_eq!(
        lambda.to_bits(),
        cached_lambda(universe, warm).to_bits(),
        "per-network λ minima diverged from the full cached-LHS scan"
    );
    let dual_objective = warm.duals.objective();

    // ---------------- Second phase: replay the full stack ----------------
    // The repair passes appended their MISes directly onto warm's stack
    // arena, so the surviving seed + repair MISes are already in order;
    // replay newest first, exactly like a cold run's stack pop. With an
    // overlap closure, the replay shares the wall clock with it on a
    // scoped thread — sound because the replay reads only the frozen
    // stack and the immutable universe/conflict (see
    // [`run_two_phase_warm_overlapped`]).
    let mises = |warm: &WarmState| (0..warm.num_mises()).rev();
    let (selected, extra) = match overlap {
        None => (
            replay_stack(
                universe,
                conflict,
                mises(warm).map(|m| warm.mis(m)),
                &mut stats,
            ),
            None,
        ),
        Some(f) => std::thread::scope(|scope| {
            let handle = scope.spawn(f);
            let selected = replay_stack(
                universe,
                conflict,
                mises(warm).map(|m| warm.mis(m)),
                &mut stats,
            );
            let extra = match handle.join() {
                Ok(extra) => extra,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (selected, Some(extra))
        }),
    };

    let mut raised_instances: Vec<InstanceId> = warm.stack_items.clone();
    raised_instances.sort_unstable();
    raised_instances.dedup();

    if truncated.is_some() {
        // Dirty-work carry: the networks this (cut) repair was scanning
        // are still under repair — keep them pending so the next solve
        // resumes where the budget stopped.
        for (pending, &scanned) in warm.pending_dirty.iter_mut().zip(&active_networks) {
            *pending = scanned;
        }
    } else {
        warm.pending_dirty.iter_mut().for_each(|d| *d = false);
    }
    warm.primed = true;
    warm.epochs_resumed += 1;

    let profit = universe.total_profit(&selected);
    let solution = Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: groups.len(),
            stages_per_epoch: stages,
            steps,
            max_steps_per_stage,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
            quality: match truncated {
                Some(rounds_left) => CertificateQuality::Truncated { rounds_left },
                None => CertificateQuality::Full,
            },
        },
    };

    // A truncated run is only held to the anytime contract: a feasible
    // schedule and a valid (weaker) bound. λ may legitimately sit below
    // the target — the safety valve and the guarantee asserts are for
    // full runs only.
    if truncated.is_some() {
        debug_assert!(
            solution.verify(universe).is_ok(),
            "truncated warm schedule failed feasibility verification"
        );
        return (solution, extra);
    }

    // ---------------- Certificate check + safety valve ----------------
    let bound = approximation_bound(rule, layering.max_critical(), 1.0 - config.epsilon);
    let ratio = solution.certified_ratio().unwrap_or(1.0);
    let certified = solution.verify(universe).is_ok()
        && lambda >= lambda_target
        && ratio <= bound * (1.0 + 1e-9) + 1e-9;
    if !certified && !fresh {
        // The repaired certificate did not re-verify: fall back to a full
        // from-zero warm run, which reproduces the cold engine exactly.
        // The overlap work already ran (alongside the discarded replay).
        *warm = WarmState::new(universe, rule);
        return (
            run_two_phase_warm_on(universe, conflict, layering, rule, config, warm),
            extra,
        );
    }
    debug_assert!(
        solution.verify(universe).is_ok(),
        "warm schedule failed feasibility verification"
    );
    debug_assert!(
        lambda >= lambda_target,
        "warm certificate slackness λ = {lambda} below 1 − ε"
    );
    debug_assert!(
        ratio <= bound * (1.0 + 1e-9) + 1e-9,
        "warm certified ratio {ratio} exceeds the {bound} guarantee"
    );
    (solution, extra)
}

/// `λ` from the cached LHS lower bounds: `min` over eligible instances of
/// `LHS(d)/p(d)` (clamped exactly like the cold engine's certificate).
/// The full `O(|D|)` scan — superseded by [`WarmState::shard_lambda`] and
/// kept as the debug/test reference the shard minima are checked against.
#[cfg_attr(not(any(debug_assertions, test)), allow(dead_code))]
fn cached_lambda(universe: &DemandInstanceUniverse, warm: &WarmState) -> f64 {
    universe
        .instance_ids()
        .filter(|d| warm.eligible[d.index()])
        .map(|d| warm.lhs[d.index()] / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_two_phase_on;
    use netsched_graph::{ArrivingDemand, DemandId, EdgePath, LineProblem, NetworkId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line_universe(seed: u64, demands: usize) -> DemandInstanceUniverse {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(40, 3);
        let nets: Vec<NetworkId> = (0..3).map(NetworkId::new).collect();
        for _ in 0..demands {
            let len = rng.gen_range(2..=8u32);
            let release = rng.gen_range(0..=(40 - len));
            let slack = rng.gen_range(0..=(40 - release - len).min(3));
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..10.0),
                1.0,
                access,
            )
            .unwrap();
        }
        p.universe()
    }

    fn solve_pair(
        universe: &DemandInstanceUniverse,
        warm: &mut WarmState,
        config: &AlgorithmConfig,
    ) -> (Solution, Solution) {
        let conflict = ShardedConflictGraph::build(universe);
        let layering = InstanceLayering::line_length_classes(universe);
        let cold = run_two_phase_on(universe, &conflict, &layering, RaiseRule::Unit, config);
        let warm_sol = run_two_phase_warm_on(
            universe,
            &conflict,
            &layering,
            RaiseRule::Unit,
            config,
            warm,
        );
        (cold, warm_sol)
    }

    #[test]
    fn fresh_warm_run_reproduces_the_cold_engine_exactly() {
        let u = line_universe(3, 24);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        let (cold, warm_sol) = solve_pair(&u, &mut warm, &config);
        assert_eq!(cold.selected, warm_sol.selected);
        assert_eq!(cold.raised_instances, warm_sol.raised_instances);
        assert_eq!(cold.profit, warm_sol.profit);
        assert_eq!(cold.diagnostics.lambda, warm_sol.diagnostics.lambda);
        assert_eq!(
            cold.diagnostics.dual_objective,
            warm_sol.diagnostics.dual_objective
        );
        assert_eq!(cold.diagnostics.steps, warm_sol.diagnostics.steps);
        assert_eq!(warm.epochs_resumed(), 1);
    }

    #[test]
    fn spliced_state_repairs_the_certificate_after_churn() {
        let mut u = line_universe(7, 26);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);

        let mut delta = UniverseDelta::new();
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..6 {
            // Expire two random demands, admit one fresh arrival.
            let m = u.num_demands();
            let mut expired = vec![
                DemandId::new(rng.gen_range(0..m)),
                DemandId::new(rng.gen_range(0..m)),
            ];
            expired.sort_unstable();
            expired.dedup();
            let start = rng.gen_range(0..34u32);
            let arrival = ArrivingDemand {
                profit: rng.gen_range(1.0..10.0),
                height: 1.0,
                instances: vec![(
                    NetworkId::new(rng.gen_range(0..3)),
                    EdgePath::interval(start as usize, start as usize + 4),
                    Some(start),
                )],
            };
            u.apply_demand_delta(&expired, &[arrival], &mut delta);
            warm.splice(&u, &delta);

            let conflict = ShardedConflictGraph::build(&u);
            let layering = InstanceLayering::line_length_classes(&u);
            let sol = run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &config,
                &mut warm,
            );
            sol.verify(&u).unwrap();
            assert!(
                sol.diagnostics.lambda >= 0.9 - 1e-6,
                "round {round}: λ = {} below 1 − ε",
                sol.diagnostics.lambda
            );
            let bound = approximation_bound(RaiseRule::Unit, layering.max_critical(), 0.9);
            assert!(
                sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6,
                "round {round}: certified ratio exceeds the guarantee"
            );
        }
        assert_eq!(warm.epochs_resumed(), 7);
    }

    #[test]
    fn expiring_everything_clears_the_dual_objective() {
        let mut u = line_universe(13, 15);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);
        assert!(warm.duals().objective() > 0.0);

        let everyone: Vec<DemandId> = (0..u.num_demands()).map(DemandId::new).collect();
        let mut delta = UniverseDelta::new();
        u.apply_demand_delta(&everyone, &[], &mut delta);
        warm.splice(&u, &delta);
        // All α dropped, all recorded β point-cleared: the objective is
        // (numerically) zero again.
        assert!(
            warm.duals().objective().abs() < 1e-9,
            "stale dual mass survived the splice: {}",
            warm.duals().objective()
        );
    }

    fn churn_round(u: &mut DemandInstanceUniverse, rng: &mut StdRng, delta: &mut UniverseDelta) {
        let m = u.num_demands();
        let mut expired = vec![
            DemandId::new(rng.gen_range(0..m)),
            DemandId::new(rng.gen_range(0..m)),
        ];
        expired.sort_unstable();
        expired.dedup();
        let start = rng.gen_range(0..34u32);
        let arrival = ArrivingDemand {
            profit: rng.gen_range(1.0..10.0),
            height: 1.0,
            instances: vec![(
                NetworkId::new(rng.gen_range(0..3)),
                EdgePath::interval(start as usize, start as usize + 4),
                Some(start),
            )],
        };
        u.apply_demand_delta(&expired, &[arrival], delta);
    }

    #[test]
    fn shard_minima_match_the_full_scan_bit_for_bit() {
        let mut u = line_universe(21, 24);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);
        assert_eq!(
            warm.shard_lambda().to_bits(),
            cached_lambda(&u, &warm).to_bits()
        );

        let mut delta = UniverseDelta::new();
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..5 {
            churn_round(&mut u, &mut rng, &mut delta);
            warm.splice(&u, &delta);
            let conflict = ShardedConflictGraph::build(&u);
            let layering = InstanceLayering::line_length_classes(&u);
            let sol = run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &config,
                &mut warm,
            );
            assert_eq!(
                warm.shard_lambda().to_bits(),
                cached_lambda(&u, &warm).to_bits(),
                "round {round}: shard minima diverged from the full scan"
            );
            assert_eq!(
                sol.diagnostics.lambda.to_bits(),
                warm.shard_lambda().to_bits(),
                "round {round}: reported λ is not the shard fold"
            );
        }
    }

    #[test]
    fn warm_state_roundtrips_through_json() {
        let mut u = line_universe(17, 22);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);
        let mut delta = UniverseDelta::new();
        let mut rng = StdRng::seed_from_u64(9);
        let conflict_layering = |u: &DemandInstanceUniverse| {
            (
                ShardedConflictGraph::build(u),
                InstanceLayering::line_length_classes(u),
            )
        };
        for _ in 0..3 {
            churn_round(&mut u, &mut rng, &mut delta);
            warm.splice(&u, &delta);
            let (conflict, layering) = conflict_layering(&u);
            run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &config,
                &mut warm,
            );
        }

        let text = warm.to_json().render();
        let mut restored = WarmState::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        restored.validate_shape(&u).unwrap();
        assert_eq!(restored.rule(), warm.rule());
        assert_eq!(restored.epochs_resumed(), warm.epochs_resumed());
        assert_eq!(restored.stack_mass(), warm.stack_mass());
        assert_eq!(
            restored.shard_lambda().to_bits(),
            warm.shard_lambda().to_bits()
        );

        // Re-solving from the restored state must match re-solving from the
        // original: the stack replay and the cached-LHS certificate are
        // exact copies (only Fenwick-internal prefix nodes are
        // re-accumulated, which no quiescent solve reads).
        let (conflict, layering) = conflict_layering(&u);
        let from_original = run_two_phase_warm_on(
            &u,
            &conflict,
            &layering,
            RaiseRule::Unit,
            &config,
            &mut warm,
        );
        let from_restored = run_two_phase_warm_on(
            &u,
            &conflict,
            &layering,
            RaiseRule::Unit,
            &config,
            &mut restored,
        );
        assert_eq!(from_original.selected, from_restored.selected);
        assert_eq!(from_original.profit, from_restored.profit);
        assert_eq!(
            from_original.diagnostics.lambda.to_bits(),
            from_restored.diagnostics.lambda.to_bits()
        );
        assert!(
            (from_original.diagnostics.dual_objective - from_restored.diagnostics.dual_objective)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn restored_state_rejects_the_wrong_universe() {
        let u = line_universe(3, 12);
        let config = AlgorithmConfig::deterministic(0.1);
        let mut warm = WarmState::new(&u, RaiseRule::Unit);
        solve_pair(&u, &mut warm, &config);
        let restored =
            WarmState::from_json(&JsonValue::parse(&warm.to_json().render()).unwrap()).unwrap();
        let other = line_universe(4, 15);
        assert!(restored.validate_shape(&other).is_err());
    }

    #[test]
    fn rule_mismatch_panics() {
        let u = line_universe(1, 5);
        let conflict = ShardedConflictGraph::build(&u);
        let layering = InstanceLayering::line_length_classes(&u);
        let mut warm = WarmState::new(&u, RaiseRule::Narrow);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_two_phase_warm_on(
                &u,
                &conflict,
                &layering,
                RaiseRule::Unit,
                &AlgorithmConfig::deterministic(0.1),
                &mut warm,
            )
        }));
        assert!(result.is_err());
    }
}
