//! Configuration of the distributed algorithms.

use netsched_distrib::MisStrategy;
use netsched_workloads::json::{FromJson, JsonValue, ToJson};

/// Tunables shared by every algorithm in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmConfig {
    /// The accuracy parameter `ε > 0`. The slackness target of the first
    /// phase is `λ = 1 − ε`, and the number of stages per epoch is
    /// `⌈log_ξ ε⌉`.
    pub epsilon: f64,
    /// How maximal independent sets are computed in each step.
    pub mis: MisStrategy,
    /// Base seed for all randomized components (per-step MIS seeds are
    /// derived deterministically from it).
    pub seed: u64,
}

impl Default for AlgorithmConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            mis: MisStrategy::Luby { seed: 0x5EED },
            seed: 0x5EED,
        }
    }
}

impl AlgorithmConfig {
    /// A configuration with the given `ε` and defaults elsewhere.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// A deterministic configuration (sequential-greedy MIS), handy for
    /// reproducible tests.
    pub fn deterministic(epsilon: f64) -> Self {
        Self {
            epsilon,
            mis: MisStrategy::SequentialGreedy,
            seed: 0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(format!("epsilon must lie in (0, 1), got {}", self.epsilon));
        }
        Ok(())
    }
}

impl ToJson for AlgorithmConfig {
    fn to_json(&self) -> JsonValue {
        // `MisStrategy` lives in `netsched-distrib`, which knows nothing of
        // the JSON layer, so its encoding is inlined here.
        let mis = match self.mis {
            MisStrategy::Luby { seed } => JsonValue::object(vec![
                ("strategy", JsonValue::String("luby".into())),
                ("seed", JsonValue::u64_value(seed)),
            ]),
            MisStrategy::SequentialGreedy => JsonValue::object(vec![(
                "strategy",
                JsonValue::String("sequential-greedy".into()),
            )]),
        };
        JsonValue::object(vec![
            ("epsilon", JsonValue::num(self.epsilon)),
            ("mis", mis),
            ("seed", JsonValue::u64_value(self.seed)),
        ])
    }
}

impl FromJson for AlgorithmConfig {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let mis_doc = value.field("mis")?;
        let mis = match mis_doc.field("strategy")?.as_str()? {
            "luby" => MisStrategy::Luby {
                seed: mis_doc.field("seed")?.as_u64()?,
            },
            "sequential-greedy" => MisStrategy::SequentialGreedy,
            other => return Err(format!("unknown MIS strategy `{other}`")),
        };
        let config = Self {
            epsilon: value.field("epsilon")?.as_f64()?,
            mis,
            seed: value.field("seed")?.as_u64()?,
        };
        config.validate()?;
        Ok(config)
    }
}

/// The per-demand-instance dual constraint form used by the two-phase
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaiseRule {
    /// Section 3.2 (unit-height / wide instances): the constraint is
    /// `α(a_d) + Σ_{e ∼ d} β(e) ≥ p(d)`; raising adds `δ = s / (|π(d)| + 1)`
    /// to `α(a_d)` and to `β(e)` for every critical edge.
    Unit,
    /// Section 6.1 (narrow instances): the constraint is
    /// `α(a_d) + h(d) · Σ_{e ∼ d} β(e) ≥ p(d)` (with per-edge relative
    /// heights `h(d)/c(e)` in the capacitated extension); raising adds
    /// `δ = s / (1 + 2·h(d)·|π(d)|²)` to `α(a_d)` and `2|π(d)|·δ` to `β(e)`
    /// for every critical edge, so that the constraint becomes tight.
    Narrow,
}

impl ToJson for RaiseRule {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(
            match self {
                RaiseRule::Unit => "unit",
                RaiseRule::Narrow => "narrow",
            }
            .into(),
        )
    }
}

impl FromJson for RaiseRule {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.as_str()? {
            "unit" => Ok(RaiseRule::Unit),
            "narrow" => Ok(RaiseRule::Narrow),
            other => Err(format!("unknown raise rule `{other}`")),
        }
    }
}

/// Computes the paper's stage-progress constant `ξ` for the given raise
/// rule, critical-set size `∆` and minimum (relative) height.
///
/// * Unit rule: `ξ = 2∆' / (2∆' + 1)` with `∆' = ∆ + 1` (Section 5 uses
///   `14/15` for `∆ = 6`; Section 7 uses `8/9` for `∆ = 3`).
/// * Narrow rule: `ξ = c / (c + h_min)` with `c = 2∆² + 1` (Section 6.1 and
///   Section 7, "for some suitable constant c").
pub fn stage_xi(rule: RaiseRule, delta: usize, h_min: f64) -> f64 {
    match rule {
        RaiseRule::Unit => {
            let dp = 2.0 * (delta as f64 + 1.0);
            dp / (dp + 1.0)
        }
        RaiseRule::Narrow => {
            let c = 2.0 * (delta as f64) * (delta as f64) + 1.0;
            c / (c + h_min.clamp(f64::MIN_POSITIVE, 1.0))
        }
    }
}

/// Number of stages per epoch: the smallest `b` with `ξ^b ≤ ε`.
pub fn stages_per_epoch(xi: f64, epsilon: f64) -> usize {
    assert!(xi > 0.0 && xi < 1.0, "xi must lie in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    let b = (epsilon.ln() / xi.ln()).ceil() as usize;
    b.max(1)
}

/// The approximation guarantee of a two-phase run governed by `(∆, λ)`:
/// `(∆ + 1)/λ` for the unit rule (Lemma 3.1) and `(2∆² + 1)/λ` for the
/// narrow rule (Lemma 6.1).
pub fn approximation_bound(rule: RaiseRule, delta: usize, lambda: f64) -> f64 {
    match rule {
        RaiseRule::Unit => (delta as f64 + 1.0) / lambda,
        RaiseRule::Narrow => (2.0 * (delta as f64).powi(2) + 1.0) / lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_matches_paper_constants() {
        // Section 5: ∆ = 6 ⇒ ξ = 14/15.
        assert!((stage_xi(RaiseRule::Unit, 6, 1.0) - 14.0 / 15.0).abs() < 1e-12);
        // Section 7: ∆ = 3 ⇒ ξ = 8/9.
        assert!((stage_xi(RaiseRule::Unit, 3, 1.0) - 8.0 / 9.0).abs() < 1e-12);
        // Section 6.1: c = 2∆² + 1 = 73 for ∆ = 6.
        let xi = stage_xi(RaiseRule::Narrow, 6, 0.25);
        assert!((xi - 73.0 / 73.25).abs() < 1e-12);
        // Section 7 narrow: c' = 19 for ∆ = 3.
        let xi = stage_xi(RaiseRule::Narrow, 3, 0.5);
        assert!((xi - 19.0 / 19.5).abs() < 1e-12);
    }

    #[test]
    fn stages_per_epoch_grows_with_accuracy() {
        let xi = stage_xi(RaiseRule::Unit, 6, 1.0);
        let coarse = stages_per_epoch(xi, 0.5);
        let fine = stages_per_epoch(xi, 0.01);
        assert!(coarse < fine);
        // ξ^b ≤ ε must hold.
        assert!(xi.powi(fine as i32) <= 0.01 + 1e-12);
        assert!(xi.powi(coarse as i32) <= 0.5 + 1e-12);
    }

    #[test]
    fn narrow_stages_scale_with_inverse_hmin() {
        let eps = 0.1;
        let s_half = stages_per_epoch(stage_xi(RaiseRule::Narrow, 6, 0.5), eps);
        let s_tenth = stages_per_epoch(stage_xi(RaiseRule::Narrow, 6, 0.1), eps);
        // Roughly ×5 more stages for ×5 smaller h_min.
        assert!(s_tenth > 3 * s_half);
    }

    #[test]
    fn approximation_bounds_match_theorems() {
        // Theorem 5.3: 7/(1 − ε).
        assert!((approximation_bound(RaiseRule::Unit, 6, 0.9) - 7.0 / 0.9).abs() < 1e-12);
        // Theorem 7.1: 4/(1 − ε).
        assert!((approximation_bound(RaiseRule::Unit, 3, 0.9) - 4.0 / 0.9).abs() < 1e-12);
        // Lemma 6.2: 73/(1 − ε).
        assert!((approximation_bound(RaiseRule::Narrow, 6, 0.9) - 73.0 / 0.9).abs() < 1e-12);
        // Section 7 narrow: 19/(1 − ε).
        assert!((approximation_bound(RaiseRule::Narrow, 3, 0.9) - 19.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn config_and_rule_roundtrip_through_json() {
        for config in [
            AlgorithmConfig::default(),
            AlgorithmConfig::deterministic(0.25),
            AlgorithmConfig {
                epsilon: 0.125,
                mis: MisStrategy::Luby { seed: u64::MAX },
                seed: (1 << 60) + 7,
            },
        ] {
            let text = config.to_json().render();
            let back = AlgorithmConfig::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, config);
        }
        for rule in [RaiseRule::Unit, RaiseRule::Narrow] {
            let back = RaiseRule::from_json(&rule.to_json()).unwrap();
            assert_eq!(back, rule);
        }
        assert!(RaiseRule::from_json(&JsonValue::String("wide".into())).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(AlgorithmConfig::default().validate().is_ok());
        assert!(AlgorithmConfig::with_epsilon(0.0).validate().is_err());
        assert!(AlgorithmConfig::with_epsilon(1.0).validate().is_err());
        assert!(AlgorithmConfig::deterministic(0.2).validate().is_ok());
    }
}
