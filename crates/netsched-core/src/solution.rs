//! Solutions and run diagnostics.

use crate::budget::CertificateQuality;
use netsched_distrib::RoundStats;
use netsched_graph::{DemandId, DemandInstanceUniverse, InstanceId, NetworkId};

/// Diagnostics reported by a two-phase run; these are the quantities the
/// paper's theorems bound (∆, λ, epochs, stages, steps) plus the dual
/// objective used as an optimum upper bound.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunDiagnostics {
    /// Number of epochs executed (`ℓ_max`, the layered-decomposition length).
    pub epochs: usize,
    /// Number of stages per epoch (`⌈log_ξ ε⌉`).
    pub stages_per_epoch: usize,
    /// Total number of first-phase steps (iterations) over all stages.
    pub steps: u64,
    /// Largest number of steps observed in a single stage (Lemma 5.1 bounds
    /// this by `O(log(p_max/p_min))`).
    pub max_steps_per_stage: u64,
    /// Number of demand instances raised.
    pub raised: u64,
    /// The critical-set size ∆ of the layering actually used.
    pub delta: usize,
    /// The slackness λ achieved at the end of the first phase.
    pub lambda: f64,
    /// The dual objective `Σ α + Σ β` at the end of the first phase.
    pub dual_objective: f64,
    /// `dual_objective / λ`, an upper bound on the optimum profit.
    pub optimum_upper_bound: f64,
    /// Whether the first phase ran to full λ-certification or was cut by
    /// a [`Budget`](crate::Budget). The bound above is valid either way;
    /// only a [`Full`](CertificateQuality::Full) run carries the solver's
    /// worst-case guarantee.
    pub quality: CertificateQuality,
}

/// The outcome of one scheduling algorithm run.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The selected demand instances (indices into the universe the
    /// algorithm was run on).
    pub selected: Vec<InstanceId>,
    /// Every instance raised during the first phase (the paper's set `R`);
    /// the second phase guarantees that each of them is either selected or
    /// conflicts with a selected successor.
    pub raised_instances: Vec<InstanceId>,
    /// Total profit of the selection.
    pub profit: f64,
    /// Communication-round and message accounting.
    pub stats: RoundStats,
    /// Framework diagnostics.
    pub diagnostics: RunDiagnostics,
}

impl Solution {
    /// An empty solution.
    pub fn empty() -> Self {
        Self {
            selected: Vec::new(),
            raised_instances: Vec::new(),
            profit: 0.0,
            stats: RoundStats::default(),
            diagnostics: RunDiagnostics::default(),
        }
    }

    /// Number of scheduled demands.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Returns `true` if nothing was scheduled.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Verifies the solution against a universe: feasibility (capacity and
    /// one-instance-per-demand) and the reported profit.
    pub fn verify(&self, universe: &DemandInstanceUniverse) -> Result<(), String> {
        if !universe.is_feasible(&self.selected) {
            return Err("selection violates feasibility".to_string());
        }
        let profit = universe.total_profit(&self.selected);
        if (profit - self.profit).abs() > 1e-6 * (1.0 + profit.abs()) {
            return Err(format!(
                "reported profit {} does not match recomputed profit {}",
                self.profit, profit
            ));
        }
        Ok(())
    }

    /// The demands scheduled by this solution, with the network each one was
    /// scheduled on.
    pub fn assignments(&self, universe: &DemandInstanceUniverse) -> Vec<(DemandId, NetworkId)> {
        self.selected
            .iter()
            .map(|&d| {
                let inst = universe.instance(d);
                (inst.demand, inst.network)
            })
            .collect()
    }

    /// The selected instances scheduled on a given network.
    pub fn on_network(
        &self,
        universe: &DemandInstanceUniverse,
        network: NetworkId,
    ) -> Vec<InstanceId> {
        universe.restrict_to_network(&self.selected, network)
    }

    /// The empirical approximation ratio `upper_bound / profit` implied by
    /// the dual certificate (≥ 1; `None` when the solution is empty or
    /// carries no certificate, e.g. a plain heuristic run).
    pub fn certified_ratio(&self) -> Option<f64> {
        if self.profit <= 0.0 || self.diagnostics.optimum_upper_bound <= 0.0 {
            return None;
        }
        Some(self.diagnostics.optimum_upper_bound / self.profit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::figure1_line_problem;

    #[test]
    fn verify_catches_infeasible_and_wrong_profit() {
        let u = figure1_line_problem().universe();
        let mut s = Solution::empty();
        s.selected = vec![InstanceId::new(0), InstanceId::new(2)];
        s.profit = u.total_profit(&s.selected);
        assert!(s.verify(&u).is_ok());
        assert_eq!(s.len(), 2);

        let mut bad = s.clone();
        bad.selected = vec![InstanceId::new(0), InstanceId::new(1)];
        bad.profit = u.total_profit(&bad.selected);
        assert!(bad.verify(&u).is_err());

        let mut wrong_profit = s.clone();
        wrong_profit.profit += 1.0;
        assert!(wrong_profit.verify(&u).is_err());
    }

    #[test]
    fn assignments_and_restrictions() {
        let u = figure1_line_problem().universe();
        let mut s = Solution::empty();
        s.selected = vec![InstanceId::new(1), InstanceId::new(2)];
        s.profit = u.total_profit(&s.selected);
        let asg = s.assignments(&u);
        assert_eq!(asg.len(), 2);
        assert!(asg.iter().all(|&(_, t)| t == NetworkId::new(0)));
        assert_eq!(s.on_network(&u, NetworkId::new(0)).len(), 2);
    }

    #[test]
    fn certified_ratio_requires_positive_profit() {
        let mut s = Solution::empty();
        assert!(s.certified_ratio().is_none());
        s.profit = 2.0;
        s.diagnostics.optimum_upper_bound = 5.0;
        assert!((s.certified_ratio().unwrap() - 2.5).abs() < 1e-12);
    }
}
