//! Execution tracing and analysis of two-phase runs.
//!
//! The proofs of Lemma 3.1 and Lemma 5.1 reason about *which* instances were
//! raised, in which step, by how much, and who "killed" whom (Claim 5.2).
//! [`run_two_phase_traced`] runs the same engine as
//! [`crate::framework::run_two_phase`] but records a [`Trace`] of every step,
//! which the experiment harness and the tests use to inspect kill chains,
//! per-stage step counts and the per-instance raise amounts δ(d).

use crate::config::{stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
use crate::duals::DualState;
use crate::framework::{eligibility, run_two_phase};
use crate::solution::Solution;
use netsched_decomp::InstanceLayering;
use netsched_distrib::{maximal_independent_set, ConflictGraph, MisStrategy, RoundStats};
use netsched_graph::{DemandInstanceUniverse, InstanceId};

/// One first-phase step (one MIS computation plus the simultaneous raises).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Epoch index (group of the layered decomposition).
    pub epoch: usize,
    /// Stage index within the epoch (1-based, as in the pseudocode).
    pub stage: usize,
    /// Step index within the stage (0-based).
    pub step: usize,
    /// Number of instances that were still unsatisfied at this step.
    pub unsatisfied: usize,
    /// The instances raised in this step (the MIS), with their raise
    /// amounts δ(d).
    pub raised: Vec<(InstanceId, f64)>,
}

/// A full trace of the first phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Every step in execution order.
    pub steps: Vec<StepRecord>,
}

impl Trace {
    /// Total number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The raise amount δ(d) of an instance (0 if it was never raised).
    pub fn delta_of(&self, d: InstanceId) -> f64 {
        self.steps
            .iter()
            .flat_map(|s| s.raised.iter())
            .find(|(i, _)| *i == d)
            .map(|(_, delta)| *delta)
            .unwrap_or(0.0)
    }

    /// All raised instances in raise order.
    pub fn raised_in_order(&self) -> Vec<InstanceId> {
        self.steps
            .iter()
            .flat_map(|s| s.raised.iter().map(|(d, _)| *d))
            .collect()
    }

    /// The maximum number of steps observed in any single (epoch, stage)
    /// pair — the quantity bounded by Lemma 5.1.
    pub fn max_steps_per_stage(&self) -> usize {
        use std::collections::HashMap;
        let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
        for s in &self.steps {
            *counts.entry((s.epoch, s.stage)).or_default() += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Extracts the *kill chains* of Lemma 5.1: within one (epoch, stage),
    /// if `d1` is raised in step `i` and a conflicting `d2` is raised in a
    /// later step of the same stage, then `d1` "killed" `d2` at step `i`.
    /// Returns, per stage, the longest chain `d_1 → d_2 → …` found; Claim
    /// 5.2 predicts that profits double along each chain.
    pub fn longest_kill_chain(
        &self,
        universe: &DemandInstanceUniverse,
        conflict: &ConflictGraph,
    ) -> Vec<InstanceId> {
        use std::collections::HashMap;
        // Group raised instances by (epoch, stage) with their step index.
        let mut by_stage: HashMap<(usize, usize), Vec<(usize, InstanceId)>> = HashMap::new();
        for s in &self.steps {
            for (d, _) in &s.raised {
                by_stage
                    .entry((s.epoch, s.stage))
                    .or_default()
                    .push((s.step, *d));
            }
        }
        let mut best: Vec<InstanceId> = Vec::new();
        for entries in by_stage.values() {
            // Longest path in the "killed by" DAG (edges from step i to a
            // conflicting raise at step > i). Dynamic programming over steps.
            let mut chain_to: HashMap<InstanceId, Vec<InstanceId>> = HashMap::new();
            let mut sorted = entries.clone();
            sorted.sort_unstable();
            for &(step, d) in &sorted {
                let mut best_prev: Vec<InstanceId> = Vec::new();
                for &(prev_step, p) in &sorted {
                    if prev_step < step && conflict.are_conflicting(p, d) {
                        if let Some(chain) = chain_to.get(&p) {
                            if chain.len() > best_prev.len() {
                                best_prev = chain.clone();
                            }
                        }
                    }
                }
                best_prev.push(d);
                if best_prev.len() > best.len() {
                    best = best_prev.clone();
                }
                chain_to.insert(d, best_prev);
            }
        }
        let _ = universe;
        best
    }
}

/// Runs the two-phase engine while recording a [`Trace`]. The returned
/// [`Solution`] is produced by the same (untraced) engine with the same
/// configuration, so it is identical to what [`run_two_phase`] returns for
/// deterministic MIS strategies.
pub fn run_two_phase_traced(
    universe: &DemandInstanceUniverse,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
) -> (Solution, Trace) {
    // First, replay the first phase step by step to build the trace. This
    // mirrors `run_two_phase`'s first phase exactly (same thresholds, same
    // MIS strategy derivation) but keeps the per-step records.
    let mut trace = Trace::default();
    if universe.num_instances() == 0 {
        return (Solution::empty(), trace);
    }
    let conflict = ConflictGraph::build(universe);
    let mut duals = DualState::new(universe, rule);
    let (eligible, h_min) = eligibility(universe);
    let xi = stage_xi(rule, layering.max_critical().max(1), h_min);
    let stages = stages_per_epoch(xi, config.epsilon);
    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let step_cap = 4 * (profit_ratio.log2().ceil() as u64 + 4) + 32;

    let mut scratch_stats = RoundStats::new();
    for (epoch, group) in layering.groups().iter().enumerate() {
        for stage in 1..=stages {
            let threshold = 1.0 - xi.powi(stage as i32);
            let mut step = 0usize;
            loop {
                let unsatisfied: Vec<InstanceId> = group
                    .iter()
                    .copied()
                    .filter(|&d| {
                        eligible[d.index()] && !duals.is_xi_satisfied(universe, d, threshold)
                    })
                    .collect();
                if unsatisfied.is_empty() || step as u64 >= step_cap {
                    break;
                }
                let strategy = match config.mis {
                    MisStrategy::SequentialGreedy => MisStrategy::SequentialGreedy,
                    MisStrategy::Luby { seed } => MisStrategy::Luby {
                        seed: seed ^ ((epoch as u64) << 40 | (stage as u64) << 20 | step as u64),
                    },
                };
                let mis =
                    maximal_independent_set(&conflict, &unsatisfied, strategy, &mut scratch_stats);
                let mut raised = Vec::with_capacity(mis.len());
                for &d in &mis {
                    let delta = duals.raise(universe, d, layering.critical(d));
                    raised.push((d, delta));
                }
                trace.steps.push(StepRecord {
                    epoch,
                    stage,
                    step,
                    unsatisfied: unsatisfied.len(),
                    raised,
                });
                step += 1;
            }
        }
    }

    // The solution itself comes from the canonical engine (identical
    // configuration).
    let solution = run_two_phase(universe, layering, rule, config);
    (solution, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_decomp::TreeDecompositionKind;
    use netsched_graph::fixtures::figure6_problem;
    use netsched_graph::{NetworkId, TreeProblem, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, n: usize, m: usize) -> TreeProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let edges = (1..n)
            .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
            .collect();
        let t = p.add_network(edges).unwrap();
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            p.add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..=16.0),
                vec![t],
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn trace_matches_untraced_run_for_deterministic_mis() {
        let p = random_problem(1, 20, 15);
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let cfg = AlgorithmConfig::deterministic(0.1);
        let (sol, trace) = run_two_phase_traced(&u, &layering, RaiseRule::Unit, &cfg);
        let plain = run_two_phase(&u, &layering, RaiseRule::Unit, &cfg);
        assert_eq!(sol.selected, plain.selected);
        assert_eq!(sol.profit, plain.profit);
        // Same raised set, same step count.
        let mut traced_raised = trace.raised_in_order();
        traced_raised.sort_unstable();
        assert_eq!(traced_raised, plain.raised_instances);
        assert_eq!(trace.num_steps() as u64, plain.diagnostics.steps);
        assert_eq!(
            trace.max_steps_per_stage() as u64,
            plain.diagnostics.max_steps_per_stage
        );
    }

    #[test]
    fn deltas_are_positive_and_sum_below_dual_objective() {
        let p = figure6_problem();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let (sol, trace) = run_two_phase_traced(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        let delta_sum: f64 = trace
            .steps
            .iter()
            .flat_map(|s| s.raised.iter().map(|(_, d)| *d))
            .sum();
        assert!(delta_sum > 0.0);
        // Each raise increases the dual objective by at most (∆ + 1)·δ.
        assert!(
            sol.diagnostics.dual_objective
                <= (sol.diagnostics.delta as f64 + 1.0) * delta_sum + 1e-9
        );
        // δ(d) is recorded for every raised instance.
        for d in &sol.raised_instances {
            assert!(trace.delta_of(*d) > 0.0);
        }
        assert_eq!(
            trace.delta_of(InstanceId::new(9999.min(u.num_instances() as u32 as usize))),
            0.0
        );
    }

    #[test]
    fn kill_chain_profits_double_along_the_chain() {
        // Claim 5.2: when d1 kills d2 in a stage, p(d2) ≥ 2·p(d1), so along
        // any kill chain the profits at least double.
        let p = random_problem(7, 24, 30);
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let (_, trace) = run_two_phase_traced(
            &u,
            &layering,
            RaiseRule::Unit,
            &AlgorithmConfig::deterministic(0.1),
        );
        let conflict = ConflictGraph::build(&u);
        let chain = trace.longest_kill_chain(&u, &conflict);
        assert!(!chain.is_empty());
        for w in chain.windows(2) {
            assert!(
                u.profit(w[1]) >= 2.0 * u.profit(w[0]) - 1e-9,
                "profits must double along a kill chain: {} then {}",
                u.profit(w[0]),
                u.profit(w[1])
            );
        }
        // The chain length is therefore at most 1 + log2(pmax/pmin).
        let bound = 1.0 + (u.max_profit() / u.min_profit()).log2();
        assert!(chain.len() as f64 <= bound + 1e-9);
    }

    #[test]
    fn empty_universe_gives_empty_trace() {
        let p = TreeProblem::new(3);
        let mut p = p;
        p.add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let (sol, trace) =
            run_two_phase_traced(&u, &layering, RaiseRule::Unit, &AlgorithmConfig::default());
        assert!(sol.is_empty());
        assert_eq!(trace.num_steps(), 0);
        let _ = NetworkId::new(0);
    }
}
