//! The dual variables `α(a)`, `β(e)` and their bookkeeping (Section 3.1 and
//! Section 6.1).
//!
//! The primal LP selects demand instances subject to per-edge capacity and
//! one-instance-per-demand constraints; its dual has a variable `α(a)` per
//! demand and `β(e)` per (network, edge) pair, and one covering constraint
//! per demand instance. The two-phase framework manipulates an (infeasible)
//! dual assignment whose scaled version certifies the approximation bound
//! via weak duality.
//!
//! The `β` variables are stored in per-network **Fenwick trees**: a raise
//! performs `|π(d)| ≤ ∆` point updates, and the constraint LHS
//! `Σ_{e ∼ d} β(e)` is evaluated as one range sum per interval run of
//! `path(d)` — `O(runs · log E)` instead of `O(path length)`, which is what
//! makes the first phase sublinear in the instance lengths. In the
//! capacitated narrow setting a second Fenwick tree mirrors `β(e)/c(e)`,
//! so the weighted constraint LHS is the same `O(runs · log E)` range sum
//! instead of a per-edge loop; `ĥ(d)` queries ride on the universe's
//! range-minimum [`CapacityIndex`](netsched_graph::CapacityIndex).
//!
//! Because the `β` trees are per-network and both an MIS and the paths
//! within it are conflict-free, a whole MIS worth of raises decomposes by
//! network: [`DualState::raise_batch`] executes them shard-parallel with
//! float-identical results to the sequential loop.

use crate::config::RaiseRule;
use netsched_graph::{DemandInstanceUniverse, InstanceId, NetworkId};
use netsched_workloads::json::{FromJson, JsonValue, ToJson};
use rayon::prelude::*;

/// A Fenwick (binary indexed) tree over `f64` with point updates and
/// prefix/range sums, plus a dense mirror so single-point reads stay `O(1)`
/// (the capacitated narrow path reads `β(e)` edge by edge).
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<f64>,
    dense: Vec<f64>,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Self {
            tree: vec![0.0; len + 1],
            dense: vec![0.0; len],
        }
    }

    /// Adds `delta` at index `i`.
    fn add(&mut self, i: usize, delta: f64) {
        self.dense[i] += delta;
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the first `i` entries (`[0, i)`).
    fn prefix(&self, i: usize) -> f64 {
        let mut i = i.min(self.tree.len() - 1);
        let mut sum = 0.0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum over the inclusive index range `[lo, hi]`.
    #[inline]
    fn range(&self, lo: usize, hi: usize) -> f64 {
        self.prefix(hi + 1) - self.prefix(lo)
    }

    /// Value at a single index (`O(1)` via the dense mirror).
    #[inline]
    fn point(&self, i: usize) -> f64 {
        self.dense[i]
    }

    /// Sum of all entries.
    #[inline]
    fn total(&self) -> f64 {
        self.prefix(self.tree.len() - 1)
    }

    /// Serializes the tree as its dense point values (the prefix structure
    /// is derived data and is rebuilt on load).
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.dense.iter().map(|&x| JsonValue::num(x)).collect())
    }

    /// Rebuilds a tree from its dense point values. The internal prefix
    /// nodes are re-accumulated in index order, so range sums may differ
    /// from the original tree's in the last few bits — point reads and the
    /// dense mirror are exact, which is all the certificate-equivalence
    /// contract of restore needs.
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let entries = value.as_array()?;
        let mut fen = Fenwick::new(entries.len());
        for (i, v) in entries.iter().enumerate() {
            let x = v.as_f64()?;
            if x != 0.0 {
                fen.add(i, x);
            }
        }
        Ok(fen)
    }
}

/// The per-network slice of the `β` assignment: the Fenwick tree over
/// `β(e)` plus, in the capacitated narrow setting, a mirror tree over
/// `β(e)/c(e)` so the weighted constraint LHS stays a range sum.
#[derive(Debug, Clone)]
struct NetworkDuals {
    beta: Fenwick,
    weighted: Option<Fenwick>,
}

/// The dual assignment `⟨α, β⟩`.
#[derive(Debug, Clone)]
pub struct DualState {
    /// `α(a)` per demand.
    alpha: Vec<f64>,
    /// `β(e)` per network, as Fenwick trees over the edge indices.
    beta: Vec<NetworkDuals>,
    /// Which constraint form / raise rule is in effect.
    rule: RaiseRule,
}

impl DualState {
    /// Creates the all-zero dual assignment for a universe.
    pub fn new(universe: &DemandInstanceUniverse, rule: RaiseRule) -> Self {
        let mirror = rule == RaiseRule::Narrow && !universe.is_uniform_capacity();
        let beta = (0..universe.num_networks())
            .map(|t| {
                let edges = universe.num_edges(NetworkId::new(t));
                NetworkDuals {
                    beta: Fenwick::new(edges),
                    weighted: mirror.then(|| Fenwick::new(edges)),
                }
            })
            .collect();
        Self {
            alpha: vec![0.0; universe.num_demands()],
            beta,
            rule,
        }
    }

    /// The raise rule this state was created with.
    #[inline]
    pub fn rule(&self) -> RaiseRule {
        self.rule
    }

    /// `α(a)`.
    #[inline]
    pub fn alpha(&self, demand: netsched_graph::DemandId) -> f64 {
        self.alpha[demand.index()]
    }

    /// `β(e)` for edge `e` of network `t`.
    #[inline]
    pub fn beta(&self, network: NetworkId, edge: netsched_graph::EdgeId) -> f64 {
        self.beta[network.index()].beta.point(edge.index())
    }

    /// The *relative height* of instance `d` on edge `e`: `h(d) / c(e)`.
    /// Equal to `h(d)` in the uniform-capacity setting of the arXiv text.
    fn relative_height(
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        edge: netsched_graph::EdgeId,
    ) -> f64 {
        let inst = universe.instance(d);
        inst.height / universe.capacity(netsched_graph::GlobalEdge::new(inst.network, edge))
    }

    /// The maximum relative height of `d` over its path (`ĥ(d)`); equals
    /// `h(d)` under uniform capacities (`O(1)`) and
    /// `h(d) / min_{e ∼ d} c(e)` otherwise — one range-minimum query per
    /// interval run on the universe's capacity index (`O(runs)`).
    pub fn max_relative_height(universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        let inst = universe.instance(d);
        if universe.is_uniform_capacity() {
            return inst.height;
        }
        if inst.path.is_empty() {
            return 0.0;
        }
        inst.height / universe.min_capacity_on_path(inst.network, &inst.path)
    }

    /// The left-hand side of the dual constraint of `d`:
    /// `α(a_d) + Σ_{e ∼ d} β(e)` under [`RaiseRule::Unit`], and
    /// `α(a_d) + Σ_{e ∼ d} (h(d)/c(e)) · β(e)` under [`RaiseRule::Narrow`].
    ///
    /// Evaluated as one Fenwick range sum per interval run of `path(d)`
    /// (`O(runs · log E)`) in every setting: the capacitated narrow case
    /// reads the `β(e)/c(e)` mirror tree, so the per-edge weights are
    /// already folded into the range sum.
    pub fn lhs(&self, universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        let inst = universe.instance(d);
        self.alpha[inst.demand.index()]
            + Self::lhs_in_network(&self.beta[inst.network.index()], self.rule, universe, d)
    }

    /// The `β` contribution to the constraint LHS of `d`, within its own
    /// network's trees.
    fn lhs_in_network(
        nd: &NetworkDuals,
        rule: RaiseRule,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
    ) -> f64 {
        let inst = universe.instance(d);
        match rule {
            RaiseRule::Unit => {
                let mut sum = 0.0;
                for run in inst.path.runs() {
                    sum += nd.beta.range(run.start as usize, run.end as usize);
                }
                sum
            }
            RaiseRule::Narrow => {
                // Uniform: h(d)/c(e) = h(d), factor it out of the β sum.
                // Capacitated: the mirror tree already carries β(e)/c(e).
                let tree = nd.weighted.as_ref().unwrap_or(&nd.beta);
                let mut sum = 0.0;
                for run in inst.path.runs() {
                    sum += tree.range(run.start as usize, run.end as usize);
                }
                inst.height * sum
            }
        }
    }

    /// The slack `s = p(d) − LHS` of the dual constraint of `d` (clamped to
    /// zero from below).
    pub fn slack(&self, universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        (universe.profit(d) - self.lhs(universe, d)).max(0.0)
    }

    /// Returns `true` if `d` is ξ-satisfied: `LHS ≥ ξ · p(d)` (Section 3.2).
    pub fn is_xi_satisfied(
        &self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        xi: f64,
    ) -> bool {
        self.lhs(universe, d) + netsched_graph::EPS >= xi * universe.profit(d)
    }

    /// The largest `λ` for which every instance is λ-satisfied; this is the
    /// slackness parameter reported at the end of the first phase.
    pub fn achieved_lambda(&self, universe: &DemandInstanceUniverse) -> f64 {
        universe
            .instance_ids()
            .map(|d| self.lhs(universe, d) / universe.profit(d))
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Raises instance `d` so that its dual constraint becomes tight, using
    /// the critical edges `pi` and the state's raise rule. Returns the raise
    /// amount `δ(d)`.
    pub fn raise(
        &mut self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        pi: &[netsched_graph::EdgeId],
    ) -> f64 {
        self.raise_with_options(universe, d, pi, true)
    }

    /// Like [`DualState::raise`] but optionally skipping the `α` variable.
    ///
    /// Appendix A notes that with a single tree-network (one instance per
    /// demand) the `α` variables are unnecessary and dropping them improves
    /// the sequential ratio from 3 to 2; in that mode
    /// `δ = s / |π(d)|` and only the `β` variables are raised.
    pub fn raise_with_options(
        &mut self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        pi: &[netsched_graph::EdgeId],
        include_alpha: bool,
    ) -> f64 {
        let inst = universe.instance(d);
        let alpha_now = self.alpha[inst.demand.index()];
        let rule = self.rule;
        let delta = Self::raise_in_network(
            &mut self.beta[inst.network.index()],
            rule,
            universe,
            d,
            pi,
            alpha_now,
            include_alpha,
        );
        let touch_alpha = include_alpha || rule == RaiseRule::Narrow;
        if touch_alpha && delta > 0.0 {
            self.alpha[inst.demand.index()] += delta;
        }
        delta
    }

    /// Applies the `β` side of one raise within the instance's own network
    /// trees and returns δ(d) (0 when the constraint is already tight).
    /// The caller is responsible for the `α` update, which is what lets
    /// [`DualState::raise_batch`] run the `β` work network-parallel.
    fn raise_in_network(
        nd: &mut NetworkDuals,
        rule: RaiseRule,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        pi: &[netsched_graph::EdgeId],
        alpha_now: f64,
        include_alpha: bool,
    ) -> f64 {
        let inst = universe.instance(d);
        let lhs = alpha_now + Self::lhs_in_network(nd, rule, universe, d);
        let s = (universe.profit(d) - lhs).max(0.0);
        if s <= 0.0 {
            return 0.0;
        }
        let k = pi.len() as f64;
        match rule {
            RaiseRule::Unit => {
                let denom = if include_alpha { k + 1.0 } else { k.max(1.0) };
                let delta = s / denom;
                for &e in pi {
                    debug_assert!(inst.path.contains(e), "critical edges must lie on the path");
                    nd.beta.add(e.index(), delta);
                }
                delta
            }
            RaiseRule::Narrow => {
                // δ is chosen so that the constraint becomes exactly tight:
                // the LHS gains δ from α plus Σ_{e∈π} (h/c(e)) · 2kδ from the
                // β variables. Under uniform capacities this is the paper's
                // δ = s / (1 + 2·h(d)·|π(d)|²).
                let rel_sum: f64 = pi
                    .iter()
                    .map(|&e| Self::relative_height(universe, d, e))
                    .sum();
                let delta = s / (1.0 + 2.0 * k * rel_sum);
                for &e in pi {
                    debug_assert!(inst.path.contains(e), "critical edges must lie on the path");
                    nd.beta.add(e.index(), 2.0 * k * delta);
                    if let Some(weighted) = &mut nd.weighted {
                        let c = universe.capacity(netsched_graph::GlobalEdge::new(inst.network, e));
                        weighted.add(e.index(), 2.0 * k * delta / c);
                    }
                }
                delta
            }
        }
    }

    /// Raises a whole MIS at once, shard-parallel by network.
    ///
    /// The instances of an MIS are pairwise conflict-free: their demands
    /// are distinct (so the `α` updates never collide) and same-network
    /// members have edge-disjoint paths (so the `β` reads and point updates
    /// never interact). The raises are therefore order-independent and the
    /// result is float-identical to raising the batch sequentially — the
    /// per-network trees are farmed out through rayon and the `α` deltas
    /// applied on return. Small batches skip the parallel machinery.
    pub fn raise_batch(
        &mut self,
        universe: &DemandInstanceUniverse,
        items: &[(InstanceId, &[netsched_graph::EdgeId])],
    ) {
        const PAR_MIN_BATCH: usize = 64;
        if items.len() < PAR_MIN_BATCH || rayon::current_num_threads() <= 1 {
            for &(d, pi) in items {
                self.raise(universe, d, pi);
            }
            return;
        }
        // One raise work item: the instance, its critical edges and its
        // demand's α value as of batch start.
        type RaiseItem<'a> = (InstanceId, &'a [netsched_graph::EdgeId], f64);
        let rule = self.rule;
        let mut grouped: Vec<Vec<RaiseItem<'_>>> = vec![Vec::new(); self.beta.len()];
        let mut touched = 0usize;
        for &(d, pi) in items {
            let inst = universe.instance(d);
            let bucket = &mut grouped[inst.network.index()];
            if bucket.is_empty() {
                touched += 1;
            }
            bucket.push((d, pi, self.alpha[inst.demand.index()]));
        }
        if touched <= 1 {
            for &(d, pi) in items {
                self.raise(universe, d, pi);
            }
            return;
        }
        let nets = std::mem::take(&mut self.beta);
        let work: Vec<(NetworkDuals, Vec<RaiseItem<'_>>)> = nets.into_iter().zip(grouped).collect();
        let results: Vec<(NetworkDuals, Vec<(usize, f64)>)> = work
            .into_par_iter()
            .map(|(mut nd, batch)| {
                let mut alpha_updates = Vec::with_capacity(batch.len());
                for (d, pi, alpha_now) in batch {
                    let delta =
                        Self::raise_in_network(&mut nd, rule, universe, d, pi, alpha_now, true);
                    if delta > 0.0 {
                        alpha_updates.push((universe.instance(d).demand.index(), delta));
                    }
                }
                (nd, alpha_updates)
            })
            .collect();
        self.beta = Vec::with_capacity(results.len());
        for (nd, updates) in results {
            self.beta.push(nd);
            for (demand, delta) in updates {
                self.alpha[demand] += delta;
            }
        }
    }

    /// Subtracts a previously raised `β` contribution of `amount` from edge
    /// `edge` of network `network` (and the mirrored `amount / c(e)` from
    /// the weighted tree, when present).
    ///
    /// This is the splice primitive of the warm re-solve engine: when a
    /// demand expires, the exact amounts its instances' raises added are
    /// cleared out point by point, returning the `β` assignment to "as if
    /// those raises never happened". Tiny negative residue left by
    /// floating-point cancellation is clamped back to zero so the dual
    /// assignment stays non-negative.
    pub fn subtract_beta(
        &mut self,
        universe: &DemandInstanceUniverse,
        network: NetworkId,
        edge: netsched_graph::EdgeId,
        amount: f64,
    ) {
        let nd = &mut self.beta[network.index()];
        nd.beta.add(edge.index(), -amount);
        let residue = nd.beta.point(edge.index());
        if residue < 0.0 {
            nd.beta.add(edge.index(), -residue);
        }
        if let Some(weighted) = &mut nd.weighted {
            let c = universe.capacity(netsched_graph::GlobalEdge::new(network, edge));
            weighted.add(edge.index(), -amount / c);
            let residue = weighted.point(edge.index());
            if residue < 0.0 {
                weighted.add(edge.index(), -residue);
            }
        }
    }

    /// Compacts the `α` vector through a demand renumbering (old id → new
    /// id, `u32::MAX` = expired) and extends it with zeros to `new_len`
    /// (the arriving demands). Expired demands' `α` variables simply
    /// disappear — no surviving constraint references them, since expiry
    /// removes whole demands.
    pub fn compact_alpha(&mut self, demand_remap: &[u32], new_len: usize) {
        debug_assert_eq!(demand_remap.len(), self.alpha.len());
        let mut next = 0usize;
        for (old, &new) in demand_remap.iter().enumerate() {
            if new != u32::MAX {
                debug_assert_eq!(new as usize, next);
                self.alpha[next] = self.alpha[old];
                next += 1;
            }
        }
        self.alpha.truncate(next);
        self.alpha.resize(new_len, 0.0);
    }

    /// Heap bytes currently committed by the dual assignment (capacities,
    /// not lengths) — the serving tier's bytes/demand audit.
    pub fn committed_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.alpha.capacity() * size_of::<f64>()
            + self.beta.capacity() * size_of::<NetworkDuals>();
        for nd in &self.beta {
            bytes += (nd.beta.tree.capacity() + nd.beta.dense.capacity()) * size_of::<f64>();
            if let Some(w) = &nd.weighted {
                bytes += (w.tree.capacity() + w.dense.capacity()) * size_of::<f64>();
            }
        }
        bytes
    }

    /// The dual objective `Σ_a α(a) + Σ_e β(e)` of the current assignment.
    pub fn objective(&self) -> f64 {
        self.alpha.iter().sum::<f64>() + self.beta.iter().map(|nd| nd.beta.total()).sum::<f64>()
    }

    /// An upper bound on the optimal profit obtained by scaling the dual
    /// assignment by `1/λ` (weak duality, proof of Lemma 3.1). Only valid
    /// when every instance is λ-satisfied — pass
    /// [`DualState::achieved_lambda`] or a lower value.
    pub fn scaled_upper_bound(&self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "lambda must be positive");
        self.objective() / lambda
    }

    /// Checks a deserialized assignment's dimensions against a universe:
    /// the `α` vector, the per-network tree count and every tree's edge
    /// count must match, and the capacitated-narrow mirror tree must be
    /// present exactly when the universe and rule call for one.
    pub fn validate_shape(&self, universe: &DemandInstanceUniverse) -> Result<(), String> {
        if self.alpha.len() != universe.num_demands() {
            return Err(format!(
                "dual state has {} alpha entries, universe has {} demands",
                self.alpha.len(),
                universe.num_demands()
            ));
        }
        if self.beta.len() != universe.num_networks() {
            return Err(format!(
                "dual state has {} networks, universe has {}",
                self.beta.len(),
                universe.num_networks()
            ));
        }
        let mirror = self.rule == RaiseRule::Narrow && !universe.is_uniform_capacity();
        for (t, nd) in self.beta.iter().enumerate() {
            let edges = universe.num_edges(NetworkId::new(t));
            if nd.beta.dense.len() != edges {
                return Err(format!(
                    "network {t}: dual state has {} beta entries, universe has {edges} edges",
                    nd.beta.dense.len()
                ));
            }
            if nd.weighted.is_some() != mirror {
                return Err(format!(
                    "network {t}: weighted mirror tree {} but the rule/capacity \
                     setting requires it to be {}",
                    if nd.weighted.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                    if mirror { "present" } else { "absent" },
                ));
            }
            if let Some(w) = &nd.weighted {
                if w.dense.len() != edges {
                    return Err(format!(
                        "network {t}: dual state has {} weighted entries, \
                         universe has {edges} edges",
                        w.dense.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ToJson for DualState {
    fn to_json(&self) -> JsonValue {
        let networks = self
            .beta
            .iter()
            .map(|nd| {
                JsonValue::object(vec![
                    ("beta", nd.beta.to_json()),
                    (
                        "weighted",
                        nd.weighted
                            .as_ref()
                            .map(Fenwick::to_json)
                            .unwrap_or(JsonValue::Null),
                    ),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("rule", self.rule.to_json()),
            (
                "alpha",
                JsonValue::Array(self.alpha.iter().map(|&x| JsonValue::num(x)).collect()),
            ),
            ("networks", JsonValue::Array(networks)),
        ])
    }
}

impl FromJson for DualState {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let rule = RaiseRule::from_json(value.field("rule")?)?;
        let alpha = value
            .field("alpha")?
            .as_array()?
            .iter()
            .map(JsonValue::as_f64)
            .collect::<Result<Vec<_>, _>>()?;
        let beta = value
            .field("networks")?
            .as_array()?
            .iter()
            .map(|nd| {
                Ok(NetworkDuals {
                    beta: Fenwick::from_json(nd.field("beta")?)?,
                    weighted: match nd.field("weighted")? {
                        JsonValue::Null => None,
                        doc => Some(Fenwick::from_json(doc)?),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self { alpha, beta, rule })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, two_tree_problem};
    use netsched_graph::EdgeId;

    #[test]
    fn unit_raise_makes_constraint_tight() {
        let u = two_tree_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let d = InstanceId::new(0);
        assert_eq!(duals.lhs(&u, d), 0.0);
        assert!(!duals.is_xi_satisfied(&u, d, 0.5));
        let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
        let pi = &path[..path.len().min(2)];
        let delta = duals.raise(&u, d, pi);
        assert!(delta > 0.0);
        let lhs = duals.lhs(&u, d);
        assert!((lhs - u.profit(d)).abs() < 1e-9, "constraint must be tight");
        assert!(duals.is_xi_satisfied(&u, d, 1.0));
        // Raising again does nothing.
        assert_eq!(duals.raise(&u, d, pi), 0.0);
    }

    #[test]
    fn narrow_raise_makes_constraint_tight() {
        let u = figure1_line_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Narrow);
        for d in u.instance_ids() {
            let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
            let pi: Vec<EdgeId> = vec![path[0], path[path.len() / 2], path[path.len() - 1]];
            let mut pi = pi;
            pi.sort_unstable();
            pi.dedup();
            duals.raise(&u, d, &pi);
            assert!(
                (duals.lhs(&u, d) - u.profit(d)).abs() < 1e-9,
                "narrow raise must tighten the constraint"
            );
        }
        assert!((duals.achieved_lambda(&u) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn raising_one_instance_helps_overlapping_ones() {
        let u = figure1_line_problem().universe();
        // A (instance 0) and B (instance 1) overlap on timeslots 3, 4.
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let shared = EdgeId::new(3);
        duals.raise(&u, InstanceId::new(0), &[shared]);
        assert!(duals.lhs(&u, InstanceId::new(1)) > 0.0);
        // C (instance 2) is disjoint from A and its demand differs, so its
        // LHS is untouched.
        assert_eq!(duals.lhs(&u, InstanceId::new(2)), 0.0);
    }

    #[test]
    fn objective_counts_alpha_and_beta() {
        let u = two_tree_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let d = InstanceId::new(0);
        let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
        let delta = duals.raise(&u, d, &path[..1]);
        // One alpha and one beta raised by delta each.
        assert!((duals.objective() - 2.0 * delta).abs() < 1e-12);
        assert!(duals.scaled_upper_bound(0.5) >= duals.objective());
    }

    #[test]
    fn same_demand_instances_share_alpha() {
        let u = two_tree_problem().universe();
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        duals.raise(&u, insts[0], &[]);
        // Raising with an empty critical set dumps the whole slack into
        // alpha, which also appears in the sibling instance's constraint.
        assert!(duals.lhs(&u, insts[1]) > 0.0);
        assert!((duals.lhs(&u, insts[1]) - u.profit(insts[0])).abs() < 1e-9);
    }

    #[test]
    fn dual_state_roundtrips_through_json() {
        let u = figure1_line_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Narrow);
        for d in u.instance_ids() {
            let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
            duals.raise(&u, d, &path[..path.len().min(2)]);
        }
        let text = duals.to_json().render();
        let back = DualState::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        back.validate_shape(&u).unwrap();
        assert_eq!(back.rule(), duals.rule());
        // Point values roundtrip bit-exactly; range sums are re-accumulated
        // and may differ only in the last bits.
        for d in u.instance_ids() {
            let demand = u.instance(d).demand;
            assert_eq!(back.alpha(demand).to_bits(), duals.alpha(demand).to_bits());
            for e in u.instance(d).path.iter() {
                let net = u.instance(d).network;
                assert_eq!(back.beta(net, e).to_bits(), duals.beta(net, e).to_bits());
            }
            assert!((back.lhs(&u, d) - duals.lhs(&u, d)).abs() < 1e-12);
        }
        assert!((back.objective() - duals.objective()).abs() < 1e-12);
    }

    #[test]
    fn dual_state_shape_validation_rejects_mismatches() {
        let u = figure1_line_problem().universe();
        let duals = DualState::new(&u, RaiseRule::Unit);
        duals.validate_shape(&u).unwrap();
        let other = two_tree_problem().universe();
        assert!(duals.validate_shape(&other).is_err());
    }

    #[test]
    fn relative_heights_under_capacities() {
        use netsched_graph::{TreeProblem, VertexId};
        let mut p = TreeProblem::new(3);
        let t = p
            .add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        p.add_demand(VertexId(0), VertexId(2), 1.0, 0.6, vec![t])
            .unwrap();
        p.set_capacity(t, 0, 2.0).unwrap();
        let u = p.universe();
        let d = InstanceId::new(0);
        // Edge 0 has capacity 2 ⇒ relative height 0.3; edge 1 capacity 1 ⇒ 0.6.
        assert!((DualState::max_relative_height(&u, d) - 0.6).abs() < 1e-12);
        let mut duals = DualState::new(&u, RaiseRule::Narrow);
        duals.raise(&u, d, &[EdgeId::new(0), EdgeId::new(1)]);
        assert!((duals.lhs(&u, d) - 1.0).abs() < 1e-9);
    }
}
