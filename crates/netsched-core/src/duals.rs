//! The dual variables `α(a)`, `β(e)` and their bookkeeping (Section 3.1 and
//! Section 6.1).
//!
//! The primal LP selects demand instances subject to per-edge capacity and
//! one-instance-per-demand constraints; its dual has a variable `α(a)` per
//! demand and `β(e)` per (network, edge) pair, and one covering constraint
//! per demand instance. The two-phase framework manipulates an (infeasible)
//! dual assignment whose scaled version certifies the approximation bound
//! via weak duality.
//!
//! The `β` variables are stored in per-network **Fenwick trees**: a raise
//! performs `|π(d)| ≤ ∆` point updates, and the constraint LHS
//! `Σ_{e ∼ d} β(e)` is evaluated as one range sum per interval run of
//! `path(d)` — `O(runs · log E)` instead of `O(path length)`, which is what
//! makes the first phase sublinear in the instance lengths.

use crate::config::RaiseRule;
use netsched_graph::{DemandInstanceUniverse, InstanceId, NetworkId};

/// A Fenwick (binary indexed) tree over `f64` with point updates and
/// prefix/range sums, plus a dense mirror so single-point reads stay `O(1)`
/// (the capacitated narrow path reads `β(e)` edge by edge).
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<f64>,
    dense: Vec<f64>,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Self {
            tree: vec![0.0; len + 1],
            dense: vec![0.0; len],
        }
    }

    /// Adds `delta` at index `i`.
    fn add(&mut self, i: usize, delta: f64) {
        self.dense[i] += delta;
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the first `i` entries (`[0, i)`).
    fn prefix(&self, i: usize) -> f64 {
        let mut i = i.min(self.tree.len() - 1);
        let mut sum = 0.0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum over the inclusive index range `[lo, hi]`.
    #[inline]
    fn range(&self, lo: usize, hi: usize) -> f64 {
        self.prefix(hi + 1) - self.prefix(lo)
    }

    /// Value at a single index (`O(1)` via the dense mirror).
    #[inline]
    fn point(&self, i: usize) -> f64 {
        self.dense[i]
    }

    /// Sum of all entries.
    #[inline]
    fn total(&self) -> f64 {
        self.prefix(self.tree.len() - 1)
    }
}

/// The dual assignment `⟨α, β⟩`.
#[derive(Debug, Clone)]
pub struct DualState {
    /// `α(a)` per demand.
    alpha: Vec<f64>,
    /// `β(e)` per network, as a Fenwick tree over the edge indices.
    beta: Vec<Fenwick>,
    /// Which constraint form / raise rule is in effect.
    rule: RaiseRule,
}

impl DualState {
    /// Creates the all-zero dual assignment for a universe.
    pub fn new(universe: &DemandInstanceUniverse, rule: RaiseRule) -> Self {
        let beta = (0..universe.num_networks())
            .map(|t| Fenwick::new(universe.num_edges(NetworkId::new(t))))
            .collect();
        Self {
            alpha: vec![0.0; universe.num_demands()],
            beta,
            rule,
        }
    }

    /// The raise rule this state was created with.
    #[inline]
    pub fn rule(&self) -> RaiseRule {
        self.rule
    }

    /// `α(a)`.
    #[inline]
    pub fn alpha(&self, demand: netsched_graph::DemandId) -> f64 {
        self.alpha[demand.index()]
    }

    /// `β(e)` for edge `e` of network `t`.
    #[inline]
    pub fn beta(&self, network: NetworkId, edge: netsched_graph::EdgeId) -> f64 {
        self.beta[network.index()].point(edge.index())
    }

    /// The *relative height* of instance `d` on edge `e`: `h(d) / c(e)`.
    /// Equal to `h(d)` in the uniform-capacity setting of the arXiv text.
    fn relative_height(
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        edge: netsched_graph::EdgeId,
    ) -> f64 {
        let inst = universe.instance(d);
        inst.height / universe.capacity(netsched_graph::GlobalEdge::new(inst.network, edge))
    }

    /// The maximum relative height of `d` over its path (`ĥ(d)`); equals
    /// `h(d)` under uniform capacities, where it is answered in `O(1)`.
    pub fn max_relative_height(universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        let inst = universe.instance(d);
        if universe.is_uniform_capacity() {
            return inst.height;
        }
        inst.path
            .iter()
            .map(|e| Self::relative_height(universe, d, e))
            .fold(0.0, f64::max)
    }

    /// The left-hand side of the dual constraint of `d`:
    /// `α(a_d) + Σ_{e ∼ d} β(e)` under [`RaiseRule::Unit`], and
    /// `α(a_d) + Σ_{e ∼ d} (h(d)/c(e)) · β(e)` under [`RaiseRule::Narrow`].
    ///
    /// Evaluated as one Fenwick range sum per interval run of `path(d)`
    /// (`O(runs · log E)`); only the capacitated narrow case falls back to
    /// per-edge point queries, because there every edge carries its own
    /// `h(d)/c(e)` weight.
    pub fn lhs(&self, universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        let inst = universe.instance(d);
        let betas = &self.beta[inst.network.index()];
        let mut sum = self.alpha[inst.demand.index()];
        match self.rule {
            RaiseRule::Unit => {
                for run in inst.path.runs() {
                    sum += betas.range(run.start as usize, run.end as usize);
                }
            }
            RaiseRule::Narrow if universe.is_uniform_capacity() => {
                // h(d)/c(e) = h(d) on every edge: factor it out of the sum.
                let mut beta_sum = 0.0;
                for run in inst.path.runs() {
                    beta_sum += betas.range(run.start as usize, run.end as usize);
                }
                sum += inst.height * beta_sum;
            }
            RaiseRule::Narrow => {
                for e in inst.path.iter() {
                    sum += Self::relative_height(universe, d, e) * betas.point(e.index());
                }
            }
        }
        sum
    }

    /// The slack `s = p(d) − LHS` of the dual constraint of `d` (clamped to
    /// zero from below).
    pub fn slack(&self, universe: &DemandInstanceUniverse, d: InstanceId) -> f64 {
        (universe.profit(d) - self.lhs(universe, d)).max(0.0)
    }

    /// Returns `true` if `d` is ξ-satisfied: `LHS ≥ ξ · p(d)` (Section 3.2).
    pub fn is_xi_satisfied(
        &self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        xi: f64,
    ) -> bool {
        self.lhs(universe, d) + netsched_graph::EPS >= xi * universe.profit(d)
    }

    /// The largest `λ` for which every instance is λ-satisfied; this is the
    /// slackness parameter reported at the end of the first phase.
    pub fn achieved_lambda(&self, universe: &DemandInstanceUniverse) -> f64 {
        universe
            .instance_ids()
            .map(|d| self.lhs(universe, d) / universe.profit(d))
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Raises instance `d` so that its dual constraint becomes tight, using
    /// the critical edges `pi` and the state's raise rule. Returns the raise
    /// amount `δ(d)`.
    pub fn raise(
        &mut self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        pi: &[netsched_graph::EdgeId],
    ) -> f64 {
        self.raise_with_options(universe, d, pi, true)
    }

    /// Like [`DualState::raise`] but optionally skipping the `α` variable.
    ///
    /// Appendix A notes that with a single tree-network (one instance per
    /// demand) the `α` variables are unnecessary and dropping them improves
    /// the sequential ratio from 3 to 2; in that mode
    /// `δ = s / |π(d)|` and only the `β` variables are raised.
    pub fn raise_with_options(
        &mut self,
        universe: &DemandInstanceUniverse,
        d: InstanceId,
        pi: &[netsched_graph::EdgeId],
        include_alpha: bool,
    ) -> f64 {
        let inst = universe.instance(d);
        let s = self.slack(universe, d);
        if s <= 0.0 {
            return 0.0;
        }
        let k = pi.len() as f64;
        match self.rule {
            RaiseRule::Unit => {
                let denom = if include_alpha { k + 1.0 } else { k.max(1.0) };
                let delta = s / denom;
                if include_alpha {
                    self.alpha[inst.demand.index()] += delta;
                }
                for &e in pi {
                    debug_assert!(inst.path.contains(e), "critical edges must lie on the path");
                    self.beta[inst.network.index()].add(e.index(), delta);
                }
                delta
            }
            RaiseRule::Narrow => {
                // δ is chosen so that the constraint becomes exactly tight:
                // the LHS gains δ from α plus Σ_{e∈π} (h/c(e)) · 2kδ from the
                // β variables. Under uniform capacities this is the paper's
                // δ = s / (1 + 2·h(d)·|π(d)|²).
                let rel_sum: f64 = pi
                    .iter()
                    .map(|&e| Self::relative_height(universe, d, e))
                    .sum();
                let delta = s / (1.0 + 2.0 * k * rel_sum);
                self.alpha[inst.demand.index()] += delta;
                for &e in pi {
                    debug_assert!(inst.path.contains(e), "critical edges must lie on the path");
                    self.beta[inst.network.index()].add(e.index(), 2.0 * k * delta);
                }
                delta
            }
        }
    }

    /// The dual objective `Σ_a α(a) + Σ_e β(e)` of the current assignment.
    pub fn objective(&self) -> f64 {
        self.alpha.iter().sum::<f64>() + self.beta.iter().map(Fenwick::total).sum::<f64>()
    }

    /// An upper bound on the optimal profit obtained by scaling the dual
    /// assignment by `1/λ` (weak duality, proof of Lemma 3.1). Only valid
    /// when every instance is λ-satisfied — pass
    /// [`DualState::achieved_lambda`] or a lower value.
    pub fn scaled_upper_bound(&self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "lambda must be positive");
        self.objective() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, two_tree_problem};
    use netsched_graph::EdgeId;

    #[test]
    fn unit_raise_makes_constraint_tight() {
        let u = two_tree_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let d = InstanceId::new(0);
        assert_eq!(duals.lhs(&u, d), 0.0);
        assert!(!duals.is_xi_satisfied(&u, d, 0.5));
        let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
        let pi = &path[..path.len().min(2)];
        let delta = duals.raise(&u, d, pi);
        assert!(delta > 0.0);
        let lhs = duals.lhs(&u, d);
        assert!((lhs - u.profit(d)).abs() < 1e-9, "constraint must be tight");
        assert!(duals.is_xi_satisfied(&u, d, 1.0));
        // Raising again does nothing.
        assert_eq!(duals.raise(&u, d, pi), 0.0);
    }

    #[test]
    fn narrow_raise_makes_constraint_tight() {
        let u = figure1_line_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Narrow);
        for d in u.instance_ids() {
            let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
            let pi: Vec<EdgeId> = vec![path[0], path[path.len() / 2], path[path.len() - 1]];
            let mut pi = pi;
            pi.sort_unstable();
            pi.dedup();
            duals.raise(&u, d, &pi);
            assert!(
                (duals.lhs(&u, d) - u.profit(d)).abs() < 1e-9,
                "narrow raise must tighten the constraint"
            );
        }
        assert!((duals.achieved_lambda(&u) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn raising_one_instance_helps_overlapping_ones() {
        let u = figure1_line_problem().universe();
        // A (instance 0) and B (instance 1) overlap on timeslots 3, 4.
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let shared = EdgeId::new(3);
        duals.raise(&u, InstanceId::new(0), &[shared]);
        assert!(duals.lhs(&u, InstanceId::new(1)) > 0.0);
        // C (instance 2) is disjoint from A and its demand differs, so its
        // LHS is untouched.
        assert_eq!(duals.lhs(&u, InstanceId::new(2)), 0.0);
    }

    #[test]
    fn objective_counts_alpha_and_beta() {
        let u = two_tree_problem().universe();
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        let d = InstanceId::new(0);
        let path: Vec<EdgeId> = u.instance(d).path.iter().collect();
        let delta = duals.raise(&u, d, &path[..1]);
        // One alpha and one beta raised by delta each.
        assert!((duals.objective() - 2.0 * delta).abs() < 1e-12);
        assert!(duals.scaled_upper_bound(0.5) >= duals.objective());
    }

    #[test]
    fn same_demand_instances_share_alpha() {
        let u = two_tree_problem().universe();
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        let mut duals = DualState::new(&u, RaiseRule::Unit);
        duals.raise(&u, insts[0], &[]);
        // Raising with an empty critical set dumps the whole slack into
        // alpha, which also appears in the sibling instance's constraint.
        assert!(duals.lhs(&u, insts[1]) > 0.0);
        assert!((duals.lhs(&u, insts[1]) - u.profit(insts[0])).abs() < 1e-9);
    }

    #[test]
    fn relative_heights_under_capacities() {
        use netsched_graph::{TreeProblem, VertexId};
        let mut p = TreeProblem::new(3);
        let t = p
            .add_network(vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap();
        p.add_demand(VertexId(0), VertexId(2), 1.0, 0.6, vec![t])
            .unwrap();
        p.set_capacity(t, 0, 2.0).unwrap();
        let u = p.universe();
        let d = InstanceId::new(0);
        // Edge 0 has capacity 2 ⇒ relative height 0.3; edge 1 capacity 1 ⇒ 0.6.
        assert!((DualState::max_relative_height(&u, d) - 0.6).abs() < 1e-12);
        let mut duals = DualState::new(&u, RaiseRule::Narrow);
        duals.raise(&u, d, &[EdgeId::new(0), EdgeId::new(1)]);
        assert!((duals.lhs(&u, d) - 1.0).abs() < 1e-9);
    }
}
