//! The scheduling algorithms of "Distributed Algorithms for Scheduling on
//! Line and Tree Networks" (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
//! IPPS 2013), behind a unified [`Solver`] trait and a cached [`Scheduler`]
//! session API.
//!
//! # Architecture
//!
//! All six of the paper's algorithms are instantiations of one two-phase
//! primal-dual engine, [`framework::run_two_phase`], over a demand-instance
//! universe (`netsched-graph`), a layered decomposition (`netsched-decomp`)
//! and the distributed MIS substrate (`netsched-distrib`); they differ only
//! in the layering and the raise rule. The [`solver`] module lifts each of
//! them into a [`Solver`] implementation, and [`Scheduler`] provides the
//! session: it builds the universe, the layerings and the wide/narrow split
//! **once** and reuses them across repeated solves with different `ε`,
//! [`RaiseRule`] or seeds.
//!
//! # The dispatch table
//!
//! [`Scheduler::solve`] auto-selects the paper algorithm from the instance
//! shape (see [`Scheduler::auto_solver`]):
//!
//! | shape | heights | solver | paper result | guarantee |
//! |---|---|---|---|---|
//! | tree | all wide (`h > 1/2`, incl. unit) | [`UnitTreeSolver`] | Theorem 5.3 | `7/(1−ε)` |
//! | tree | all narrow (`h ≤ 1/2`) | [`NarrowTreeSolver`] | Lemma 6.2 | `73/(1−ε)` |
//! | tree | mixed | [`ArbitraryTreeSolver`] | Theorem 6.3 | `80/(1−ε)` |
//! | line | all wide | [`LineUnitSolver`] | Theorem 7.1 | `4/(1−ε)` |
//! | line | all narrow | [`LineNarrowSolver`] | Section 7 (narrow) | `19/(1−ε)` |
//! | line | mixed | [`LineArbitrarySolver`] | Theorem 7.2 | `23/(1−ε)` |
//!
//! [`SequentialTreeSolver`] (Appendix A, sequential `3`-approximation) is in
//! the [`registry`] but never auto-selected: it trades polylogarithmic round
//! complexity for the better constant.
//!
//! The historical free functions ([`solve_unit_tree`],
//! [`solve_line_arbitrary`], …) remain as thin wrappers that create a
//! single-call session and delegate to the corresponding solver.
//!
//! Every solution carries a dual certificate: `diagnostics.optimum_upper_bound`
//! is a valid upper bound on the optimum (weak duality), so
//! [`solution::Solution::certified_ratio`] is an instance-specific,
//! machine-checked approximation ratio.
//!
//! The capacitated ("non-uniform bandwidths") extension of the IPPS version
//! is supported throughout: per-edge capacities of the
//! [`netsched_graph::TreeProblem`] are honoured by feasibility checks and by
//! the dual constraints via relative heights `h(d)/c(e)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod budget;
pub mod config;
pub mod duals;
pub mod framework;
pub mod line;
pub mod sequential;
pub mod solution;
pub mod solver;
pub mod tree;
pub mod warm;

pub use analysis::{run_two_phase_traced, StepRecord, Trace};
pub use budget::{Budget, CertificateQuality, RoundCalibration};
pub use config::{approximation_bound, stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
pub use duals::DualState;
pub use framework::{
    check_interference_property, run_two_phase, run_two_phase_on, run_two_phase_on_budgeted,
    run_two_phase_reference,
};
pub use line::{
    solve_line_arbitrary, solve_line_arbitrary_on, solve_line_narrow, solve_line_narrow_on,
    solve_line_unit, solve_line_unit_on,
};
pub use sequential::{run_sequential, solve_sequential_on, solve_sequential_tree};
pub use solution::{RunDiagnostics, Solution};
pub use solver::{
    combine_wide_narrow, registry, solve_wide_narrow_on, solve_wide_narrow_on_budgeted,
    ArbitraryTreeSolver, BuildCounts, EngineHalf, HalfOutcome, LineArbitrarySolver,
    LineNarrowSolver, LineUnitSolver, NarrowTreeSolver, Portfolio, PortfolioRun, Problem,
    ProblemKind, Scheduler, SequentialTreeSolver, SolveContext, Solver, SplitPart, UnitTreeSolver,
};
pub use tree::{
    solve_arbitrary_tree, solve_arbitrary_tree_on, solve_narrow_tree, solve_narrow_tree_on,
    solve_unit_tree, solve_unit_tree_on, subproblem,
};
pub use warm::{
    run_two_phase_warm_on, run_two_phase_warm_on_budgeted, run_two_phase_warm_overlapped, WarmState,
};
