//! The scheduling algorithms of "Distributed Algorithms for Scheduling on
//! Line and Tree Networks" (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
//! IPPS 2013).
//!
//! The crate is organized around a single generic engine,
//! [`framework::run_two_phase`], which implements the two-phase primal-dual
//! framework of Section 3.2 on top of a demand-instance universe
//! (`netsched-graph`), a layered decomposition (`netsched-decomp`) and the
//! distributed MIS substrate (`netsched-distrib`). The concrete algorithms
//! differ only in which layering and raise rule they pass in:
//!
//! | Entry point | Paper result | Guarantee |
//! |---|---|---|
//! | [`tree::solve_unit_tree`] | Theorem 5.3 | `(7 + ε)` |
//! | [`tree::solve_narrow_tree`] | Lemma 6.2 | `(73 + ε)` |
//! | [`tree::solve_arbitrary_tree`] | Theorem 6.3 | `(80 + ε)` |
//! | [`line::solve_line_unit`] | Theorem 7.1 | `(4 + ε)` |
//! | [`line::solve_line_arbitrary`] | Theorem 7.2 | `(23 + ε)` |
//! | [`sequential::solve_sequential_tree`] | Appendix A | `3` (sequential) |
//!
//! Every solution carries a dual certificate: `diagnostics.optimum_upper_bound`
//! is a valid upper bound on the optimum (weak duality), so
//! [`solution::Solution::certified_ratio`] is an instance-specific,
//! machine-checked approximation ratio.
//!
//! The capacitated ("non-uniform bandwidths") extension of the IPPS version
//! is supported throughout: per-edge capacities of the
//! [`netsched_graph::TreeProblem`] are honoured by feasibility checks and by
//! the dual constraints via relative heights `h(d)/c(e)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod config;
pub mod duals;
pub mod framework;
pub mod line;
pub mod sequential;
pub mod solution;
pub mod tree;

pub use analysis::{run_two_phase_traced, StepRecord, Trace};
pub use config::{approximation_bound, stage_xi, stages_per_epoch, AlgorithmConfig, RaiseRule};
pub use duals::DualState;
pub use framework::{check_interference_property, run_two_phase};
pub use line::{solve_line_arbitrary, solve_line_narrow, solve_line_unit};
pub use sequential::solve_sequential_tree;
pub use solution::{RunDiagnostics, Solution};
pub use tree::{solve_arbitrary_tree, solve_narrow_tree, solve_unit_tree, subproblem};
