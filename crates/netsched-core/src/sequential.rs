//! The sequential algorithm of Appendix A.
//!
//! Root every tree network arbitrarily, order the demand instances of each
//! network by decreasing depth of their capture node `µ(d)`, and raise them
//! one at a time (singleton independent sets) with `π(d)` = the wings of
//! `µ(d)` — so `∆ = 2` and `λ = 1`, giving a 3-approximation by Lemma 3.1.
//! With a single tree network (one instance per demand) the `α` variables
//! can be dropped, improving the ratio to 2 (the algorithm of Lewin-Eytan,
//! Naor and Orda).

use crate::config::RaiseRule;
use crate::duals::DualState;
use crate::solution::{RunDiagnostics, Solution};
use netsched_decomp::InstanceLayering;
use netsched_distrib::RoundStats;
use netsched_graph::{
    DemandInstanceUniverse, InstanceId, LoadTracker, NetworkId, TreeProblem, EPS,
};

/// Runs the Appendix A sequential algorithm on a tree problem (unit-height
/// semantics: selected paths on a network must be edge-disjoint; with the
/// capacitated extension, per-edge capacities are still respected in the
/// second phase).
///
/// The returned instance ids refer to `problem.universe()`. Delegates
/// through a [`crate::Scheduler`] session, so the universe and the
/// Appendix A layering are built exactly once.
pub fn solve_sequential_tree(problem: &TreeProblem) -> Solution {
    crate::Scheduler::for_tree(problem).solve_with(
        &crate::SequentialTreeSolver,
        &crate::AlgorithmConfig::default(),
    )
}

/// As [`solve_sequential_tree`] but reusing an already-built universe
/// (which must be `problem.universe()`).
pub fn solve_sequential_on(problem: &TreeProblem, universe: &DemandInstanceUniverse) -> Solution {
    if universe.num_instances() == 0 {
        return Solution::empty();
    }
    let layering = InstanceLayering::appendix_a(problem, universe);
    run_sequential(universe, &layering)
}

/// The Appendix A engine over a prebuilt wings-only layering — the single
/// code path behind [`solve_sequential_tree`], [`solve_sequential_on`] and
/// [`crate::SequentialTreeSolver`].
pub fn run_sequential(universe: &DemandInstanceUniverse, layering: &InstanceLayering) -> Solution {
    if universe.num_instances() == 0 {
        return Solution::empty();
    }
    // Single-tree optimization: when every demand has exactly one instance,
    // the α variables are unnecessary (Appendix A, last paragraph).
    let single_instance_per_demand = (0..universe.num_demands()).all(|a| {
        universe
            .instances_of_demand(netsched_graph::DemandId::new(a))
            .len()
            <= 1
    });

    let mut duals = DualState::new(universe, RaiseRule::Unit);
    let mut stats = RoundStats::new();
    let mut stack: Vec<InstanceId> = Vec::new();

    // First phase: process the networks one after the other; within a
    // network, process instances by increasing group index (deepest capture
    // node first). Raising an instance only increases the LHS of later
    // constraints, so a single pass in σ order suffices.
    for q in 0..universe.num_networks() {
        let network = NetworkId::new(q);
        let mut order: Vec<InstanceId> = universe.instances_on_network(network).to_vec();
        order.sort_by_key(|&d| (layering.group(d), d));
        for d in order {
            if duals.is_xi_satisfied(universe, d, 1.0) {
                continue;
            }
            duals.raise_with_options(
                universe,
                d,
                layering.critical(d),
                !single_instance_per_demand,
            );
            stack.push(d);
            stats.record_round();
            stats.record_messages(1, layering.critical(d).len() as u64 + 1);
        }
    }

    // Second phase: reverse order, greedy feasibility with incremental
    // congestion tracking (O(path(d)) per candidate).
    let mut tracker = LoadTracker::new(universe);
    let mut selected: Vec<InstanceId> = Vec::new();
    for &d in stack.iter().rev() {
        if tracker.try_commit(universe, d) {
            selected.push(d);
        }
        stats.record_round();
    }
    selected.sort_unstable();

    let lambda = universe
        .instance_ids()
        .map(|d| duals.lhs(universe, d) / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS);
    let dual_objective = duals.objective();
    let profit = universe.total_profit(&selected);
    let raised = stack.len() as u64;
    let mut raised_instances = stack;
    raised_instances.sort_unstable();

    Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: universe.num_networks(),
            stages_per_epoch: 1,
            steps: raised,
            max_steps_per_stage: raised,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
            quality: crate::budget::CertificateQuality::Full,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure6_problem, paper_vertex, two_tree_problem};
    use netsched_graph::VertexId;

    #[test]
    fn figure6_sequential_solution_is_feasible_and_good() {
        let p = figure6_problem();
        let u = p.universe();
        let sol = solve_sequential_tree(&p);
        sol.verify(&u).unwrap();
        // Demands: ⟨4,13⟩ (profit 3), ⟨2,3⟩ (profit 2), ⟨12,13⟩ (profit 1).
        // ⟨4,13⟩ and ⟨12,13⟩ overlap (edge (8,13)); ⟨2,3⟩ overlaps ⟨4,13⟩ on
        // edge (1,2)? The path of ⟨2,3⟩ is 2-1-3 and of ⟨4,13⟩ is 4-2-5-8-13:
        // they share only vertex 2, no edge, so they are compatible. The
        // optimum is {⟨4,13⟩, ⟨2,3⟩} with profit 5.
        assert!(sol.profit >= 4.0, "profit {} too low", sol.profit);
        assert!(sol.diagnostics.delta <= 2);
        assert!((sol.diagnostics.lambda - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_tree_runs_without_alpha_and_reaches_optimum_here() {
        // A path graph with three demands: two short disjoint ones and one
        // long overlapping both. Profits make the two short ones optimal.
        let mut p = TreeProblem::new(7);
        let t = p
            .add_network(
                (0..6)
                    .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
                    .collect(),
            )
            .unwrap();
        p.add_unit_demand(VertexId(0), VertexId(3), 3.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(3), VertexId(6), 3.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(0), VertexId(6), 4.0, vec![t])
            .unwrap();
        let u = p.universe();
        let sol = solve_sequential_tree(&p);
        sol.verify(&u).unwrap();
        assert!(
            (sol.profit - 6.0).abs() < 1e-9,
            "expected the two short demands"
        );
    }

    #[test]
    fn multi_tree_sequential_matches_lemma_3_1() {
        let p = two_tree_problem();
        let u = p.universe();
        let sol = solve_sequential_tree(&p);
        sol.verify(&u).unwrap();
        let d = sol.diagnostics;
        assert!(
            sol.profit * (d.delta as f64 + 1.0) + 1e-6 >= d.dual_objective,
            "Lemma 3.1 inequality violated"
        );
        // 3-approximation certificate.
        assert!(sol.certified_ratio().unwrap() <= 3.0 + 1e-6);
    }

    #[test]
    fn sequential_respects_captured_order() {
        // Two nested demands on a path: the inner (deeper capture) one is
        // raised first, so with equal profits the second phase prefers it.
        let mut p = TreeProblem::new(9);
        let t = p
            .add_network(
                (0..8)
                    .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
                    .collect(),
            )
            .unwrap();
        p.add_unit_demand(VertexId(3), VertexId(5), 1.0, vec![t])
            .unwrap(); // inner
        p.add_unit_demand(VertexId(1), VertexId(8), 1.0, vec![t])
            .unwrap(); // outer
        let u = p.universe();
        let sol = solve_sequential_tree(&p);
        sol.verify(&u).unwrap();
        assert_eq!(sol.len(), 1);
        // With λ = 1 and equal profits the inner demand is tight first and
        // survives the stack-based second phase.
        let chosen = u.instance(sol.selected[0]).demand;
        assert_eq!(chosen.index(), 0, "the inner demand should win");
    }

    #[test]
    fn figure6_capture_points_drive_grouping() {
        // Sanity: the demand ⟨4, 13⟩ is captured at vertex 2 in the
        // root-fixing decomposition rooted at vertex 1 (Appendix A example),
        // so it is processed after demands captured deeper in the tree.
        let p = figure6_problem();
        let u = p.universe();
        let layering = InstanceLayering::appendix_a(&p, &u);
        // Instance 0 is ⟨4,13⟩ (captured at 2, depth 2); instance 2 is
        // ⟨12,13⟩ (captured at 8, depth 4). Deeper capture ⇒ smaller group.
        assert!(layering.group(InstanceId::new(2)) < layering.group(InstanceId::new(0)));
        let _ = paper_vertex(2); // documentation anchor
    }
}
