//! The distributed algorithms for tree networks (Sections 5 and 6).
//!
//! * [`solve_unit_tree`] — the main result (Theorem 5.3): a `(7 + ε)`-
//!   approximation for the unit-height case, using the ideal tree
//!   decomposition (∆ = 6) and slackness `λ = 1 − ε`.
//! * [`solve_narrow_tree`] — the `(73 + ε)`-approximation for inputs whose
//!   demands are all narrow (Lemma 6.2).
//! * [`solve_arbitrary_tree`] — the `(80 + ε)`-approximation for arbitrary
//!   heights (Theorem 6.3): wide demands are handled by the unit-height
//!   algorithm, narrow demands by the narrow algorithm, and per network the
//!   more profitable of the two schedules is kept.
//!
//! Every function here is a thin wrapper over the [`crate::Scheduler`]
//! session API: the algorithm bodies live in the [`crate::Solver`]
//! implementations ([`crate::UnitTreeSolver`], [`crate::NarrowTreeSolver`],
//! [`crate::ArbitraryTreeSolver`]), and the session guarantees that the
//! universe, the layered decomposition and the wide/narrow split are each
//! built exactly once per call (or reused entirely with the `_on`
//! variants). All returned instance ids refer to `problem.universe()`.

use crate::config::AlgorithmConfig;
use crate::solution::Solution;
use crate::solver::{ArbitraryTreeSolver, NarrowTreeSolver, Scheduler, UnitTreeSolver};
use netsched_graph::{Demand, DemandId, DemandInstanceUniverse, NetworkId, TreeProblem};

/// Theorem 5.3: the distributed `(7 + ε)`-approximation for the unit-height
/// case of tree networks. Also used for the *wide* instances of the
/// arbitrary-height case (two overlapping wide instances can never be
/// scheduled together, so unit-height reasoning applies).
///
/// ```
/// use netsched_core::{solve_unit_tree, AlgorithmConfig};
/// use netsched_graph::{TreeProblem, VertexId};
///
/// // A 4-vertex path shared by two conflicting transfers.
/// let mut problem = TreeProblem::new(4);
/// let t = problem.add_network(vec![
///     (VertexId(0), VertexId(1)),
///     (VertexId(1), VertexId(2)),
///     (VertexId(2), VertexId(3)),
/// ]).unwrap();
/// problem.add_unit_demand(VertexId(0), VertexId(2), 3.0, vec![t]).unwrap();
/// problem.add_unit_demand(VertexId(1), VertexId(3), 2.0, vec![t]).unwrap();
///
/// let solution = solve_unit_tree(&problem, &AlgorithmConfig::deterministic(0.1));
/// let universe = problem.universe();
/// solution.verify(&universe).unwrap();
/// // Only one of the two overlapping demands fits; the certificate bounds OPT.
/// assert_eq!(solution.len(), 1);
/// assert!(solution.diagnostics.optimum_upper_bound >= 3.0);
/// ```
pub fn solve_unit_tree(problem: &TreeProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_tree(problem).solve_with(&UnitTreeSolver, config)
}

/// As [`solve_unit_tree`] but reusing an already built `problem.universe()`.
pub fn solve_unit_tree_on(
    problem: &TreeProblem,
    universe: &DemandInstanceUniverse,
    config: &AlgorithmConfig,
) -> Solution {
    Scheduler::for_tree_with_universe(problem, universe).solve_with(&UnitTreeSolver, config)
}

/// Lemma 6.2: the distributed `(73 + ε)`-approximation for tree networks
/// whose demands are all narrow (`h(a) ≤ 1/2`).
pub fn solve_narrow_tree(problem: &TreeProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_tree(problem).solve_with(&NarrowTreeSolver, config)
}

/// As [`solve_narrow_tree`] but reusing an already built
/// `problem.universe()`.
pub fn solve_narrow_tree_on(
    problem: &TreeProblem,
    universe: &DemandInstanceUniverse,
    config: &AlgorithmConfig,
) -> Solution {
    Scheduler::for_tree_with_universe(problem, universe).solve_with(&NarrowTreeSolver, config)
}

/// Theorem 6.3: the distributed `(80 + ε)`-approximation for tree networks
/// with arbitrary heights.
///
/// The demands are partitioned into wide (`h > 1/2`) and narrow
/// (`h ≤ 1/2`); the unit-height algorithm schedules the wide ones, the
/// narrow algorithm the narrow ones, and for every network the more
/// profitable of the two per-network schedules is kept.
pub fn solve_arbitrary_tree(problem: &TreeProblem, config: &AlgorithmConfig) -> Solution {
    Scheduler::for_tree(problem).solve_with(&ArbitraryTreeSolver, config)
}

/// As [`solve_arbitrary_tree`] but reusing an already built
/// `problem.universe()`.
pub fn solve_arbitrary_tree_on(
    problem: &TreeProblem,
    universe: &DemandInstanceUniverse,
    config: &AlgorithmConfig,
) -> Solution {
    Scheduler::for_tree_with_universe(problem, universe).solve_with(&ArbitraryTreeSolver, config)
}

/// Builds the sub-problem containing only the demands selected by `keep`
/// (networks and capacities are copied verbatim). Returns the sub-problem
/// and the mapping from its demand indices to the original demand ids.
pub fn subproblem<F: Fn(&Demand) -> bool>(
    problem: &TreeProblem,
    keep: F,
) -> (TreeProblem, Vec<DemandId>) {
    let mut sub = TreeProblem::new(problem.num_vertices());
    for t in 0..problem.num_networks() {
        let network = problem.network(NetworkId::new(t));
        let edges = network.edges().map(|(_, uv)| uv).collect();
        let id = sub
            .add_network(edges)
            .expect("copied network must be valid");
        for (e, &cap) in problem.capacities(NetworkId::new(t)).iter().enumerate() {
            if (cap - 1.0).abs() > f64::EPSILON {
                sub.set_capacity(id, e, cap)
                    .expect("copied capacity must be valid");
            }
        }
    }
    let mut map = Vec::new();
    for demand in problem.demands() {
        if keep(demand) {
            sub.add_demand(
                demand.u,
                demand.v,
                demand.profit,
                demand.height,
                problem.access(demand.id).to_vec(),
            )
            .expect("copied demand must be valid");
            map.push(demand.id);
        }
    }
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{approximation_bound, RaiseRule};
    use netsched_graph::fixtures::figure6_problem;
    use netsched_graph::VertexId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, n: usize, r: usize, m: usize, unit: bool) -> TreeProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            let height = if unit { 1.0 } else { rng.gen_range(0.05..=1.0) };
            p.add_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..32.0),
                height,
                access,
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn unit_tree_theorem_5_3_certificate() {
        for seed in 0..3u64 {
            let p = random_problem(seed, 30, 3, 25, true);
            let u = p.universe();
            let cfg = AlgorithmConfig::deterministic(0.1);
            let sol = solve_unit_tree(&p, &cfg);
            sol.verify(&u).unwrap();
            assert!(sol.diagnostics.delta <= 6, "Lemma 4.3: ∆ ≤ 6");
            // The certified ratio must respect the (7 + ε) bound.
            let bound = approximation_bound(RaiseRule::Unit, 6, 1.0 - 0.1);
            assert!(
                sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6,
                "certified ratio exceeds 7/(1−ε)"
            );
        }
    }

    #[test]
    fn narrow_tree_lemma_6_2_certificate() {
        for seed in 0..3u64 {
            let mut p = random_problem(seed, 25, 2, 20, true);
            // Rebuild with narrow heights.
            let mut narrow = TreeProblem::new(p.num_vertices());
            for t in 0..p.num_networks() {
                let edges = p
                    .network(NetworkId::new(t))
                    .edges()
                    .map(|(_, uv)| uv)
                    .collect();
                narrow.add_network(edges).unwrap();
            }
            let mut rng = StdRng::seed_from_u64(seed + 100);
            for d in p.demands() {
                narrow
                    .add_demand(
                        d.u,
                        d.v,
                        d.profit,
                        rng.gen_range(0.05..=0.5),
                        p.access(d.id).to_vec(),
                    )
                    .unwrap();
            }
            p = narrow;
            let u = p.universe();
            let sol = solve_narrow_tree(&p, &AlgorithmConfig::deterministic(0.1));
            sol.verify(&u).unwrap();
            let bound = approximation_bound(RaiseRule::Narrow, sol.diagnostics.delta, 0.9);
            assert!(sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6);
        }
    }

    #[test]
    fn arbitrary_tree_theorem_6_3() {
        for seed in 0..3u64 {
            let p = random_problem(seed, 25, 3, 30, false);
            let u = p.universe();
            let sol = solve_arbitrary_tree(&p, &AlgorithmConfig::deterministic(0.1));
            sol.verify(&u).unwrap();
            assert!(sol.profit > 0.0);
            // The combined certificate (ub_wide + ub_narrow) must be within
            // the (80 + ε) guarantee of the combined profit... in fact the
            // paper's analysis gives p(S) ≥ max(p(S1), p(S2)) ≥
            // (OPT1 + OPT2)/(80 + 2ε) ≥ OPT/(80 + 2ε).
            let ratio = sol.certified_ratio().unwrap();
            assert!(
                ratio <= (80.0 + 2.0) / 0.9 + 1e-6,
                "certified ratio {ratio} exceeds the Theorem 6.3 bound"
            );
        }
    }

    #[test]
    fn arbitrary_tree_on_unit_heights_degenerates_to_unit_algorithm() {
        let p = figure6_problem();
        let u = p.universe();
        let arb = solve_arbitrary_tree(&p, &AlgorithmConfig::deterministic(0.1));
        let unit = solve_unit_tree(&p, &AlgorithmConfig::deterministic(0.1));
        arb.verify(&u).unwrap();
        unit.verify(&u).unwrap();
        // All demands are wide (height 1), so the narrow half is empty and
        // the combined solution equals the wide one.
        assert_eq!(arb.selected, unit.selected);
    }

    #[test]
    fn subproblem_splits_and_maps_back() {
        let p = random_problem(5, 20, 2, 15, false);
        let (wide, wide_map) = subproblem(&p, |d| d.is_wide());
        let (narrow, narrow_map) = subproblem(&p, |d| d.is_narrow());
        assert_eq!(wide.num_demands() + narrow.num_demands(), p.num_demands());
        assert_eq!(wide.num_networks(), p.num_networks());
        for (new_idx, &old) in wide_map.iter().enumerate() {
            assert!(p.demand(old).is_wide());
            assert_eq!(
                wide.demand(DemandId::new(new_idx)).profit,
                p.demand(old).profit
            );
        }
        for &old in &narrow_map {
            assert!(p.demand(old).is_narrow());
        }
    }

    #[test]
    fn wide_and_narrow_never_mix_on_a_network_in_the_combined_solution() {
        let p = random_problem(9, 20, 3, 30, false);
        let u = p.universe();
        let sol = solve_arbitrary_tree(&p, &AlgorithmConfig::deterministic(0.15));
        for t in 0..u.num_networks() {
            let on_t = sol.on_network(&u, NetworkId::new(t));
            let wide = on_t.iter().filter(|&&d| u.instance(d).is_wide()).count();
            let narrow = on_t.len() - wide;
            assert!(
                wide == 0 || narrow == 0,
                "network {t} mixes wide and narrow instances"
            );
        }
    }
}
