//! The tree-decomposition structure `H` of Section 4.1.
//!
//! A tree decomposition of a tree network `T` is a rooted tree `H` over the
//! same vertex set such that
//!
//! 1. for any demand instance `d`, if `path(d)` passes through `x` and `y`
//!    then it also passes through `LCA_H(x, y)`, and
//! 2. for every node `z`, the set `C(z)` (`z` plus its descendants in `H`)
//!    induces a connected subtree of `T`.
//!
//! Its two quality parameters are the *depth* (root has depth 1, following
//! the paper) and the *pivot size* `θ` — the maximum number of neighbours of
//! any `C(z)` in `T`.

use crate::component;
use netsched_graph::{EdgePath, LcaIndex, NetworkId, TreeNetwork, VertexId};

/// A rooted tree `H` over the vertex set of a tree network, intended to be a
/// tree decomposition of that network.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    network: NetworkId,
    root: VertexId,
    /// Parent of each vertex in `H`; `None` only for the root.
    parent: Vec<Option<VertexId>>,
    /// Depth in `H`; the root has depth 1 (paper convention).
    depth: Vec<u32>,
    /// Children lists.
    children: Vec<Vec<VertexId>>,
    lca: Option<LcaIndex>,
}

impl TreeDecomposition {
    /// Builds a decomposition from a parent array (the root is the unique
    /// vertex with no parent). Panics if the parent array does not describe
    /// a rooted tree covering all vertices.
    pub fn from_parents(network: NetworkId, parent: Vec<Option<VertexId>>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut root = None;
        for (v, p) in parent.iter().enumerate() {
            match p {
                Some(p) => children[p.index()].push(VertexId::new(v)),
                None => {
                    assert!(root.is_none(), "tree decomposition must have a single root");
                    root = Some(VertexId::new(v));
                }
            }
        }
        let root = root.expect("tree decomposition must have a root");

        // Compute depths by BFS from the root; also verifies connectivity.
        let mut depth = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        depth[root.index()] = 1;
        queue.push_back(root);
        let mut count = 0usize;
        while let Some(u) = queue.pop_front() {
            count += 1;
            for &c in &children[u.index()] {
                depth[c.index()] = depth[u.index()] + 1;
                queue.push_back(c);
            }
        }
        assert_eq!(
            count, n,
            "parent array must describe a connected rooted tree"
        );

        let zero_based: Vec<u32> = depth.iter().map(|d| d - 1).collect();
        let lca = LcaIndex::new(&parent, &zero_based);
        Self {
            network,
            root,
            parent,
            depth,
            children,
            lca: Some(lca),
        }
    }

    /// Rebuilds the (non-serialized) LCA index after deserialization.
    pub fn ensure_index(&mut self) {
        if self.lca.is_none() {
            let zero_based: Vec<u32> = self.depth.iter().map(|d| d - 1).collect();
            self.lca = Some(LcaIndex::new(&self.parent, &zero_based));
        }
    }

    fn lca_index(&self) -> &LcaIndex {
        self.lca
            .as_ref()
            .expect("LCA index missing; call ensure_index() after deserialization")
    }

    /// The network this decomposition was built for.
    #[inline]
    pub fn network(&self) -> NetworkId {
        self.network
    }

    /// The root `g` of `H`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// Depth of `v` in `H` (root has depth 1).
    #[inline]
    pub fn depth_of(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// Maximum depth over all vertices (the paper's `ℓ`).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Parent of `v` in `H`.
    #[inline]
    pub fn parent_of(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// Children of `v` in `H`.
    #[inline]
    pub fn children_of(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// Lowest common ancestor of `u` and `v` in `H`.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        self.lca_index().lca(u, v)
    }

    /// Returns `true` if `anc` is an ancestor of `v` in `H` or equal to it.
    pub fn is_ancestor_or_self(&self, anc: VertexId, v: VertexId) -> bool {
        self.lca_index().is_ancestor_or_self(anc, v)
    }

    /// The component `C(z)`: `z` together with its descendants in `H`.
    pub fn component_of(&self, z: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![z];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u.index()].iter().copied());
        }
        out
    }

    /// The node `µ(d)` at which a demand instance with the given path
    /// vertices is *captured*: the least-depth vertex of the path in `H`
    /// (Section 4.4). The first property of tree decompositions guarantees
    /// it is unique.
    pub fn captured_at(&self, path_vertices: &[VertexId]) -> VertexId {
        *path_vertices
            .iter()
            .min_by_key(|v| self.depth[v.index()])
            .expect("a demand path has at least two vertices")
    }

    /// Computes the pivot set `χ(z) = Γ[C(z)]` for every vertex.
    ///
    /// Implementation note: a vertex `b` belongs to `χ(x)` exactly when some
    /// tree edge `(a, b)` has `a ∈ C(x)` and `b ∉ C(x)`, i.e. when `x` is an
    /// ancestor-or-self of `a` in `H` but not of `b`. Those `x` are precisely
    /// the vertices on the `H`-path from `a` up to (excluding)
    /// `LCA_H(a, b)`, so every tree edge contributes to at most
    /// `depth(H)` pivot sets and the whole computation takes
    /// `O(n · depth(H))`.
    pub fn pivot_sets(&self, tree: &TreeNetwork) -> Vec<Vec<VertexId>> {
        let n = self.num_vertices();
        let mut pivots: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (_, (a, b)) in tree.edges() {
            for (from, other) in [(a, b), (b, a)] {
                let stop = self.lca(a, b);
                let mut x = from;
                while x != stop {
                    pivots[x.index()].push(other);
                    match self.parent[x.index()] {
                        Some(p) => x = p,
                        None => break,
                    }
                }
            }
        }
        for p in &mut pivots {
            p.sort_unstable();
            p.dedup();
        }
        pivots
    }

    /// The pivot size `θ`: maximum cardinality of `χ(z)` over all vertices.
    pub fn pivot_size(&self, tree: &TreeNetwork) -> usize {
        self.pivot_sets(tree)
            .iter()
            .map(|p| p.len())
            .max()
            .unwrap_or(0)
    }

    /// Checks both defining properties of tree decompositions against the
    /// underlying tree network. Intended for tests and debug assertions
    /// (`O(n^2 log n)`).
    pub fn is_valid_for(&self, tree: &TreeNetwork) -> bool {
        if tree.num_vertices() != self.num_vertices() {
            return false;
        }
        // Property (ii): C(z) induces a connected subtree for every z.
        for v in tree.vertices() {
            let comp = self.component_of(v);
            if !component::is_connected_subtree(tree, &comp) {
                return false;
            }
        }
        // Property (i): for every pair (x, y), the T-path between them
        // passes through LCA_H(x, y). (Demand paths are a subset of all
        // vertex pairs, so checking all pairs is sufficient and demand-free.)
        for x in tree.vertices() {
            for y in tree.vertices() {
                if x >= y {
                    continue;
                }
                let l = self.lca(x, y);
                if !tree.path_passes_through(x, y, l) {
                    return false;
                }
            }
        }
        true
    }

    /// The *wings* of a vertex `y` on a path: the edges of the path incident
    /// to `y` (one if `y` is an end-point of the path, two otherwise);
    /// Section 4.4.
    pub fn wings_on_path(
        tree: &TreeNetwork,
        path: &EdgePath,
        y: VertexId,
    ) -> Vec<netsched_graph::EdgeId> {
        tree.neighbors(y)
            .iter()
            .filter(|&&(_, e)| path.contains(e))
            .map(|&(_, e)| e)
            .collect()
    }

    /// The *bending point* of a path with end-points `(a, b)` with respect to
    /// a vertex `u`: the unique vertex `y` on the path such that the tree
    /// path from `u` to `y` avoids every other path vertex — equivalently the
    /// median of `a`, `b`, `u` in `T` (Section 4.4).
    pub fn bending_point(tree: &TreeNetwork, a: VertexId, b: VertexId, u: VertexId) -> VertexId {
        // The median of three vertices in a tree is the pairwise LCA of
        // maximum depth (with respect to any rooting of T).
        let c1 = tree.lca(a, b);
        let c2 = tree.lca(a, u);
        let c3 = tree.lca(b, u);
        let mut best = c1;
        for c in [c2, c3] {
            if tree.depth(c) > tree.depth(best) {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure6_tree, paper_vertex};

    fn tree() -> TreeNetwork {
        figure6_tree(NetworkId::new(0))
    }

    /// The example tree decomposition of Figure 3 (paper labels):
    /// root 1; children of 1: 5, 6, 3; children of 5: 9, 8, 2;
    /// children of 9: 11, 10; children of 8: 12, 13; children of 2: 4;
    /// children of 6: 14; children of 3: 7.
    fn figure3_decomposition() -> TreeDecomposition {
        let parent_pairs = [
            (5, 1),
            (6, 1),
            (3, 1),
            (9, 5),
            (8, 5),
            (2, 5),
            (11, 9),
            (10, 9),
            (12, 8),
            (13, 8),
            (4, 2),
            (14, 6),
            (7, 3),
        ];
        let mut parent: Vec<Option<VertexId>> = vec![None; 14];
        for (c, p) in parent_pairs {
            parent[paper_vertex(c).index()] = Some(paper_vertex(p));
        }
        TreeDecomposition::from_parents(NetworkId::new(0), parent)
    }

    #[test]
    fn figure3_is_a_valid_decomposition() {
        let t = tree();
        let h = figure3_decomposition();
        assert!(h.is_valid_for(&t));
        assert_eq!(h.root(), paper_vertex(1));
        // "This tree-decomposition has depth 4 and pivot set size θ = 2."
        assert_eq!(h.max_depth(), 4);
        assert_eq!(h.pivot_size(&t), 2);
    }

    #[test]
    fn figure3_components_and_pivots_match_paper() {
        let t = tree();
        let h = figure3_decomposition();
        // C(2) = {2, 4}; χ(2) = {1, 5}.
        let mut c2 = h.component_of(paper_vertex(2));
        c2.sort_unstable();
        assert_eq!(c2, vec![paper_vertex(2), paper_vertex(4)]);
        let pivots = h.pivot_sets(&t);
        assert_eq!(
            pivots[paper_vertex(2).index()],
            vec![paper_vertex(1), paper_vertex(5)]
        );
        // χ(5) = {1}. (The paper lists C(5) without the leaves 10 and 11,
        // but they must belong to C(5) for χ(5) = {1} to hold, since both
        // are adjacent to 9 in the Figure 6 tree.)
        assert_eq!(pivots[paper_vertex(5).index()], vec![paper_vertex(1)]);
    }

    #[test]
    fn captured_at_matches_paper_example() {
        let t = tree();
        let h = figure3_decomposition();
        // The demand ⟨4, 13⟩ is captured at node 5.
        let path = t.path_vertices(paper_vertex(4), paper_vertex(13));
        assert_eq!(h.captured_at(&path), paper_vertex(5));
        // A demand within a single branch, e.g. ⟨12, 13⟩, is captured at 8.
        let path = t.path_vertices(paper_vertex(12), paper_vertex(13));
        assert_eq!(h.captured_at(&path), paper_vertex(8));
    }

    #[test]
    fn bending_points_match_paper_example() {
        let t = tree();
        // "With respect to nodes 3 and 9, the bending points of the demand
        // d = ⟨4, 13⟩ are 2 and 5, respectively." The path of ⟨4, 13⟩ is
        // 4-2-5-8-13.
        let a = paper_vertex(4);
        let b = paper_vertex(13);
        assert_eq!(
            TreeDecomposition::bending_point(&t, a, b, paper_vertex(3)),
            paper_vertex(2)
        );
        assert_eq!(
            TreeDecomposition::bending_point(&t, a, b, paper_vertex(9)),
            paper_vertex(5)
        );
        // A vertex already on the path is its own bending point.
        assert_eq!(
            TreeDecomposition::bending_point(&t, a, b, paper_vertex(8)),
            paper_vertex(8)
        );
    }

    #[test]
    fn wings_match_paper_example() {
        let t = tree();
        let a = paper_vertex(4);
        let b = paper_vertex(13);
        let path = t.path_edges(a, b);
        // "With respect to path(d), node 4 has only one wing ⟨4, 2⟩, while
        // node 8 has two wings ⟨5, 8⟩ and ⟨8, 13⟩."
        let w4 = TreeDecomposition::wings_on_path(&t, &path, paper_vertex(4));
        assert_eq!(w4.len(), 1);
        let w8 = TreeDecomposition::wings_on_path(&t, &path, paper_vertex(8));
        assert_eq!(w8.len(), 2);
        // A vertex not on the path has no wings.
        let w7 = TreeDecomposition::wings_on_path(&t, &path, paper_vertex(7));
        assert!(w7.is_empty());
    }

    #[test]
    fn pivot_sets_match_brute_force_neighbourhoods() {
        // The O(n·depth) pivot-set computation must agree with the direct
        // definition χ(z) = Γ[C(z)] computed per node from scratch, for all
        // three decomposition constructions on the Figure 6 tree.
        let t = tree();
        let decompositions = vec![
            crate::root_fixing::root_fixing_decomposition(&t, paper_vertex(1)),
            crate::balancing::balancing_decomposition(&t),
            crate::ideal::ideal_decomposition(&t),
            figure3_decomposition(),
        ];
        for h in decompositions {
            let fast = h.pivot_sets(&t);
            for z in t.vertices() {
                let comp = h.component_of(z);
                let brute = crate::component::neighbors_of(&t, &comp);
                assert_eq!(
                    fast[z.index()],
                    brute,
                    "pivot set of {z} disagrees with the brute-force neighbourhood"
                );
            }
        }
    }

    #[test]
    fn invalid_decomposition_detected() {
        let t = tree();
        // A "decomposition" rooted at a leaf whose parent structure is just
        // a path through the vertices in index order is generally not a
        // valid tree decomposition for the Figure 6 tree.
        let mut parent: Vec<Option<VertexId>> = vec![None; 14];
        for (i, slot) in parent.iter_mut().enumerate().skip(1) {
            *slot = Some(VertexId::new(i - 1));
        }
        let h = TreeDecomposition::from_parents(NetworkId::new(0), parent);
        assert!(!h.is_valid_for(&t));
    }

    #[test]
    #[should_panic(expected = "single root")]
    fn two_roots_panic() {
        let parent = vec![None, None, Some(VertexId(0))];
        let _ = TreeDecomposition::from_parents(NetworkId::new(0), parent);
    }

    #[test]
    fn ensure_index_roundtrip() {
        let mut h = figure3_decomposition();
        h.lca = None;
        h.ensure_index();
        assert_eq!(h.lca(paper_vertex(4), paper_vertex(13)), paper_vertex(5));
    }
}
