//! The balancing tree decomposition (Section 4.2).
//!
//! `BuildBalTD` recursively finds a balancer (centroid) of the current
//! component, makes it the root and recurses on the split components. The
//! resulting decomposition has depth at most `⌈log n⌉ + 1` but the pivot set
//! of a node can contain every ancestor, so `θ` can be as large as the
//! depth.

use crate::component::{find_balancer, split_component};
use crate::decomposition::TreeDecomposition;
use netsched_graph::{TreeNetwork, VertexId};

/// Builds the balancing (centroid) decomposition of `tree`.
pub fn balancing_decomposition(tree: &TreeNetwork) -> TreeDecomposition {
    let n = tree.num_vertices();
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let all: Vec<VertexId> = tree.vertices().collect();
    // (component, parent-in-H of the component's balancer)
    let mut stack: Vec<(Vec<VertexId>, Option<VertexId>)> = vec![(all, None)];
    while let Some((comp, par)) = stack.pop() {
        let z = find_balancer(tree, &comp);
        parent[z.index()] = par;
        for part in split_component(tree, &comp, z) {
            stack.push((part, Some(z)));
        }
    }
    TreeDecomposition::from_parents(tree.id(), parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::figure6_tree;
    use netsched_graph::NetworkId;

    fn ceil_log2(n: usize) -> u32 {
        (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1)
    }

    #[test]
    fn balancing_is_valid_with_logarithmic_depth() {
        let t = figure6_tree(NetworkId::new(0));
        let h = balancing_decomposition(&t);
        assert!(h.is_valid_for(&t));
        // Depth at most ⌈log n⌉ + 1 (the +1 accounts for the paper counting
        // the root at depth 1).
        assert!(h.max_depth() <= ceil_log2(t.num_vertices()) + 1);
    }

    #[test]
    fn path_graph_gets_log_depth_but_log_pivot() {
        let t = TreeNetwork::line(NetworkId::new(0), 64).unwrap();
        let h = balancing_decomposition(&t);
        assert!(h.is_valid_for(&t));
        assert!(h.max_depth() <= ceil_log2(64) + 1);
        // For a long path the pivot size grows beyond the ideal
        // decomposition's bound of 2 — this is exactly why Section 4.3
        // introduces the ideal decomposition.
        assert!(h.pivot_size(&t) >= 2);
        assert!(h.pivot_size(&t) as u32 <= h.max_depth());
    }

    #[test]
    fn star_graph_is_flat() {
        let edges = (1..32)
            .map(|i| (VertexId::new(0), VertexId::new(i)))
            .collect();
        let t = TreeNetwork::new(NetworkId::new(0), 32, edges).unwrap();
        let h = balancing_decomposition(&t);
        assert!(h.is_valid_for(&t));
        assert_eq!(h.root(), VertexId::new(0));
        assert_eq!(h.max_depth(), 2);
        assert_eq!(h.pivot_size(&t), 1);
    }

    #[test]
    fn random_caterpillar_depth_bound() {
        // A caterpillar: spine 0..=19 with a leaf attached to each spine
        // vertex.
        let mut edges: Vec<(VertexId, VertexId)> = (0..19)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        for i in 0..20 {
            edges.push((VertexId::new(i), VertexId::new(20 + i)));
        }
        let t = TreeNetwork::new(NetworkId::new(0), 40, edges).unwrap();
        let h = balancing_decomposition(&t);
        assert!(h.is_valid_for(&t));
        assert!(h.max_depth() <= ceil_log2(40) + 1);
    }
}
