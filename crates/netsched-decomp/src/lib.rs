//! Tree decompositions and layered decompositions for `netsched`.
//!
//! This crate implements Section 4 of the paper:
//!
//! * [`component`] — components of a tree network, neighbourhoods and
//!   balancers (centroids);
//! * [`decomposition::TreeDecomposition`] — the rooted tree `H` with its
//!   pivot sets, capture points `µ(d)`, wings and bending points;
//! * [`root_fixing`], [`balancing`], [`ideal`] — the three constructions of
//!   Sections 4.2 and 4.3 (the ideal decomposition achieves pivot size
//!   `θ = 2` and depth `O(log n)`, Lemma 4.1);
//! * [`layered::InstanceLayering`] — layered decompositions (Lemma 4.2 for
//!   trees with `∆ = 2(θ + 1)`, the Appendix A variant with `∆ = 2`, and the
//!   Section 7 length-class decomposition for line networks with `∆ = 3`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod balancing;
pub mod component;
pub mod decomposition;
pub mod ideal;
pub mod layered;
pub mod root_fixing;

pub use balancing::balancing_decomposition;
pub use decomposition::TreeDecomposition;
pub use ideal::{ideal_decomposition, ideal_depth_bound};
pub use layered::{line_assignment, InstanceLayering, TreeDecompositionKind, TreeLayerer};
pub use root_fixing::root_fixing_decomposition;
