//! The root-fixing tree decomposition (Section 4.2).
//!
//! Pick an arbitrary root `g` and let `H` be `T` itself rooted at `g`. Every
//! component `C(z)` is the subtree of `T` below `z`, whose single neighbour
//! is `z`'s parent, so the pivot size is `θ = 1`; the depth, however, can be
//! as large as `n`. The sequential Appendix A algorithm implicitly uses this
//! decomposition.

use crate::decomposition::TreeDecomposition;
use netsched_graph::{TreeNetwork, VertexId};

/// Builds the root-fixing decomposition of `tree` rooted at `root`.
pub fn root_fixing_decomposition(tree: &TreeNetwork, root: VertexId) -> TreeDecomposition {
    let n = tree.num_vertices();
    assert!(root.index() < n, "root out of range");
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[root.index()] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in tree.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    TreeDecomposition::from_parents(tree.id(), parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure6_tree, paper_vertex};
    use netsched_graph::NetworkId;

    #[test]
    fn root_fixing_is_valid_with_pivot_one() {
        let t = figure6_tree(NetworkId::new(0));
        let h = root_fixing_decomposition(&t, paper_vertex(1));
        assert!(h.is_valid_for(&t));
        assert_eq!(h.root(), paper_vertex(1));
        assert_eq!(h.pivot_size(&t), 1, "root-fixing decompositions have θ = 1");
        // Depth of the Figure 6 tree rooted at vertex 1 is 5 (e.g. 1-2-5-8-12).
        assert_eq!(h.max_depth(), 5);
    }

    #[test]
    fn path_graph_rooted_at_end_has_depth_n() {
        let t = TreeNetwork::line(NetworkId::new(0), 16).unwrap();
        let h = root_fixing_decomposition(&t, VertexId::new(0));
        assert!(h.is_valid_for(&t));
        assert_eq!(h.max_depth() as usize, t.num_vertices());
        assert_eq!(h.pivot_size(&t), 1);
    }

    #[test]
    fn captured_at_matches_appendix_a_example() {
        let t = figure6_tree(NetworkId::new(0));
        let h = root_fixing_decomposition(&t, paper_vertex(1));
        // Appendix A: "A rooted-tree H has been constructed by picking the
        // node 1 as the root. The demand instance d = ⟨4, 13⟩ will be
        // captured at the node µ(d) = 2."
        let path = t.path_vertices(paper_vertex(4), paper_vertex(13));
        assert_eq!(h.captured_at(&path), paper_vertex(2));
        // And this is exactly LCA_T(4, 13) for the same rooting (vertex 0 of
        // the TreeNetwork is paper vertex 1).
        assert_eq!(t.lca(paper_vertex(4), paper_vertex(13)), paper_vertex(2));
    }
}
