//! Components of a tree network and balancer (centroid) computation.
//!
//! Section 4 of the paper works with *components*: vertex subsets that
//! induce a connected subtree of a tree network. The two operations needed
//! by the decomposition constructions are
//!
//! * splitting a component by one of its nodes (`split_component`), and
//! * finding a *balancer* — a node whose removal splits the component into
//!   pieces of size at most `⌊|C|/2⌋` (`find_balancer`). This is the classic
//!   tree centroid; the paper observes that one always exists.

use netsched_graph::{TreeNetwork, VertexId};

/// Returns `true` if `comp` induces a non-empty connected subtree of `tree`.
pub fn is_connected_subtree(tree: &TreeNetwork, comp: &[VertexId]) -> bool {
    if comp.is_empty() {
        return false;
    }
    let n = tree.num_vertices();
    let mut member = vec![false; n];
    for &v in comp {
        if v.index() >= n || member[v.index()] {
            return false; // out of range or duplicate
        }
        member[v.index()] = true;
    }
    // BFS restricted to members.
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[comp[0].index()] = true;
    queue.push_back(comp[0]);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &(v, _) in tree.neighbors(u) {
            if member[v.index()] && !visited[v.index()] {
                visited[v.index()] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == comp.len()
}

/// The neighbourhood `Γ[C]` of a component: vertices outside `comp` adjacent
/// (in `tree`) to some vertex of `comp`. The result is sorted and unique.
pub fn neighbors_of(tree: &TreeNetwork, comp: &[VertexId]) -> Vec<VertexId> {
    let n = tree.num_vertices();
    let mut member = vec![false; n];
    for &v in comp {
        member[v.index()] = true;
    }
    let mut out = Vec::new();
    let mut added = vec![false; n];
    for &v in comp {
        for &(w, _) in tree.neighbors(v) {
            if !member[w.index()] && !added[w.index()] {
                added[w.index()] = true;
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Splits component `comp` by node `z ∈ comp`: returns the vertex sets of
/// the connected components of the induced subtree after deleting `z`
/// (Section 4.2 "the node z splits C into components C1, ..., Cs").
///
/// The union of the returned components is `comp − {z}`; the result may be
/// empty when `comp == {z}`.
pub fn split_component(tree: &TreeNetwork, comp: &[VertexId], z: VertexId) -> Vec<Vec<VertexId>> {
    let n = tree.num_vertices();
    let mut member = vec![false; n];
    for &v in comp {
        member[v.index()] = true;
    }
    assert!(member[z.index()], "split node must belong to the component");
    member[z.index()] = false;

    let mut visited = vec![false; n];
    let mut out = Vec::new();
    // Each component of C − {z} contains exactly one neighbour of z, so we
    // can seed the BFS from z's neighbours.
    for &(start, _) in tree.neighbors(z) {
        if !member[start.index()] || visited[start.index()] {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        let mut part = Vec::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            part.push(u);
            for &(v, _) in tree.neighbors(u) {
                if member[v.index()] && !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        out.push(part);
    }
    out
}

/// Finds a *balancer* (centroid) of the component: a node `z ∈ comp` such
/// that every component of `comp − {z}` has at most `⌊|comp|/2⌋` vertices.
///
/// The paper's "following observation is easy to prove: any component
/// contains a balancer"; this is the standard centroid argument, computed
/// here by one DFS over the induced subtree in `O(|comp|)` time (after the
/// `O(n)` membership scratch setup).
pub fn find_balancer(tree: &TreeNetwork, comp: &[VertexId]) -> VertexId {
    assert!(
        !comp.is_empty(),
        "cannot find a balancer of an empty component"
    );
    let n = tree.num_vertices();
    let mut member = vec![false; n];
    for &v in comp {
        member[v.index()] = true;
    }
    let total = comp.len();
    let root = comp[0];

    // Iterative post-order DFS computing induced-subtree sizes.
    let mut size = vec![0usize; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut order = Vec::with_capacity(total);
    let mut stack = vec![root];
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &(v, _) in tree.neighbors(u) {
            if member[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                stack.push(v);
            }
        }
    }
    for &u in order.iter().rev() {
        size[u.index()] += 1;
        if let Some(p) = parent[u.index()] {
            size[p.index()] += size[u.index()];
        }
    }

    // The centroid is the vertex whose maximum split-component size is
    // minimal; it always satisfies the ⌊total/2⌋ bound.
    let mut best = root;
    let mut best_max = usize::MAX;
    for &u in &order {
        let mut max_part = total - size[u.index()];
        for &(v, _) in tree.neighbors(u) {
            if member[v.index()] && parent[v.index()] == Some(u) {
                max_part = max_part.max(size[v.index()]);
            }
        }
        if max_part < best_max {
            best_max = max_part;
            best = u;
        }
    }
    debug_assert!(
        best_max <= total / 2,
        "centroid bound violated: {best_max} > {}",
        total / 2
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::figure6_tree;
    use netsched_graph::NetworkId;

    fn vids(ids: &[usize]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId::new(i)).collect()
    }

    fn tree() -> TreeNetwork {
        figure6_tree(NetworkId::new(0))
    }

    #[test]
    fn connectivity_check() {
        let t = tree();
        // Paper vertices 5, 2, 4 (indices 4, 1, 3) form a path — connected.
        assert!(is_connected_subtree(&t, &vids(&[4, 1, 3])));
        // Paper vertices 4 and 13 (indices 3, 12) are not adjacent.
        assert!(!is_connected_subtree(&t, &vids(&[3, 12])));
        // Duplicates and empty sets are rejected.
        assert!(!is_connected_subtree(&t, &vids(&[3, 3])));
        assert!(!is_connected_subtree(&t, &[]));
        // The whole vertex set is connected.
        let all: Vec<VertexId> = t.vertices().collect();
        assert!(is_connected_subtree(&t, &all));
    }

    #[test]
    fn neighbors_match_paper_example() {
        let t = tree();
        // Section 4.1: C(2) = {2, 4} (indices 1, 3) has pivot set {1, 5}
        // (indices 0, 4).
        let nb = neighbors_of(&t, &vids(&[1, 3]));
        assert_eq!(nb, vids(&[0, 4]));
        // Neighbours of the set {5, 9, 8, 2, 12, 13, 4} (indices 4, 8, 7, 1,
        // 11, 12, 3) are {1, 10, 11} (indices 0, 9, 10): vertex 1 via the
        // edge (1, 2) and the leaves 10, 11 via vertex 9.
        let nb = neighbors_of(&t, &vids(&[4, 8, 7, 1, 11, 12, 3]));
        assert_eq!(nb, vids(&[0, 9, 10]));
    }

    #[test]
    fn split_by_node() {
        let t = tree();
        let all: Vec<VertexId> = t.vertices().collect();
        // Splitting the whole tree by paper vertex 1 (index 0) gives the
        // subtrees rooted at paper vertices 5, 6, 3.
        let parts = split_component(&t, &all, VertexId::new(0));
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = parts.iter().map(|p| p.len()).collect();
            s.sort_unstable();
            s
        };
        // Branch via 3: {3, 7} → 2; via 6: {6, 14} → 2; via 5: 9 vertices.
        assert_eq!(sizes, vec![2, 2, 9]);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, all.len() - 1);
        for p in &parts {
            assert!(is_connected_subtree(&t, p));
        }
    }

    #[test]
    fn split_singleton_component() {
        let t = tree();
        let parts = split_component(&t, &vids(&[3]), VertexId::new(3));
        assert!(parts.is_empty());
    }

    #[test]
    fn balancer_respects_half_bound() {
        let t = tree();
        let all: Vec<VertexId> = t.vertices().collect();
        let z = find_balancer(&t, &all);
        let parts = split_component(&t, &all, z);
        for p in &parts {
            assert!(
                p.len() <= all.len() / 2,
                "balancer {z} leaves a part of size {} > {}",
                p.len(),
                all.len() / 2
            );
        }
    }

    #[test]
    fn balancer_of_path_is_middle() {
        let t = TreeNetwork::line(NetworkId::new(0), 9).unwrap();
        let all: Vec<VertexId> = t.vertices().collect();
        let z = find_balancer(&t, &all);
        // For a path of 9 vertices the centroid is the middle vertex.
        assert_eq!(z, VertexId::new(4));
    }

    #[test]
    fn balancer_of_star_is_center() {
        // Star: center 0, leaves 1..=6.
        let edges = (1..7)
            .map(|i| (VertexId::new(0), VertexId::new(i)))
            .collect();
        let t = TreeNetwork::new(NetworkId::new(0), 7, edges).unwrap();
        let all: Vec<VertexId> = t.vertices().collect();
        assert_eq!(find_balancer(&t, &all), VertexId::new(0));
    }

    #[test]
    fn balancer_of_sub_component() {
        let t = tree();
        // The component of paper vertices {5, 9, 8, 2, 12, 13, 4, 10, 11}
        // (the subtree hanging off vertex 1 via 5).
        let comp = vids(&[4, 8, 7, 1, 11, 12, 3, 9, 10]);
        assert!(is_connected_subtree(&t, &comp));
        let z = find_balancer(&t, &comp);
        let parts = split_component(&t, &comp, z);
        for p in &parts {
            assert!(p.len() <= comp.len() / 2);
        }
        // The natural centroid of that subtree is paper vertex 5 (index 4).
        assert_eq!(z, VertexId::new(4));
    }
}
