//! Layered decompositions (Section 4.4 and Section 7).
//!
//! A layered decomposition of the demand instances of a network is a pair
//! `⟨σ, π⟩`: an assignment of every instance to a group `G_1, …, G_ℓ` plus a
//! set of *critical edges* `π(d) ⊆ path(d)` per instance, such that for any
//! overlapping instances `d1 ∈ G_i`, `d2 ∈ G_j` with `i ≤ j`, `path(d2)`
//! contains a critical edge of `d1`. The two quality parameters are the
//! critical-set size `∆ = max |π(d)|` and the length `ℓ`.
//!
//! [`InstanceLayering`] stores a layered decomposition for an entire
//! [`DemandInstanceUniverse`] (all networks merged, exactly as the
//! distributed algorithm of Section 5 merges the per-network groups
//! `G_k = ∪_q G_k^{(q)}`).

use crate::balancing::balancing_decomposition;
use crate::decomposition::TreeDecomposition;
use crate::ideal::ideal_decomposition;
use crate::root_fixing::root_fixing_decomposition;
use netsched_graph::{
    DemandInstanceUniverse, EdgeId, EdgePath, InstanceId, NetworkId, TreeNetwork, TreeProblem,
    VertexId,
};

/// Which tree decomposition to use when layering a tree problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeDecompositionKind {
    /// Root-fixing decomposition (θ = 1, depth up to n), Section 4.2.
    RootFixing,
    /// Balancing/centroid decomposition (depth ≈ log n, θ up to log n),
    /// Section 4.2.
    Balancing,
    /// The ideal decomposition (θ = 2, depth ≤ 2⌈log n⌉), Section 4.3.
    Ideal,
}

/// A layered decomposition over all instances of a universe.
#[derive(Debug, Clone)]
pub struct InstanceLayering {
    group: Vec<usize>,
    critical: Vec<Vec<EdgeId>>,
    num_groups: usize,
    max_critical: usize,
}

impl InstanceLayering {
    /// Builds a layering from explicit per-instance groups and critical
    /// sets.
    pub fn from_parts(group: Vec<usize>, critical: Vec<Vec<EdgeId>>) -> Self {
        assert_eq!(group.len(), critical.len());
        let num_groups = group.iter().map(|g| g + 1).max().unwrap_or(0);
        let max_critical = critical.iter().map(|c| c.len()).max().unwrap_or(0);
        Self {
            group,
            critical,
            num_groups,
            max_critical,
        }
    }

    /// Lemma 4.2: transforms per-network tree decompositions into a layered
    /// decomposition with `∆ ≤ 2(θ + 1)`.
    ///
    /// Instances captured at the **deepest** nodes land in the first groups,
    /// instances captured at the roots in the last, and the per-network
    /// groups with the same index are merged (`G_k = ∪_q G_k^{(q)}`,
    /// Section 5).
    pub fn from_tree_decompositions(
        problem: &TreeProblem,
        universe: &DemandInstanceUniverse,
        decompositions: &[TreeDecomposition],
    ) -> Self {
        TreeLayerer::from_decompositions(problem, decompositions.to_vec())
            .layering(problem, universe)
    }

    /// Builds the layering for a tree problem using the chosen tree
    /// decomposition for every network. [`TreeDecompositionKind::Ideal`]
    /// yields the paper's ∆ = 6, length O(log n) decomposition (Lemma 4.3).
    pub fn for_tree_problem(
        problem: &TreeProblem,
        universe: &DemandInstanceUniverse,
        kind: TreeDecompositionKind,
    ) -> Self {
        TreeLayerer::new(problem, kind).layering(problem, universe)
    }

    /// The Appendix A layering: root-fixing decomposition per network with
    /// `π(d)` being only the wings of `µ(d)` (Observation A.1), giving
    /// `∆ = 2` at the price of up to `n` groups.
    pub fn appendix_a(problem: &TreeProblem, universe: &DemandInstanceUniverse) -> Self {
        let decomps: Vec<TreeDecomposition> = problem
            .networks()
            .iter()
            .map(|t| root_fixing_decomposition(t, VertexId::new(0)))
            .collect();
        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let tree = problem.network(inst.network);
            let h = &decomps[inst.network.index()];
            let demand = problem.demand(inst.demand);
            let path_vertices = tree.path_vertices(demand.u, demand.v);
            let z = h.captured_at(&path_vertices);
            group[inst.id.index()] = (h.max_depth() - h.depth_of(z)) as usize;
            critical[inst.id.index()] = TreeDecomposition::wings_on_path(tree, &inst.path, z);
        }
        Self::from_parts(group, critical)
    }

    /// The line-network layering of Section 7: length classes with
    /// `π(d) = {s(d), mid(d), e(d)}` and therefore `∆ = 3`,
    /// `ℓ = ⌈log(L_max/L_min)⌉ + 1`.
    ///
    /// The universe must consist of line instances (contiguous paths); this
    /// is the case for every universe produced by
    /// [`netsched_graph::LineProblem::universe`].
    pub fn line_length_classes(universe: &DemandInstanceUniverse) -> Self {
        let l_min = universe
            .instances()
            .map(|d| d.len())
            .min()
            .unwrap_or(1)
            .max(1);
        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let (g, c) = line_assignment(l_min, &inst.path);
            group[inst.id.index()] = g;
            critical[inst.id.index()] = c;
        }
        Self::from_parts(group, critical)
    }

    /// Group index (0-based) of instance `d`.
    #[inline]
    pub fn group(&self, d: InstanceId) -> usize {
        self.group[d.index()]
    }

    /// Critical edges `π(d)` of instance `d` (edges of the instance's own
    /// network).
    #[inline]
    pub fn critical(&self, d: InstanceId) -> &[EdgeId] {
        &self.critical[d.index()]
    }

    /// Number of groups (`ℓ_max`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Maximum critical-set size (`∆`).
    #[inline]
    pub fn max_critical(&self) -> usize {
        self.max_critical
    }

    /// The instances of each group, in group order.
    pub fn groups(&self) -> Vec<Vec<InstanceId>> {
        let mut out = vec![Vec::new(); self.num_groups];
        for (i, &g) in self.group.iter().enumerate() {
            out[g].push(InstanceId::new(i));
        }
        out
    }

    /// Splices the layering in place after a universe splice
    /// (`DemandInstanceUniverse::apply_demand_delta`): survivors keep their
    /// per-instance assignment under the compacted ids given by `remap`
    /// (old id → new id, `u32::MAX` = removed; must be monotone on
    /// survivors, which the universe splice guarantees), and `additions`
    /// supplies the `(group, critical)` assignment of every appended
    /// instance in id order.
    ///
    /// Per-instance assignments are position-independent (they depend only
    /// on the instance's own path and its network's decomposition), so the
    /// spliced layering is byte-identical to a from-scratch build over the
    /// new universe — at `O(|D|)` splice cost instead of a
    /// `O(path)`-per-instance re-assignment.
    pub fn splice(&mut self, remap: &[u32], additions: Vec<(usize, Vec<EdgeId>)>) {
        assert_eq!(
            remap.len(),
            self.group.len(),
            "remap must cover the layering"
        );
        let mut w = 0usize;
        for (r, &m) in remap.iter().enumerate() {
            if m != u32::MAX {
                debug_assert_eq!(m as usize, w, "remap must be a stable compaction");
                self.group.swap(w, r);
                self.critical.swap(w, r);
                w += 1;
            }
        }
        self.group.truncate(w);
        self.critical.truncate(w);
        for (group, critical) in additions {
            self.group.push(group);
            self.critical.push(critical);
        }
        self.num_groups = self.group.iter().map(|g| g + 1).max().unwrap_or(0);
        self.max_critical = self.critical.iter().map(|c| c.len()).max().unwrap_or(0);
    }

    /// Verifies the defining property of layered decompositions against a
    /// universe: for any overlapping `d1 ∈ G_i`, `d2 ∈ G_j` with `i ≤ j`,
    /// `path(d2)` contains a critical edge of `d1`, and `π(d) ⊆ path(d)` for
    /// every instance. Returns the first violation found.
    pub fn check_layered_property(&self, universe: &DemandInstanceUniverse) -> Result<(), String> {
        for inst in universe.instances() {
            for &e in &self.critical[inst.id.index()] {
                if !inst.path.contains(e) {
                    return Err(format!(
                        "critical edge {e} of instance {} is not on its path",
                        inst.id
                    ));
                }
            }
        }
        let ids: Vec<InstanceId> = universe.instance_ids().collect();
        for &d1 in &ids {
            for &d2 in &ids {
                if d1 == d2 || self.group[d1.index()] > self.group[d2.index()] {
                    continue;
                }
                if !universe.overlapping(d1, d2) {
                    continue;
                }
                let path2 = &universe.instance(d2).path;
                if !path2.intersects_slice(&self.critical[d1.index()]) {
                    return Err(format!(
                        "interference violated: {d1} (group {}) raised before {d2} (group {}) \
                         but path({d2}) misses π({d1})",
                        self.group[d1.index()],
                        self.group[d2.index()],
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The Section 7 per-instance line assignment: the length class of a
/// (contiguous, non-empty) instance path relative to the universe's
/// minimum instance length `l_min`, and its critical edges
/// `π(d) = {s(d), mid(d), e(d)}`.
///
/// This is the single assignment rule behind
/// [`InstanceLayering::line_length_classes`]; the dynamic serving layer
/// calls it per *arriving* instance and splices the result (recomputing the
/// whole layering only when `l_min` itself changes), so incremental and
/// from-scratch line layerings are byte-identical by construction.
pub fn line_assignment(l_min: usize, path: &EdgePath) -> (usize, Vec<EdgeId>) {
    let len = path.len().max(1);
    // Group i (0-based) holds lengths in [2^i · L_min, 2^{i+1} · L_min).
    let ratio = len / l_min;
    let group = (usize::BITS - 1 - ratio.leading_zeros()) as usize;

    // Line instances are single interval runs; the critical edges are the
    // two ends plus the midpoint, read off the bounds in O(1) without
    // touching the per-edge representation.
    let (s, e) = path.bounds().expect("line instances are non-empty");
    let mid = EdgeId::new((s.index() + e.index()) / 2);
    let mut c = vec![s, mid, e];
    c.sort_unstable();
    c.dedup();
    (group, c)
}

/// Cached per-network tree decompositions plus their pivot sets, able to
/// assign instances to layers **one at a time** — the building block of the
/// dynamic-session path, where demands arrive and expire and only the new
/// instances should pay the `O(path)` assignment cost.
///
/// Tree decompositions depend only on the (immutable) network topology, so
/// one `TreeLayerer` serves a whole session: construct it once, then call
/// [`TreeLayerer::assign`] per arriving instance and splice the results
/// into the long-lived [`InstanceLayering`] via
/// [`InstanceLayering::splice`]. The static builders
/// ([`InstanceLayering::for_tree_problem`],
/// [`InstanceLayering::from_tree_decompositions`]) route through the same
/// assignment code, so incremental and from-scratch layerings are
/// byte-identical by construction.
#[derive(Debug, Clone)]
pub struct TreeLayerer {
    decomps: Vec<TreeDecomposition>,
    pivot_sets: Vec<Vec<Vec<VertexId>>>,
}

impl TreeLayerer {
    /// Builds the decompositions of every network of `problem` with the
    /// chosen construction and caches their pivot sets.
    pub fn new(problem: &TreeProblem, kind: TreeDecompositionKind) -> Self {
        let decomps: Vec<TreeDecomposition> = problem
            .networks()
            .iter()
            .map(|t| match kind {
                TreeDecompositionKind::RootFixing => root_fixing_decomposition(t, VertexId::new(0)),
                TreeDecompositionKind::Balancing => balancing_decomposition(t),
                TreeDecompositionKind::Ideal => ideal_decomposition(t),
            })
            .collect();
        Self::from_decompositions(problem, decomps)
    }

    /// Wraps already-built decompositions (one per network of `problem`).
    pub fn from_decompositions(problem: &TreeProblem, decomps: Vec<TreeDecomposition>) -> Self {
        assert_eq!(decomps.len(), problem.num_networks());
        let pivot_sets: Vec<Vec<Vec<VertexId>>> = decomps
            .iter()
            .enumerate()
            .map(|(q, h)| h.pivot_sets(problem.network(NetworkId::new(q))))
            .collect();
        Self {
            decomps,
            pivot_sets,
        }
    }

    /// The cached decomposition of one network.
    #[inline]
    pub fn decomposition(&self, t: NetworkId) -> &TreeDecomposition {
        &self.decomps[t.index()]
    }

    /// Assigns one instance — the demand `⟨u, v⟩` routed along `path` on
    /// `network` (a network of the problem the layerer was built from) — to
    /// its layer: returns `(group, critical edges)` exactly as the
    /// from-scratch builders would (Lemma 4.2: wings of the capture point
    /// plus wings of the bending point of every pivot).
    pub fn assign(
        &self,
        tree: &TreeNetwork,
        network: NetworkId,
        u: VertexId,
        v: VertexId,
        path: &EdgePath,
    ) -> (usize, Vec<EdgeId>) {
        let h = &self.decomps[network.index()];
        let path_vertices = tree.path_vertices(u, v);
        let z = h.captured_at(&path_vertices);

        // Group: instances captured at depth ℓ_q go to group 0, those at
        // the root (depth 1) to group ℓ_q − 1.
        let group = (h.max_depth() - h.depth_of(z)) as usize;

        // Critical edges: wings of z plus wings of the bending point with
        // respect to every pivot of z.
        let mut edges = TreeDecomposition::wings_on_path(tree, path, z);
        for &p in &self.pivot_sets[network.index()][z.index()] {
            let y = TreeDecomposition::bending_point(tree, u, v, p);
            edges.extend(TreeDecomposition::wings_on_path(tree, path, y));
        }
        edges.sort_unstable();
        edges.dedup();
        (group, edges)
    }

    /// Assigns every instance of a universe (Lemma 4.2, merging the
    /// per-network groups as `G_k = ∪_q G_k^{(q)}`).
    pub fn layering(
        &self,
        problem: &TreeProblem,
        universe: &DemandInstanceUniverse,
    ) -> InstanceLayering {
        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let demand = problem.demand(inst.demand);
            let (g, c) = self.assign(
                problem.network(inst.network),
                inst.network,
                demand.u,
                demand.v,
                &inst.path,
            );
            group[inst.id.index()] = g;
            critical[inst.id.index()] = c;
        }
        InstanceLayering::from_parts(group, critical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure6_tree, paper_vertex};
    use netsched_graph::{LineProblem, NetworkId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A tree problem over the Figure 6 tree with a mix of long and short
    /// demands.
    fn figure6_many_demands() -> TreeProblem {
        let tree = figure6_tree(NetworkId::new(0));
        let mut p = TreeProblem::new(tree.num_vertices());
        let t = p.add_tree(&tree).unwrap();
        let pairs = [
            (4, 13),
            (2, 3),
            (12, 13),
            (10, 11),
            (7, 14),
            (4, 10),
            (6, 13),
            (1, 12),
            (3, 7),
            (9, 13),
        ];
        for (i, (a, b)) in pairs.iter().enumerate() {
            p.add_unit_demand(paper_vertex(*a), paper_vertex(*b), (i + 1) as f64, vec![t])
                .unwrap();
        }
        p
    }

    fn random_tree_problem(seed: u64, n: usize, r: usize, m: usize) -> TreeProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.7)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..100.0),
                access,
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn ideal_layering_has_delta_at_most_six() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        assert!(layering.max_critical() <= 6, "Lemma 4.3: ∆ ≤ 6");
        layering.check_layered_property(&u).unwrap();
        // Length is at most the ideal decomposition depth bound.
        assert!(layering.num_groups() as u32 <= crate::ideal::ideal_depth_bound(14));
    }

    #[test]
    fn appendix_a_layering_has_delta_at_most_two() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::appendix_a(&p, &u);
        assert!(layering.max_critical() <= 2, "Observation A.1: ∆ ≤ 2");
        layering.check_layered_property(&u).unwrap();
    }

    #[test]
    fn balancing_and_root_fixing_layerings_are_valid() {
        let p = figure6_many_demands();
        let u = p.universe();
        for kind in [
            TreeDecompositionKind::RootFixing,
            TreeDecompositionKind::Balancing,
        ] {
            let layering = InstanceLayering::for_tree_problem(&p, &u, kind);
            layering.check_layered_property(&u).unwrap();
        }
    }

    #[test]
    fn random_instances_all_layerings_valid() {
        for seed in 0..5u64 {
            let p = random_tree_problem(seed, 40, 3, 25);
            let u = p.universe();
            for kind in [
                TreeDecompositionKind::RootFixing,
                TreeDecompositionKind::Balancing,
                TreeDecompositionKind::Ideal,
            ] {
                let layering = InstanceLayering::for_tree_problem(&p, &u, kind);
                layering
                    .check_layered_property(&u)
                    .unwrap_or_else(|e| panic!("seed {seed}, {kind:?}: {e}"));
                if kind == TreeDecompositionKind::Ideal {
                    assert!(layering.max_critical() <= 6);
                }
            }
            let appendix = InstanceLayering::appendix_a(&p, &u);
            appendix.check_layered_property(&u).unwrap();
            assert!(appendix.max_critical() <= 2);
        }
    }

    #[test]
    fn line_length_classes_have_delta_three_and_log_groups() {
        let mut p = LineProblem::new(64, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let len = rng.gen_range(1..=32u32);
            let release = rng.gen_range(0..=(64 - len));
            let slack = rng.gen_range(0..=(64 - release - len));
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..10.0),
                1.0,
                acc.clone(),
            )
            .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        assert!(layering.max_critical() <= 3, "Section 7: ∆ = 3");
        // ℓ ≤ ⌈log(L_max / L_min)⌉ + 1 ≤ log 64 + 1.
        assert!(layering.num_groups() <= 7);
        layering.check_layered_property(&u).unwrap();
    }

    #[test]
    fn line_groups_are_by_doubling_lengths() {
        let mut p = LineProblem::new(32, 1);
        let acc = vec![NetworkId::new(0)];
        for len in [1u32, 2, 3, 4, 7, 8, 16] {
            p.add_interval_demand(0, len, 1.0, 1.0, acc.clone())
                .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        // L_min = 1: lengths 1 → group 0; 2, 3 → group 1; 4..7 → group 2;
        // 8..15 → group 3; 16 → group 4.
        let groups: Vec<usize> = u.instance_ids().map(|d| layering.group(d)).collect();
        assert_eq!(groups, vec![0, 1, 1, 2, 2, 3, 4]);
    }

    #[test]
    fn groups_accessor_partitions_instances() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let groups = layering.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, u.num_instances());
        for (gi, g) in groups.iter().enumerate() {
            for &d in g {
                assert_eq!(layering.group(d), gi);
            }
        }
    }

    #[test]
    fn tree_layerer_assign_matches_the_batch_builder() {
        let p = figure6_many_demands();
        let u = p.universe();
        for kind in [
            TreeDecompositionKind::RootFixing,
            TreeDecompositionKind::Balancing,
            TreeDecompositionKind::Ideal,
        ] {
            let reference = InstanceLayering::for_tree_problem(&p, &u, kind);
            let layerer = TreeLayerer::new(&p, kind);
            for inst in u.instances() {
                let demand = p.demand(inst.demand);
                let (g, c) = layerer.assign(
                    p.network(inst.network),
                    inst.network,
                    demand.u,
                    demand.v,
                    &inst.path,
                );
                assert_eq!(g, reference.group(inst.id), "group of {}", inst.id);
                assert_eq!(c, reference.critical(inst.id), "critical of {}", inst.id);
            }
        }
    }

    #[test]
    fn splice_reproduces_a_from_scratch_layering() {
        let p = figure6_many_demands();
        let u = p.universe();
        let full = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);

        // Remove instances 1 and 3, append copies of instances 0 and 2's
        // assignments: the spliced layering must equal `from_parts` on the
        // same per-instance data.
        let n = u.num_instances();
        let mut remap = vec![0u32; n];
        let mut next = 0u32;
        for (i, slot) in remap.iter_mut().enumerate() {
            if i == 1 || i == 3 {
                *slot = u32::MAX;
            } else {
                *slot = next;
                next += 1;
            }
        }
        let additions: Vec<(usize, Vec<netsched_graph::EdgeId>)> = [0usize, 2]
            .iter()
            .map(|&i| {
                let d = InstanceId::new(i);
                (full.group(d), full.critical(d).to_vec())
            })
            .collect();

        let mut spliced = full.clone();
        spliced.splice(&remap, additions.clone());

        let mut group = Vec::new();
        let mut critical = Vec::new();
        for i in 0..n {
            if i != 1 && i != 3 {
                let d = InstanceId::new(i);
                group.push(full.group(d));
                critical.push(full.critical(d).to_vec());
            }
        }
        for (g, c) in additions {
            group.push(g);
            critical.push(c);
        }
        let fresh = InstanceLayering::from_parts(group, critical);
        assert_eq!(spliced.num_groups(), fresh.num_groups());
        assert_eq!(spliced.max_critical(), fresh.max_critical());
        for i in 0..n - 2 + 2 {
            let d = InstanceId::new(i);
            assert_eq!(spliced.group(d), fresh.group(d), "group of {d}");
            assert_eq!(spliced.critical(d), fresh.critical(d), "critical of {d}");
        }
    }

    #[test]
    fn check_detects_bad_layering() {
        let p = figure6_many_demands();
        let u = p.universe();
        // An adversarial layering: everything in one group with empty
        // critical sets must be rejected (the demands overlap).
        let bad = InstanceLayering::from_parts(
            vec![0; u.num_instances()],
            vec![Vec::new(); u.num_instances()],
        );
        assert!(bad.check_layered_property(&u).is_err());
        // Critical edges not on the path are also rejected.
        let mut critical = vec![Vec::new(); u.num_instances()];
        critical[0] = vec![EdgeId::new(9999)];
        let bad = InstanceLayering::from_parts(vec![0; u.num_instances()], critical);
        assert!(bad.check_layered_property(&u).is_err());
    }
}
