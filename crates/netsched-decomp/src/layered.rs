//! Layered decompositions (Section 4.4 and Section 7).
//!
//! A layered decomposition of the demand instances of a network is a pair
//! `⟨σ, π⟩`: an assignment of every instance to a group `G_1, …, G_ℓ` plus a
//! set of *critical edges* `π(d) ⊆ path(d)` per instance, such that for any
//! overlapping instances `d1 ∈ G_i`, `d2 ∈ G_j` with `i ≤ j`, `path(d2)`
//! contains a critical edge of `d1`. The two quality parameters are the
//! critical-set size `∆ = max |π(d)|` and the length `ℓ`.
//!
//! [`InstanceLayering`] stores a layered decomposition for an entire
//! [`DemandInstanceUniverse`] (all networks merged, exactly as the
//! distributed algorithm of Section 5 merges the per-network groups
//! `G_k = ∪_q G_k^{(q)}`).

use crate::balancing::balancing_decomposition;
use crate::decomposition::TreeDecomposition;
use crate::ideal::ideal_decomposition;
use crate::root_fixing::root_fixing_decomposition;
use netsched_graph::{DemandInstanceUniverse, EdgeId, InstanceId, TreeProblem, VertexId};

/// Which tree decomposition to use when layering a tree problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeDecompositionKind {
    /// Root-fixing decomposition (θ = 1, depth up to n), Section 4.2.
    RootFixing,
    /// Balancing/centroid decomposition (depth ≈ log n, θ up to log n),
    /// Section 4.2.
    Balancing,
    /// The ideal decomposition (θ = 2, depth ≤ 2⌈log n⌉), Section 4.3.
    Ideal,
}

/// A layered decomposition over all instances of a universe.
#[derive(Debug, Clone)]
pub struct InstanceLayering {
    group: Vec<usize>,
    critical: Vec<Vec<EdgeId>>,
    num_groups: usize,
    max_critical: usize,
}

impl InstanceLayering {
    /// Builds a layering from explicit per-instance groups and critical
    /// sets.
    pub fn from_parts(group: Vec<usize>, critical: Vec<Vec<EdgeId>>) -> Self {
        assert_eq!(group.len(), critical.len());
        let num_groups = group.iter().map(|g| g + 1).max().unwrap_or(0);
        let max_critical = critical.iter().map(|c| c.len()).max().unwrap_or(0);
        Self {
            group,
            critical,
            num_groups,
            max_critical,
        }
    }

    /// Lemma 4.2: transforms per-network tree decompositions into a layered
    /// decomposition with `∆ ≤ 2(θ + 1)`.
    ///
    /// Instances captured at the **deepest** nodes land in the first groups,
    /// instances captured at the roots in the last, and the per-network
    /// groups with the same index are merged (`G_k = ∪_q G_k^{(q)}`,
    /// Section 5).
    pub fn from_tree_decompositions(
        problem: &TreeProblem,
        universe: &DemandInstanceUniverse,
        decompositions: &[TreeDecomposition],
    ) -> Self {
        assert_eq!(decompositions.len(), problem.num_networks());
        let pivot_sets: Vec<Vec<Vec<VertexId>>> = decompositions
            .iter()
            .enumerate()
            .map(|(q, h)| h.pivot_sets(problem.network(netsched_graph::NetworkId::new(q))))
            .collect();

        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let tree = problem.network(inst.network);
            let h = &decompositions[inst.network.index()];
            let demand = problem.demand(inst.demand);
            let (a, b) = (demand.u, demand.v);
            let path_vertices = tree.path_vertices(a, b);
            let z = h.captured_at(&path_vertices);

            // Group: instances captured at depth ℓ_q go to group 0, those at
            // the root (depth 1) to group ℓ_q − 1.
            group[inst.id.index()] = (h.max_depth() - h.depth_of(z)) as usize;

            // Critical edges: wings of z plus wings of the bending point with
            // respect to every pivot of z.
            let mut edges = TreeDecomposition::wings_on_path(tree, &inst.path, z);
            for &u in &pivot_sets[inst.network.index()][z.index()] {
                let y = TreeDecomposition::bending_point(tree, a, b, u);
                edges.extend(TreeDecomposition::wings_on_path(tree, &inst.path, y));
            }
            edges.sort_unstable();
            edges.dedup();
            critical[inst.id.index()] = edges;
        }
        Self::from_parts(group, critical)
    }

    /// Builds the layering for a tree problem using the chosen tree
    /// decomposition for every network. [`TreeDecompositionKind::Ideal`]
    /// yields the paper's ∆ = 6, length O(log n) decomposition (Lemma 4.3).
    pub fn for_tree_problem(
        problem: &TreeProblem,
        universe: &DemandInstanceUniverse,
        kind: TreeDecompositionKind,
    ) -> Self {
        let decomps: Vec<TreeDecomposition> = problem
            .networks()
            .iter()
            .map(|t| match kind {
                TreeDecompositionKind::RootFixing => root_fixing_decomposition(t, VertexId::new(0)),
                TreeDecompositionKind::Balancing => balancing_decomposition(t),
                TreeDecompositionKind::Ideal => ideal_decomposition(t),
            })
            .collect();
        Self::from_tree_decompositions(problem, universe, &decomps)
    }

    /// The Appendix A layering: root-fixing decomposition per network with
    /// `π(d)` being only the wings of `µ(d)` (Observation A.1), giving
    /// `∆ = 2` at the price of up to `n` groups.
    pub fn appendix_a(problem: &TreeProblem, universe: &DemandInstanceUniverse) -> Self {
        let decomps: Vec<TreeDecomposition> = problem
            .networks()
            .iter()
            .map(|t| root_fixing_decomposition(t, VertexId::new(0)))
            .collect();
        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let tree = problem.network(inst.network);
            let h = &decomps[inst.network.index()];
            let demand = problem.demand(inst.demand);
            let path_vertices = tree.path_vertices(demand.u, demand.v);
            let z = h.captured_at(&path_vertices);
            group[inst.id.index()] = (h.max_depth() - h.depth_of(z)) as usize;
            critical[inst.id.index()] = TreeDecomposition::wings_on_path(tree, &inst.path, z);
        }
        Self::from_parts(group, critical)
    }

    /// The line-network layering of Section 7: length classes with
    /// `π(d) = {s(d), mid(d), e(d)}` and therefore `∆ = 3`,
    /// `ℓ = ⌈log(L_max/L_min)⌉ + 1`.
    ///
    /// The universe must consist of line instances (contiguous paths); this
    /// is the case for every universe produced by
    /// [`netsched_graph::LineProblem::universe`].
    pub fn line_length_classes(universe: &DemandInstanceUniverse) -> Self {
        let l_min = universe
            .instances()
            .map(|d| d.len())
            .min()
            .unwrap_or(1)
            .max(1);
        let mut group = vec![0usize; universe.num_instances()];
        let mut critical = vec![Vec::new(); universe.num_instances()];
        for inst in universe.instances() {
            let len = inst.len().max(1);
            // Group i (0-based) holds lengths in [2^i · L_min, 2^{i+1} · L_min).
            let ratio = len / l_min;
            group[inst.id.index()] = (usize::BITS - 1 - ratio.leading_zeros()) as usize;

            // Line instances are single interval runs; the critical edges
            // are the two ends plus the midpoint, read off the bounds in
            // O(1) without touching the per-edge representation.
            let (s, e) = inst.path.bounds().expect("line instances are non-empty");
            let mid = EdgeId::new((s.index() + e.index()) / 2);
            let mut c = vec![s, mid, e];
            c.sort_unstable();
            c.dedup();
            critical[inst.id.index()] = c;
        }
        Self::from_parts(group, critical)
    }

    /// Group index (0-based) of instance `d`.
    #[inline]
    pub fn group(&self, d: InstanceId) -> usize {
        self.group[d.index()]
    }

    /// Critical edges `π(d)` of instance `d` (edges of the instance's own
    /// network).
    #[inline]
    pub fn critical(&self, d: InstanceId) -> &[EdgeId] {
        &self.critical[d.index()]
    }

    /// Number of groups (`ℓ_max`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Maximum critical-set size (`∆`).
    #[inline]
    pub fn max_critical(&self) -> usize {
        self.max_critical
    }

    /// The instances of each group, in group order.
    pub fn groups(&self) -> Vec<Vec<InstanceId>> {
        let mut out = vec![Vec::new(); self.num_groups];
        for (i, &g) in self.group.iter().enumerate() {
            out[g].push(InstanceId::new(i));
        }
        out
    }

    /// Verifies the defining property of layered decompositions against a
    /// universe: for any overlapping `d1 ∈ G_i`, `d2 ∈ G_j` with `i ≤ j`,
    /// `path(d2)` contains a critical edge of `d1`, and `π(d) ⊆ path(d)` for
    /// every instance. Returns the first violation found.
    pub fn check_layered_property(&self, universe: &DemandInstanceUniverse) -> Result<(), String> {
        for inst in universe.instances() {
            for &e in &self.critical[inst.id.index()] {
                if !inst.path.contains(e) {
                    return Err(format!(
                        "critical edge {e} of instance {} is not on its path",
                        inst.id
                    ));
                }
            }
        }
        let ids: Vec<InstanceId> = universe.instance_ids().collect();
        for &d1 in &ids {
            for &d2 in &ids {
                if d1 == d2 || self.group[d1.index()] > self.group[d2.index()] {
                    continue;
                }
                if !universe.overlapping(d1, d2) {
                    continue;
                }
                let path2 = &universe.instance(d2).path;
                if !path2.intersects_slice(&self.critical[d1.index()]) {
                    return Err(format!(
                        "interference violated: {d1} (group {}) raised before {d2} (group {}) \
                         but path({d2}) misses π({d1})",
                        self.group[d1.index()],
                        self.group[d2.index()],
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure6_tree, paper_vertex};
    use netsched_graph::{LineProblem, NetworkId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A tree problem over the Figure 6 tree with a mix of long and short
    /// demands.
    fn figure6_many_demands() -> TreeProblem {
        let tree = figure6_tree(NetworkId::new(0));
        let mut p = TreeProblem::new(tree.num_vertices());
        let t = p.add_tree(&tree).unwrap();
        let pairs = [
            (4, 13),
            (2, 3),
            (12, 13),
            (10, 11),
            (7, 14),
            (4, 10),
            (6, 13),
            (1, 12),
            (3, 7),
            (9, 13),
        ];
        for (i, (a, b)) in pairs.iter().enumerate() {
            p.add_unit_demand(paper_vertex(*a), paper_vertex(*b), (i + 1) as f64, vec![t])
                .unwrap();
        }
        p
    }

    fn random_tree_problem(seed: u64, n: usize, r: usize, m: usize) -> TreeProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.7)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..100.0),
                access,
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn ideal_layering_has_delta_at_most_six() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        assert!(layering.max_critical() <= 6, "Lemma 4.3: ∆ ≤ 6");
        layering.check_layered_property(&u).unwrap();
        // Length is at most the ideal decomposition depth bound.
        assert!(layering.num_groups() as u32 <= crate::ideal::ideal_depth_bound(14));
    }

    #[test]
    fn appendix_a_layering_has_delta_at_most_two() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::appendix_a(&p, &u);
        assert!(layering.max_critical() <= 2, "Observation A.1: ∆ ≤ 2");
        layering.check_layered_property(&u).unwrap();
    }

    #[test]
    fn balancing_and_root_fixing_layerings_are_valid() {
        let p = figure6_many_demands();
        let u = p.universe();
        for kind in [
            TreeDecompositionKind::RootFixing,
            TreeDecompositionKind::Balancing,
        ] {
            let layering = InstanceLayering::for_tree_problem(&p, &u, kind);
            layering.check_layered_property(&u).unwrap();
        }
    }

    #[test]
    fn random_instances_all_layerings_valid() {
        for seed in 0..5u64 {
            let p = random_tree_problem(seed, 40, 3, 25);
            let u = p.universe();
            for kind in [
                TreeDecompositionKind::RootFixing,
                TreeDecompositionKind::Balancing,
                TreeDecompositionKind::Ideal,
            ] {
                let layering = InstanceLayering::for_tree_problem(&p, &u, kind);
                layering
                    .check_layered_property(&u)
                    .unwrap_or_else(|e| panic!("seed {seed}, {kind:?}: {e}"));
                if kind == TreeDecompositionKind::Ideal {
                    assert!(layering.max_critical() <= 6);
                }
            }
            let appendix = InstanceLayering::appendix_a(&p, &u);
            appendix.check_layered_property(&u).unwrap();
            assert!(appendix.max_critical() <= 2);
        }
    }

    #[test]
    fn line_length_classes_have_delta_three_and_log_groups() {
        let mut p = LineProblem::new(64, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let len = rng.gen_range(1..=32u32);
            let release = rng.gen_range(0..=(64 - len));
            let slack = rng.gen_range(0..=(64 - release - len));
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..10.0),
                1.0,
                acc.clone(),
            )
            .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        assert!(layering.max_critical() <= 3, "Section 7: ∆ = 3");
        // ℓ ≤ ⌈log(L_max / L_min)⌉ + 1 ≤ log 64 + 1.
        assert!(layering.num_groups() <= 7);
        layering.check_layered_property(&u).unwrap();
    }

    #[test]
    fn line_groups_are_by_doubling_lengths() {
        let mut p = LineProblem::new(32, 1);
        let acc = vec![NetworkId::new(0)];
        for len in [1u32, 2, 3, 4, 7, 8, 16] {
            p.add_interval_demand(0, len, 1.0, 1.0, acc.clone())
                .unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        // L_min = 1: lengths 1 → group 0; 2, 3 → group 1; 4..7 → group 2;
        // 8..15 → group 3; 16 → group 4.
        let groups: Vec<usize> = u.instance_ids().map(|d| layering.group(d)).collect();
        assert_eq!(groups, vec![0, 1, 1, 2, 2, 3, 4]);
    }

    #[test]
    fn groups_accessor_partitions_instances() {
        let p = figure6_many_demands();
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        let groups = layering.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, u.num_instances());
        for (gi, g) in groups.iter().enumerate() {
            for &d in g {
                assert_eq!(layering.group(d), gi);
            }
        }
    }

    #[test]
    fn check_detects_bad_layering() {
        let p = figure6_many_demands();
        let u = p.universe();
        // An adversarial layering: everything in one group with empty
        // critical sets must be rejected (the demands overlap).
        let bad = InstanceLayering::from_parts(
            vec![0; u.num_instances()],
            vec![Vec::new(); u.num_instances()],
        );
        assert!(bad.check_layered_property(&u).is_err());
        // Critical edges not on the path are also rejected.
        let mut critical = vec![Vec::new(); u.num_instances()];
        critical[0] = vec![EdgeId::new(9999)];
        let bad = InstanceLayering::from_parts(vec![0; u.num_instances()], critical);
        assert!(bad.check_layered_property(&u).is_err());
    }
}
