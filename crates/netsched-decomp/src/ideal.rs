//! The ideal tree decomposition (Section 4.3, Lemma 4.1).
//!
//! `BuildIdealTD` recursively processes components that have **at most two
//! neighbours** in the tree network. In each level it adds a balancer `z`
//! and — when the two outside neighbours "meet" inside one split component —
//! also a *junction* `j`, chosen so that every component handed to the next
//! level again has at most two neighbours. The result is a tree
//! decomposition with pivot size `θ = 2` and depth `O(log n)`
//! (at most `2⌈log n⌉ + 1` with the paper's depth-1 root convention).

use crate::component::{find_balancer, neighbors_of, split_component};
use crate::decomposition::TreeDecomposition;
use netsched_graph::{TreeNetwork, VertexId};

/// Builds the ideal tree decomposition of `tree` (Lemma 4.1).
///
/// ```
/// use netsched_decomp::{ideal_decomposition, ideal_depth_bound};
/// use netsched_graph::{NetworkId, TreeNetwork};
///
/// // A path of 64 vertices: the root-fixing decomposition would have depth
/// // 64, the ideal one stays logarithmic with pivot size at most 2.
/// let tree = TreeNetwork::line(NetworkId::new(0), 64).unwrap();
/// let h = ideal_decomposition(&tree);
/// assert!(h.is_valid_for(&tree));
/// assert!(h.pivot_size(&tree) <= 2);
/// assert!(h.max_depth() <= ideal_depth_bound(64));
/// ```
pub fn ideal_decomposition(tree: &TreeNetwork) -> TreeDecomposition {
    let n = tree.num_vertices();
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let all: Vec<VertexId> = tree.vertices().collect();

    if n == 1 {
        return TreeDecomposition::from_parents(tree.id(), parent);
    }

    // Top level: split the whole vertex set by a balancer g; every resulting
    // component has the single neighbour g, so the precondition of
    // BuildIdealTD holds.
    let g = find_balancer(tree, &all);
    let mut stack: Vec<(Vec<VertexId>, VertexId)> = split_component(tree, &all, g)
        .into_iter()
        .map(|c| (c, g))
        .collect();

    // Each stack entry is a component C with |Γ(C)| ≤ 2 together with the
    // H-node its sub-decomposition's root must hang under.
    while let Some((comp, par)) = stack.pop() {
        debug_assert!(
            neighbors_of(tree, &comp).len() <= 2,
            "BuildIdealTD precondition violated: component has more than two neighbours"
        );
        if comp.len() == 1 {
            parent[comp[0].index()] = Some(par);
            continue;
        }

        let z = find_balancer(tree, &comp);
        let parts = split_component(tree, &comp, z);

        // A split component violates the precondition only when it contains
        // the attachment vertices of *both* outside neighbours as well as a
        // neighbour of z; in that case (the paper's Case 2(b)) it has exactly
        // three neighbours {u1, u2, z}.
        let mut bad: Option<usize> = None;
        for (i, part) in parts.iter().enumerate() {
            let nb = neighbors_of(tree, part);
            if nb.len() > 2 {
                debug_assert!(
                    bad.is_none(),
                    "at most one component can exceed two neighbours"
                );
                debug_assert_eq!(nb.len(), 3);
                bad = Some(i);
            }
        }

        match bad {
            None => {
                // Cases 1 and 2(a): the balancer becomes the local root.
                parent[z.index()] = Some(par);
                for part in parts {
                    stack.push((part, z));
                }
            }
            Some(bad_idx) => {
                // Case 2(b): locate the junction j — the median of u1, u2
                // and z — and split the offending component by it.
                let c_bad = &parts[bad_idx];
                let nb = neighbors_of(tree, c_bad);
                let outside: Vec<VertexId> = nb.into_iter().filter(|&v| v != z).collect();
                debug_assert_eq!(outside.len(), 2);
                let (u1, u2) = (outside[0], outside[1]);
                let j = TreeDecomposition::bending_point(tree, u1, u2, z);
                debug_assert!(
                    c_bad.contains(&j),
                    "the junction must lie inside the offending component"
                );

                // j is the local root, z hangs below it.
                parent[j.index()] = Some(par);
                parent[z.index()] = Some(j);

                // Split C_bad by j. The sub-component adjacent to z (if any)
                // goes below z; the others go below j.
                for sub in split_component(tree, c_bad, j) {
                    let adj_z = neighbors_of(tree, &sub).contains(&z);
                    stack.push((sub, if adj_z { z } else { j }));
                }
                // The remaining components of the first split go below z.
                for (i, part) in parts.iter().enumerate() {
                    if i != bad_idx {
                        stack.push((part.clone(), z));
                    }
                }
            }
        }
    }

    TreeDecomposition::from_parents(tree.id(), parent)
}

/// The depth bound guaranteed by Lemma 4.1 with the paper's depth-1 root
/// convention: `2⌈log₂ n⌉ + 1`.
pub fn ideal_depth_bound(n: usize) -> u32 {
    if n <= 1 {
        return 1;
    }
    2 * (usize::BITS - (n - 1).leading_zeros()) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::figure6_tree;
    use netsched_graph::NetworkId;

    fn check(tree: &TreeNetwork) {
        let h = ideal_decomposition(tree);
        assert!(
            h.is_valid_for(tree),
            "ideal decomposition must be a valid TD"
        );
        assert!(
            h.pivot_size(tree) <= 2,
            "ideal decomposition must have pivot size at most 2 (got {})",
            h.pivot_size(tree)
        );
        assert!(
            h.max_depth() <= ideal_depth_bound(tree.num_vertices()),
            "depth {} exceeds bound {} for n = {}",
            h.max_depth(),
            ideal_depth_bound(tree.num_vertices()),
            tree.num_vertices()
        );
    }

    #[test]
    fn figure6_tree_ideal() {
        check(&figure6_tree(NetworkId::new(0)));
    }

    #[test]
    fn paths_of_many_sizes() {
        for n in [2usize, 3, 4, 5, 8, 16, 33, 64, 127] {
            check(&TreeNetwork::line(NetworkId::new(0), n).unwrap());
        }
    }

    #[test]
    fn stars_and_brooms() {
        for n in [3usize, 8, 31, 64] {
            let edges = (1..n)
                .map(|i| (VertexId::new(0), VertexId::new(i)))
                .collect();
            check(&TreeNetwork::new(NetworkId::new(0), n, edges).unwrap());
        }
        // Broom: a path of 10 vertices with 10 extra leaves on the last one.
        let mut edges: Vec<(VertexId, VertexId)> = (0..9)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        for i in 10..20 {
            edges.push((VertexId::new(9), VertexId::new(i)));
        }
        check(&TreeNetwork::new(NetworkId::new(0), 20, edges).unwrap());
    }

    #[test]
    fn caterpillar_and_binary_trees() {
        // Caterpillar.
        let mut edges: Vec<(VertexId, VertexId)> = (0..24)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        for i in 0..25 {
            edges.push((VertexId::new(i), VertexId::new(25 + i)));
        }
        check(&TreeNetwork::new(NetworkId::new(0), 50, edges).unwrap());

        // Complete binary tree on 63 vertices.
        let edges = (1..63)
            .map(|i| (VertexId::new((i - 1) / 2), VertexId::new(i)))
            .collect();
        check(&TreeNetwork::new(NetworkId::new(0), 63, edges).unwrap());
    }

    #[test]
    fn single_and_two_vertex_trees() {
        let t1 = TreeNetwork::new(NetworkId::new(0), 1, vec![]).unwrap();
        let h1 = ideal_decomposition(&t1);
        assert_eq!(h1.max_depth(), 1);
        let t2 = TreeNetwork::line(NetworkId::new(0), 2).unwrap();
        check(&t2);
    }

    #[test]
    fn random_trees_from_pruefer_like_attachment() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for n in [10usize, 30, 100, 257] {
            for _ in 0..3 {
                let edges = (1..n)
                    .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                    .collect();
                check(&TreeNetwork::new(NetworkId::new(0), n, edges).unwrap());
            }
        }
    }
}
