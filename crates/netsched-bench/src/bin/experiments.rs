//! CLI entry point for the experiment harness.
//!
//! ```text
//! cargo run -p netsched-bench --release --bin experiments -- all
//! cargo run -p netsched-bench --release --bin experiments -- e5 e6
//! cargo run -p netsched-bench --release --bin experiments -- all --quick
//! cargo run -p netsched-bench --release --bin experiments -- list
//! ```

use netsched_bench::experiments::{all_experiments, find};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();

    if requested.iter().any(|a| a == "list") {
        println!("available experiments:\n");
        for e in all_experiments() {
            println!("  {:<4} {}", e.id, e.description);
        }
        return;
    }

    let ids: Vec<String> = if requested.is_empty() || requested.iter().any(|a| a == "all") {
        all_experiments().iter().map(|e| e.id.to_string()).collect()
    } else {
        requested
    };

    let mode = if quick { " (quick mode)" } else { "" };
    println!("# netsched experiment harness{mode}\n");
    println!(
        "Reproducing the quantitative claims of \"Distributed Algorithms for Scheduling on \
         Line and Tree Networks\" (arXiv:1205.1924 / IPPS 2013).\n"
    );

    for id in ids {
        match find(&id) {
            Some(e) => {
                println!("## {} — {}\n", e.id.to_uppercase(), e.description);
                let start = std::time::Instant::now();
                let tables = (e.run)(quick);
                for t in tables {
                    println!("{}", t.render());
                }
                println!(
                    "_({} completed in {:.1}s)_\n",
                    e.id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment id: {id} (use `list` to see available ids)");
                std::process::exit(2);
            }
        }
    }
}
