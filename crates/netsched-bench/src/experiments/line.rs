//! E5 and E6: line-network experiments (Section 7), comparing the paper's
//! algorithms with the Panconesi–Sozio baseline it improves on.

use crate::measure;
use crate::table::{f2, f3, int, Table};
use netsched_baseline::{
    best_greedy, exact_optimum, weighted_interval_optimum, PsLineNarrowSolver, PsLineUnitSolver,
};
use netsched_core::{AlgorithmConfig, LineUnitSolver, Scheduler};
use netsched_distrib::MisStrategy;
use netsched_workloads::{HeightDistribution, LineWorkload, ProfitDistribution};
use rayon::prelude::*;

fn luby(epsilon: f64, seed: u64) -> AlgorithmConfig {
    AlgorithmConfig {
        epsilon,
        mis: MisStrategy::Luby { seed },
        seed,
    }
}

/// E5 — Theorem 7.1 vs Panconesi–Sozio: unit-height line networks with
/// windows. The key claim is the factor-5 improvement of the worst-case
/// guarantee (4+ε vs 20+ε) at comparable distributed cost.
pub fn e5_line_unit_vs_ps(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E5 — unit-height line networks with windows (Theorem 7.1 vs [16])",
        &[
            "slots",
            "r",
            "m",
            "algorithm",
            "profit",
            "%ref",
            "λ",
            "worst-case bound",
            "certified ratio",
            "rounds",
        ],
    )
    .caption(
        "reference = exact (small instances) or dual UB; the paper's guarantee (4+ε) is 5× \
         better than Panconesi–Sozio's (20+ε).",
    );

    let configs: &[(u32, usize, usize)] = if quick {
        &[(24, 1, 10), (48, 2, 30)]
    } else {
        &[(24, 1, 10), (48, 2, 30), (96, 3, 60)]
    };
    for &(slots, r, m) in configs {
        let workload = LineWorkload {
            timeslots: slots,
            resources: r,
            demands: m,
            min_length: 1,
            max_length: (slots / 4).max(2),
            max_slack: 4,
            profits: ProfitDistribution::Uniform {
                min: 1.0,
                max: 32.0,
            },
            heights: HeightDistribution::Unit,
            seed: 0xE5 + slots as u64,
            ..LineWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        // One session: our algorithm and the PS baseline share the cached
        // universe and length-class layering.
        let session = Scheduler::for_line(&problem);
        let universe = session.universe();
        let eps = 0.1;
        let ours = session.solve_with(&LineUnitSolver, &luby(eps, 5));
        let ps = session.solve_with(&PsLineUnitSolver, &luby(eps, 5));
        let greedy = best_greedy(universe);
        ours.verify(universe).expect("feasible");
        ps.verify(universe).expect("feasible");

        let reference = if m <= 10 {
            exact_optimum(universe).profit
        } else {
            ours.diagnostics
                .optimum_upper_bound
                .min(ps.diagnostics.optimum_upper_bound)
        };
        let mut row =
            |name: &str, profit: f64, lambda: f64, bound: f64, ratio: f64, rounds: u64| {
                table.add_row(vec![
                    int(slots as u64),
                    int(r as u64),
                    int(m as u64),
                    name.to_string(),
                    f2(profit),
                    f2(measure::pct(profit, reference)),
                    f3(lambda),
                    f2(bound),
                    f3(ratio),
                    int(rounds),
                ]);
            };
        row(
            "this paper (Thm 7.1)",
            ours.profit,
            ours.diagnostics.lambda,
            4.0 / (1.0 - eps),
            ours.certified_ratio().unwrap_or(1.0),
            ours.stats.rounds,
        );
        row(
            "Panconesi-Sozio [16]",
            ps.profit,
            ps.diagnostics.lambda,
            4.0 * (5.0 + eps),
            ps.certified_ratio().unwrap_or(1.0),
            ps.stats.rounds,
        );
        row("greedy", greedy.profit, 1.0, f64::NAN, f64::NAN, 0);
    }

    // Second table: exact comparison on fixed-interval single-resource
    // instances where the weighted-interval DP gives the true optimum at
    // scale.
    let mut exact_table = Table::new(
        "E5b — single resource, fixed intervals: empirical ratios at scale",
        &[
            "m",
            "optimum (DP)",
            "ours",
            "ours ratio",
            "PS",
            "PS ratio",
            "greedy",
            "greedy ratio",
        ],
    )
    .caption("Exact optimum from the weighted-interval-scheduling DP; ratios are OPT/achieved.");
    let ms: &[usize] = if quick {
        &[20, 60]
    } else {
        &[20, 60, 120, 240]
    };
    let rows: Vec<Vec<String>> = ms
        .par_iter()
        .map(|&m| {
            let workload = LineWorkload {
                timeslots: (4 * m as u32).max(32),
                resources: 1,
                demands: m,
                min_length: 2,
                max_length: 16,
                max_slack: 0,
                access_probability: 1.0,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 32.0,
                },
                heights: HeightDistribution::Unit,
                seed: 0xE5B + m as u64,
            };
            let problem = workload.build().expect("valid workload");
            let session = Scheduler::for_line(&problem);
            let universe = session.universe();
            let (opt, _) = weighted_interval_optimum(universe).expect("DP shape");
            let ours = session.solve_with(&LineUnitSolver, &luby(0.1, 55));
            let ps = session.solve_with(&PsLineUnitSolver, &luby(0.1, 55));
            let greedy = best_greedy(universe);
            vec![
                int(m as u64),
                f2(opt),
                f2(ours.profit),
                f3(measure::ratio(opt, &ours)),
                f2(ps.profit),
                f3(measure::ratio(opt, &ps)),
                f2(greedy.profit),
                f3(measure::ratio(opt, &greedy)),
            ]
        })
        .collect();
    for row in rows {
        exact_table.add_row(row);
    }

    vec![table, exact_table]
}

/// E6 — Theorem 7.2 vs Panconesi–Sozio: arbitrary heights on line networks
/// with windows (23+ε vs 55+ε guarantees).
pub fn e6_line_arbitrary_vs_ps(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E6 — arbitrary-height line networks with windows (Theorem 7.2 vs [16])",
        &[
            "slots",
            "r",
            "m",
            "algorithm",
            "profit",
            "%ref",
            "worst-case bound",
            "certified ratio",
            "rounds",
        ],
    )
    .caption("The paper's guarantee is 23+ε versus Panconesi–Sozio's 55+ε.");
    let configs: &[(u32, usize, usize)] = if quick {
        &[(24, 1, 10), (48, 2, 28)]
    } else {
        &[(24, 1, 10), (48, 2, 28), (96, 2, 56)]
    };
    for &(slots, r, m) in configs {
        let workload = LineWorkload {
            timeslots: slots,
            resources: r,
            demands: m,
            min_length: 1,
            max_length: (slots / 4).max(2),
            max_slack: 4,
            profits: ProfitDistribution::Uniform {
                min: 1.0,
                max: 16.0,
            },
            heights: HeightDistribution::Mixed {
                wide_fraction: 0.3,
                min_narrow: 0.1,
            },
            seed: 0xE6 + slots as u64,
            ..LineWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        // Mixed heights: the session auto-selects Theorem 7.2; the PS-style
        // narrow baseline reuses the same cached layering.
        let session = Scheduler::for_line(&problem);
        let universe = session.universe();
        let eps = 0.1;
        let ours = session.solve(&luby(eps, 6));
        let ps = session.solve_with(&PsLineNarrowSolver, &luby(eps, 6));
        let greedy = best_greedy(universe);
        ours.verify(universe).expect("feasible");
        ps.verify(universe).expect("feasible");
        let reference = if m <= 10 {
            exact_optimum(universe).profit
        } else {
            ours.diagnostics.optimum_upper_bound
        };
        let mut row = |name: &str, profit: f64, bound: f64, ratio: f64, rounds: u64| {
            table.add_row(vec![
                int(slots as u64),
                int(r as u64),
                int(m as u64),
                name.to_string(),
                f2(profit),
                f2(measure::pct(profit, reference)),
                f2(bound),
                f3(ratio),
                int(rounds),
            ]);
        };
        row(
            "this paper (Thm 7.2)",
            ours.profit,
            23.0 / (1.0 - eps),
            ours.certified_ratio().unwrap_or(1.0),
            ours.stats.rounds,
        );
        row(
            "Panconesi-Sozio style",
            ps.profit,
            55.0 + eps,
            ps.certified_ratio().unwrap_or(1.0),
            ps.stats.rounds,
        );
        row("greedy", greedy.profit, f64::NAN, f64::NAN, 0);
    }
    vec![table]
}
