//! E9, E10 and E11: worked examples, the capacitated extension and the
//! distributed substrate measurements.

use crate::table::{f2, f3, int, Table};
use netsched_baseline::exact_optimum;
use netsched_core::{
    solve_arbitrary_tree, solve_line_arbitrary, solve_sequential_tree, solve_unit_tree,
    AlgorithmConfig,
};
use netsched_distrib::{maximal_independent_set, CommGraph, ConflictGraph, MisStrategy, RoundStats};
use netsched_graph::{fixtures, DemandId, NetworkId, Processor, ProcessorId, TreeProblem};
use netsched_workloads::{HeightDistribution, ProfitDistribution, TreeTopology, TreeWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn luby(epsilon: f64, seed: u64) -> AlgorithmConfig {
    AlgorithmConfig {
        epsilon,
        mis: MisStrategy::Luby { seed },
        seed,
    }
}

/// E9 — the paper's worked examples (Figures 1, 2 and 6) as concrete runs.
pub fn e9_worked_examples(_quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E9 — worked examples of the paper",
        &["instance", "demands", "instances", "exact OPT", "algorithm", "profit", "feasible"],
    )
    .caption("Figures 1 and 6 of the paper, plus the two-tree routing example.");

    // Figure 1: heights 0.5 / 0.7 / 0.4 on one resource.
    {
        let problem = fixtures::figure1_line_problem();
        let universe = problem.universe();
        let exact = exact_optimum(&universe);
        let sol = solve_line_arbitrary(&problem, &luby(0.1, 9));
        table.add_row(vec![
            "Figure 1 (line, heights)".into(),
            int(problem.num_demands() as u64),
            int(universe.num_instances() as u64),
            f2(exact.profit),
            "Thm 7.2".into(),
            f2(sol.profit),
            if sol.verify(&universe).is_ok() { "yes".into() } else { "NO".into() },
        ]);
    }
    // Figure 6 tree with the Section 4 demands.
    {
        let problem = fixtures::figure6_problem();
        let universe = problem.universe();
        let exact = exact_optimum(&universe);
        for (label, sol) in [
            ("Thm 5.3", solve_unit_tree(&problem, &luby(0.1, 9))),
            ("Appendix A", solve_sequential_tree(&problem)),
        ] {
            table.add_row(vec![
                "Figure 6 (tree, unit)".into(),
                int(problem.num_demands() as u64),
                int(universe.num_instances() as u64),
                f2(exact.profit),
                label.into(),
                f2(sol.profit),
                if sol.verify(&universe).is_ok() { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    // The two-tree routing example (Figure 2's moral: alternative networks
    // resolve conflicts).
    {
        let problem = fixtures::two_tree_problem();
        let universe = problem.universe();
        let exact = exact_optimum(&universe);
        let sol = solve_unit_tree(&problem, &luby(0.1, 9));
        table.add_row(vec![
            "Two spanning trees".into(),
            int(problem.num_demands() as u64),
            int(universe.num_instances() as u64),
            f2(exact.profit),
            "Thm 5.3".into(),
            f2(sol.profit),
            if sol.verify(&universe).is_ok() { "yes".into() } else { "NO".into() },
        ]);
    }
    vec![table]
}

/// E10 — the capacitated ("non-uniform bandwidths") extension: random edge
/// capacities in {0.5, 1, 2}.
pub fn e10_capacitated(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E10 — non-uniform edge capacities (IPPS capacitated extension)",
        &[
            "n", "m", "capacity set", "profit", "reference", "%ref", "certified ratio",
            "max edge load/capacity",
        ],
    )
    .caption("Feasibility and certificates under per-edge capacities; loads never exceed capacities.");
    let sizes: &[(usize, usize)] = if quick { &[(12, 10)] } else { &[(12, 10), (24, 24), (48, 48)] };
    for &(n, m) in sizes {
        for (label, caps) in [("uniform 1.0", vec![1.0]), ("{0.5, 1, 2}", vec![0.5, 1.0, 2.0])] {
            let workload = TreeWorkload {
                vertices: n,
                networks: 2,
                demands: m,
                topology: TreeTopology::RandomAttachment,
                heights: HeightDistribution::Uniform { min: 0.1, max: 1.0 },
                profits: ProfitDistribution::Uniform { min: 1.0, max: 16.0 },
                seed: 0xE10 + n as u64,
                ..TreeWorkload::default()
            };
            let mut problem = workload.build().expect("valid workload");
            let mut rng = StdRng::seed_from_u64(0xCAFE + n as u64);
            for t in 0..problem.num_networks() {
                let edges = problem.capacities(NetworkId::new(t)).len();
                for e in 0..edges {
                    let c = caps[rng.gen_range(0..caps.len())];
                    problem.set_capacity(NetworkId::new(t), e, c).unwrap();
                }
            }
            let universe = problem.universe();
            let sol = solve_arbitrary_tree(&problem, &luby(0.1, 10));
            sol.verify(&universe).expect("feasible under capacities");
            let reference = if universe.num_instances() <= 20 {
                exact_optimum(&universe).profit
            } else {
                sol.diagnostics.optimum_upper_bound
            };
            // Max relative edge load.
            let mut max_rel: f64 = 0.0;
            for t in 0..universe.num_networks() {
                let network = NetworkId::new(t);
                let loads = universe.edge_loads(network, &sol.selected);
                for (e, &load) in loads.iter().enumerate() {
                    let cap = universe
                        .capacity(netsched_graph::GlobalEdge::new(network, netsched_graph::EdgeId::new(e)));
                    max_rel = max_rel.max(load / cap);
                }
            }
            table.add_row(vec![
                int(n as u64),
                int(m as u64),
                label.into(),
                f2(sol.profit),
                f2(reference),
                f2(crate::measure::pct(sol.profit, reference)),
                f3(sol.certified_ratio().unwrap_or(1.0)),
                f3(max_rel),
            ]);
        }
    }
    vec![table]
}

/// E11 — the distributed substrate: Luby MIS round/message scaling on the
/// conflict graph and communication-graph diameters.
pub fn e11_distributed_substrate(quick: bool) -> Vec<Table> {
    let mut mis_table = Table::new(
        "E11 — Luby MIS on the conflict graph",
        &["N (instances)", "conflict edges", "max degree", "MIS size", "MIS rounds", "messages", "3·log2 N"],
    )
    .caption("Luby's algorithm needs O(log N) phases of 3 rounds each, independent of the diameter.");
    let sizes: &[usize] = if quick { &[50, 200] } else { &[50, 200, 800, 2000] };
    for &m in sizes {
        let workload = TreeWorkload {
            vertices: (m / 2).max(8),
            networks: 2,
            demands: m / 2,
            seed: 0xE11 + m as u64,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let universe = problem.universe();
        let graph = ConflictGraph::build(&universe);
        let active: Vec<_> = universe.instance_ids().collect();
        let mut stats = RoundStats::new();
        let mis = maximal_independent_set(&graph, &active, MisStrategy::Luby { seed: 11 }, &mut stats);
        mis_table.add_row(vec![
            int(graph.num_vertices() as u64),
            int(graph.num_edges() as u64),
            int(graph.max_degree() as u64),
            int(mis.len() as u64),
            int(stats.mis_rounds),
            int(stats.messages),
            f2(3.0 * (graph.num_vertices().max(2) as f64).log2()),
        ]);
    }

    // Communication graph diameters: the chain-of-resources construction
    // shows the diameter can be m − 1, which is why flooding-based
    // algorithms cannot be polylogarithmic.
    let mut comm_table = Table::new(
        "E11b — communication-graph diameter",
        &["construction", "processors", "resources", "edges", "diameter"],
    )
    .caption("Two processors communicate iff they share a resource (Section 1).");
    let m = if quick { 64 } else { 256 };
    // Chain: processor i accesses {i, i+1}.
    let chain: Vec<Processor> = (0..m)
        .map(|i| {
            Processor::new(
                ProcessorId::new(i),
                DemandId::new(i),
                vec![NetworkId::new(i), NetworkId::new(i + 1)],
            )
        })
        .collect();
    let chain_graph = CommGraph::build(&chain, m + 1);
    comm_table.add_row(vec![
        "resource chain".into(),
        int(m as u64),
        int((m + 1) as u64),
        int(chain_graph.num_edges() as u64),
        chain_graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);
    // Shared pool: everyone accesses resource 0.
    let pool: Vec<Processor> = (0..m)
        .map(|i| Processor::new(ProcessorId::new(i), DemandId::new(i), vec![NetworkId::new(0)]))
        .collect();
    let pool_graph = CommGraph::build(&pool, 1);
    comm_table.add_row(vec![
        "single shared resource".into(),
        int(m as u64),
        "1".into(),
        int(pool_graph.num_edges() as u64),
        pool_graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);
    // A realistic scenario communication graph.
    let workload = TreeWorkload {
        vertices: 48,
        networks: 4,
        demands: if quick { 60 } else { 120 },
        access_probability: 0.4,
        seed: 0xE11B,
        ..TreeWorkload::default()
    };
    let problem: TreeProblem = workload.build().expect("valid workload");
    let processors = problem.processors();
    let graph = CommGraph::build(&processors, problem.num_networks());
    comm_table.add_row(vec![
        "random access sets (p=0.4, r=4)".into(),
        int(processors.len() as u64),
        int(problem.num_networks() as u64),
        int(graph.num_edges() as u64),
        graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);

    // Message-size accounting: the largest message carries at most ∆ + 1
    // demand records (Section 5, "the message size is bounded by M_max").
    let mut msg_table = Table::new(
        "E11c — message sizes during a full run (Theorem 5.3)",
        &["n", "m", "rounds", "messages", "max records per message", "∆ + 1"],
    )
    .caption("Each message carries O(1) demand records, matching the paper's O(M_max) bound.");
    for &(n, m) in if quick { &[(24usize, 30usize)][..] } else { &[(24, 30), (64, 80)][..] } {
        let workload = TreeWorkload {
            vertices: n,
            networks: 2,
            demands: m,
            seed: 0xE11C,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let sol = solve_unit_tree(&problem, &luby(0.1, 11));
        msg_table.add_row(vec![
            int(n as u64),
            int(m as u64),
            int(sol.stats.rounds),
            int(sol.stats.messages),
            int(sol.stats.max_message_records),
            int(sol.diagnostics.delta as u64 + 1),
        ]);
    }

    vec![mis_table, comm_table, msg_table]
}

/// Re-exported helper used by the CLI to also dump scenario descriptions.
pub fn scenario_overview() -> Table {
    let mut table = Table::new(
        "Named scenarios",
        &["name", "kind", "description"],
    );
    for s in netsched_workloads::named_scenarios() {
        let kind = match &s {
            netsched_workloads::Scenario::Tree { .. } => "tree",
            netsched_workloads::Scenario::Line { .. } => "line",
        };
        table.add_row(vec![
            s.name().to_string(),
            kind.to_string(),
            s.description().chars().take(70).collect::<String>(),
        ]);
    }
    table
}

