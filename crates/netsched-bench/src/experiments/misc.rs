//! E9, E10, E11 and E13: worked examples, the capacitated extension, the
//! distributed substrate measurements and the Scheduler session-reuse
//! experiment.

use crate::measure;
use crate::table::{f2, f3, int, Table};
use netsched_baseline::exact_optimum;
use netsched_core::{AlgorithmConfig, Scheduler, Solver, UnitTreeSolver};
use netsched_distrib::{
    maximal_independent_set, CommGraph, ConflictGraph, MisStrategy, RoundStats,
};
use netsched_graph::{fixtures, DemandId, NetworkId, Processor, ProcessorId, TreeProblem};
use netsched_workloads::{HeightDistribution, ProfitDistribution, TreeTopology, TreeWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper algorithms followed by the baselines — the same chaining the
/// `netsched` facade exposes as `netsched::registry()` (this crate sits
/// below the facade, so it assembles the list itself).
fn full_registry() -> Vec<Box<dyn Solver>> {
    let mut solvers = netsched_core::registry();
    solvers.extend(netsched_baseline::registry());
    solvers
}

fn luby(epsilon: f64, seed: u64) -> AlgorithmConfig {
    AlgorithmConfig {
        epsilon,
        mis: MisStrategy::Luby { seed },
        seed,
    }
}

/// E9 — the paper's worked examples (Figures 1, 2 and 6) as concrete runs
/// of the full solver registry through one `Scheduler` session each.
pub fn e9_worked_examples(_quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E9 — worked examples of the paper (full registry per session)",
        &[
            "instance",
            "exact OPT",
            "solver",
            "profit",
            "certified ratio",
            "feasible",
        ],
    )
    .caption(
        "Figures 1 and 6 of the paper plus the two-tree routing example; every \
         registered solver that supports the shape runs on one shared session.",
    );

    let registry = full_registry();
    let config = luby(0.1, 9);

    let mut run_on = |label: &str, session: &Scheduler<'_>| {
        let exact = exact_optimum(session.universe());
        let portfolio = session.portfolio(&registry, &config);
        for run in &portfolio.runs {
            table.add_row(vec![
                label.into(),
                f2(exact.profit),
                run.name.into(),
                f2(run.solution.profit),
                run.solution.certified_ratio().map_or("-".into(), f3),
                if run.verified {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    };

    let figure1 = fixtures::figure1_line_problem();
    run_on("Figure 1 (line, heights)", &Scheduler::for_line(&figure1));
    let figure6 = fixtures::figure6_problem();
    run_on("Figure 6 (tree, unit)", &Scheduler::for_tree(&figure6));
    let two_tree = fixtures::two_tree_problem();
    run_on("Two spanning trees", &Scheduler::for_tree(&two_tree));

    vec![table]
}

/// E10 — the capacitated ("non-uniform bandwidths") extension: random edge
/// capacities in {0.5, 1, 2}.
pub fn e10_capacitated(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E10 — non-uniform edge capacities (IPPS capacitated extension)",
        &[
            "n",
            "m",
            "capacity set",
            "profit",
            "reference",
            "%ref",
            "certified ratio",
            "max edge load/capacity",
        ],
    )
    .caption(
        "Feasibility and certificates under per-edge capacities; loads never exceed capacities.",
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(12, 10)]
    } else {
        &[(12, 10), (24, 24), (48, 48)]
    };
    for &(n, m) in sizes {
        for (label, caps) in [
            ("uniform 1.0", vec![1.0]),
            ("{0.5, 1, 2}", vec![0.5, 1.0, 2.0]),
        ] {
            let workload = TreeWorkload {
                vertices: n,
                networks: 2,
                demands: m,
                topology: TreeTopology::RandomAttachment,
                heights: HeightDistribution::Uniform { min: 0.1, max: 1.0 },
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 16.0,
                },
                seed: 0xE10 + n as u64,
                ..TreeWorkload::default()
            };
            let mut problem = workload.build().expect("valid workload");
            let mut rng = StdRng::seed_from_u64(0xCAFE + n as u64);
            for t in 0..problem.num_networks() {
                let edges = problem.capacities(NetworkId::new(t)).len();
                for e in 0..edges {
                    let c = caps[rng.gen_range(0..caps.len())];
                    problem.set_capacity(NetworkId::new(t), e, c).unwrap();
                }
            }
            let session = Scheduler::for_tree(&problem);
            let universe = session.universe();
            let sol = session.solve(&luby(0.1, 10));
            sol.verify(universe).expect("feasible under capacities");
            let reference = if universe.num_instances() <= 20 {
                exact_optimum(universe).profit
            } else {
                sol.diagnostics.optimum_upper_bound
            };
            // Max relative edge load.
            let mut max_rel: f64 = 0.0;
            for t in 0..universe.num_networks() {
                let network = NetworkId::new(t);
                let loads = universe.edge_loads(network, &sol.selected);
                for (e, &load) in loads.iter().enumerate() {
                    let cap = universe.capacity(netsched_graph::GlobalEdge::new(
                        network,
                        netsched_graph::EdgeId::new(e),
                    ));
                    max_rel = max_rel.max(load / cap);
                }
            }
            table.add_row(vec![
                int(n as u64),
                int(m as u64),
                label.into(),
                f2(sol.profit),
                f2(reference),
                f2(crate::measure::pct(sol.profit, reference)),
                f3(sol.certified_ratio().unwrap_or(1.0)),
                f3(max_rel),
            ]);
        }
    }
    vec![table]
}

/// E11 — the distributed substrate: Luby MIS round/message scaling on the
/// conflict graph and communication-graph diameters.
pub fn e11_distributed_substrate(quick: bool) -> Vec<Table> {
    let mut mis_table = Table::new(
        "E11 — Luby MIS on the conflict graph",
        &[
            "N (instances)",
            "conflict edges",
            "max degree",
            "MIS size",
            "MIS rounds",
            "messages",
            "3·log2 N",
        ],
    )
    .caption(
        "Luby's algorithm needs O(log N) phases of 3 rounds each, independent of the diameter.",
    );
    let sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 200, 800, 2000]
    };
    for &m in sizes {
        let workload = TreeWorkload {
            vertices: (m / 2).max(8),
            networks: 2,
            demands: m / 2,
            seed: 0xE11 + m as u64,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let universe = problem.universe();
        let graph = ConflictGraph::build(&universe);
        let active: Vec<_> = universe.instance_ids().collect();
        let mut stats = RoundStats::new();
        let mis =
            maximal_independent_set(&graph, &active, MisStrategy::Luby { seed: 11 }, &mut stats);
        mis_table.add_row(vec![
            int(graph.num_vertices() as u64),
            int(graph.num_edges() as u64),
            int(graph.max_degree() as u64),
            int(mis.len() as u64),
            int(stats.mis_rounds),
            int(stats.messages),
            f2(3.0 * (graph.num_vertices().max(2) as f64).log2()),
        ]);
    }

    // Communication graph diameters: the chain-of-resources construction
    // shows the diameter can be m − 1, which is why flooding-based
    // algorithms cannot be polylogarithmic.
    let mut comm_table = Table::new(
        "E11b — communication-graph diameter",
        &[
            "construction",
            "processors",
            "resources",
            "edges",
            "diameter",
        ],
    )
    .caption("Two processors communicate iff they share a resource (Section 1).");
    let m = if quick { 64 } else { 256 };
    // Chain: processor i accesses {i, i+1}.
    let chain: Vec<Processor> = (0..m)
        .map(|i| {
            Processor::new(
                ProcessorId::new(i),
                DemandId::new(i),
                vec![NetworkId::new(i), NetworkId::new(i + 1)],
            )
        })
        .collect();
    let chain_graph = CommGraph::build(&chain, m + 1);
    comm_table.add_row(vec![
        "resource chain".into(),
        int(m as u64),
        int((m + 1) as u64),
        int(chain_graph.num_edges() as u64),
        chain_graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);
    // Shared pool: everyone accesses resource 0.
    let pool: Vec<Processor> = (0..m)
        .map(|i| {
            Processor::new(
                ProcessorId::new(i),
                DemandId::new(i),
                vec![NetworkId::new(0)],
            )
        })
        .collect();
    let pool_graph = CommGraph::build(&pool, 1);
    comm_table.add_row(vec![
        "single shared resource".into(),
        int(m as u64),
        "1".into(),
        int(pool_graph.num_edges() as u64),
        pool_graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);
    // A realistic scenario communication graph.
    let workload = TreeWorkload {
        vertices: 48,
        networks: 4,
        demands: if quick { 60 } else { 120 },
        access_probability: 0.4,
        seed: 0xE11B,
        ..TreeWorkload::default()
    };
    let problem: TreeProblem = workload.build().expect("valid workload");
    let processors = problem.processors();
    let graph = CommGraph::build(&processors, problem.num_networks());
    comm_table.add_row(vec![
        "random access sets (p=0.4, r=4)".into(),
        int(processors.len() as u64),
        int(problem.num_networks() as u64),
        int(graph.num_edges() as u64),
        graph.diameter().map_or("∞".into(), |d| int(d as u64)),
    ]);

    // Message-size accounting: the largest message carries at most ∆ + 1
    // demand records (Section 5, "the message size is bounded by M_max").
    let mut msg_table = Table::new(
        "E11c — message sizes during a full run (Theorem 5.3)",
        &[
            "n",
            "m",
            "rounds",
            "messages",
            "max records per message",
            "∆ + 1",
        ],
    )
    .caption("Each message carries O(1) demand records, matching the paper's O(M_max) bound.");
    for &(n, m) in if quick {
        &[(24usize, 30usize)][..]
    } else {
        &[(24, 30), (64, 80)][..]
    } {
        let workload = TreeWorkload {
            vertices: n,
            networks: 2,
            demands: m,
            seed: 0xE11C,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let sol = Scheduler::for_tree(&problem).solve_with(&UnitTreeSolver, &luby(0.1, 11));
        msg_table.add_row(vec![
            int(n as u64),
            int(m as u64),
            int(sol.stats.rounds),
            int(sol.stats.messages),
            int(sol.stats.max_message_records),
            int(sol.diagnostics.delta as u64 + 1),
        ]);
    }

    vec![mis_table, comm_table, msg_table]
}

/// Re-exported helper used by the CLI to also dump scenario descriptions.
pub fn scenario_overview() -> Table {
    let mut table = Table::new("Named scenarios", &["name", "kind", "description"]);
    for s in netsched_workloads::named_scenarios() {
        let kind = match &s {
            netsched_workloads::Scenario::Tree { .. } => "tree",
            netsched_workloads::Scenario::Line { .. } => "line",
        };
        table.add_row(vec![
            s.name().to_string(),
            kind.to_string(),
            s.description().chars().take(70).collect::<String>(),
        ]);
    }
    table
}

/// E13 — the Scheduler session: cold solve (universe + decomposition built)
/// vs cached solves across an ε sweep, and the total cost of the old
/// one-call-one-rebuild pattern vs one session.
pub fn e13_session_reuse(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E13 — Scheduler session reuse across an ε sweep",
        &[
            "n",
            "m",
            "sweep size",
            "per-call rebuild (ms)",
            "one session (ms)",
            "speedup",
            "universe builds",
            "decomp builds",
        ],
    )
    .caption(
        "The sweep solves the same instance at several accuracies; the session builds the \
         universe and layered decomposition once, the old free-function path rebuilt them \
         on every call.",
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(48, 64)]
    } else {
        &[(48, 64), (96, 128), (192, 256)]
    };
    let epsilons: &[f64] = if quick {
        &[0.5, 0.2, 0.1]
    } else {
        &[0.5, 0.3, 0.2, 0.1, 0.05]
    };
    for &(n, m) in sizes {
        let workload = TreeWorkload {
            vertices: n,
            networks: 3,
            demands: m,
            seed: 0xE13 + n as u64,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");

        let (naive_profits, naive_ms) = measure::timed(|| {
            epsilons
                .iter()
                .map(|&eps| {
                    // The historical pattern: every call opens its own
                    // session, so universe + decomposition are rebuilt.
                    netsched_core::solve_unit_tree(&problem, &luby(eps, 13)).profit
                })
                .collect::<Vec<f64>>()
        });

        let session = Scheduler::for_tree(&problem);
        let (session_profits, session_ms) = measure::timed(|| {
            epsilons
                .iter()
                .map(|&eps| session.solve_with(&UnitTreeSolver, &luby(eps, 13)).profit)
                .collect::<Vec<f64>>()
        });
        assert_eq!(
            naive_profits, session_profits,
            "session must not change results"
        );
        let counts = session.build_counts();
        assert_eq!(counts.universe, 1);
        assert_eq!(counts.layering, 1);

        table.add_row(vec![
            int(n as u64),
            int(m as u64),
            int(epsilons.len() as u64),
            f2(naive_ms),
            f2(session_ms),
            f2(naive_ms / session_ms.max(1e-9)),
            int(counts.universe as u64),
            int(counts.layering as u64),
        ]);
    }

    // A second table: the portfolio over the full registry on one session.
    let mut portfolio_table = Table::new(
        "E13b — portfolio over the full registry on one session",
        &[
            "instance",
            "solvers run",
            "best solver",
            "best profit",
            "universe builds",
        ],
    )
    .caption("All supporting solvers share one set of caches; the best verified run wins.");
    let workload = TreeWorkload {
        vertices: 14,
        networks: 2,
        demands: 10,
        seed: 0xE13B,
        ..TreeWorkload::default()
    };
    let problem = workload.build().expect("valid workload");
    let session = Scheduler::for_tree(&problem);
    let registry = full_registry();
    let portfolio = session.portfolio(&registry, &luby(0.1, 13));
    let best = portfolio.best().expect("verified best run");
    portfolio_table.add_row(vec![
        "tree n=14 m=10".into(),
        int(portfolio.runs.len() as u64),
        best.name.into(),
        f2(best.solution.profit),
        int(session.build_counts().universe as u64),
    ]);

    vec![table, portfolio_table]
}
