//! E3, E4, E7, E8: tree-network algorithm experiments (Sections 5, 6 and
//! Appendix A).

use crate::measure;
use crate::table::{f2, f3, int, Table};
use netsched_baseline::{best_greedy, exact_optimum};
use netsched_core::{AlgorithmConfig, Scheduler, SequentialTreeSolver, UnitTreeSolver};
use netsched_distrib::MisStrategy;
use netsched_workloads::{HeightDistribution, ProfitDistribution, TreeTopology, TreeWorkload};
use rayon::prelude::*;

fn luby(epsilon: f64, seed: u64) -> AlgorithmConfig {
    AlgorithmConfig {
        epsilon,
        mis: MisStrategy::Luby { seed },
        seed,
    }
}

/// E3 — Theorem 5.3: schedule quality, certificates and round complexity of
/// the unit-height tree-network algorithm.
pub fn e3_unit_tree(quick: bool) -> Vec<Table> {
    // Table 1: quality vs exact / dual bound across instance sizes.
    let sizes: &[(usize, usize, usize)] = if quick {
        &[(12, 2, 10), (32, 3, 40)]
    } else {
        &[(12, 2, 10), (32, 3, 40), (64, 3, 80), (128, 4, 160)]
    };
    let mut quality = Table::new(
        "E3 — unit-height tree networks (Theorem 5.3): quality",
        &[
            "n",
            "r",
            "m",
            "ours profit",
            "seq profit",
            "greedy profit",
            "reference",
            "ours %ref",
            "certified ratio",
            "paper bound",
        ],
    )
    .caption(
        "reference = exact optimum when n ≤ 12, otherwise the dual upper bound; \
         the certified ratio must stay below 7/(1−ε) ≈ 7.78.",
    );

    let rows: Vec<Vec<String>> = sizes
        .par_iter()
        .map(|&(n, r, m)| {
            let workload = TreeWorkload {
                vertices: n,
                networks: r,
                demands: m,
                topology: TreeTopology::RandomAttachment,
                access_probability: 0.6,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 32.0,
                },
                heights: HeightDistribution::Unit,
                seed: 0xE3 + n as u64,
            };
            let problem = workload.build().expect("valid workload");
            // One session per instance: the universe and decomposition are
            // shared by the distributed, sequential and greedy runs.
            let session = Scheduler::for_tree(&problem);
            let universe = session.universe();
            let ours = session.solve_with(&UnitTreeSolver, &luby(0.1, 1));
            ours.verify(universe).expect("feasible");
            let seq = session.solve_with(&SequentialTreeSolver, &luby(0.1, 1));
            let greedy = best_greedy(universe);
            let (reference, ref_label) = if n <= 12 {
                (exact_optimum(universe).profit, "exact")
            } else {
                (ours.diagnostics.optimum_upper_bound, "dual UB")
            };
            vec![
                int(n as u64),
                int(r as u64),
                int(m as u64),
                f2(ours.profit),
                f2(seq.profit),
                f2(greedy.profit),
                format!("{} ({})", f2(reference), ref_label),
                f2(measure::pct(ours.profit, reference)),
                f3(ours.certified_ratio().unwrap_or(1.0)),
                f2(7.0 / 0.9),
            ]
        })
        .collect();
    for row in rows {
        quality.add_row(row);
    }

    // Table 2: round complexity scaling with n and ε
    // (Theorem 5.3: O(Time(MIS) · log n · log(1/ε) · log(pmax/pmin))).
    let mut rounds = Table::new(
        "E3b — round complexity scaling (Theorem 5.3)",
        &[
            "n",
            "ε",
            "epochs",
            "stages/epoch",
            "steps",
            "MIS rounds",
            "total rounds",
            "messages",
        ],
    )
    .caption("Rounds grow with log n (epochs) and log(1/ε) (stages), not with m.");
    let ns: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    for &n in ns {
        for &eps in if quick {
            &[0.2, 0.05][..]
        } else {
            &[0.5, 0.2, 0.1, 0.05][..]
        } {
            let workload = TreeWorkload {
                vertices: n,
                networks: 3,
                demands: n,
                seed: 0xE3B + n as u64,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 16.0,
                },
                ..TreeWorkload::default()
            };
            let problem = workload.build().expect("valid workload");
            let sol = Scheduler::for_tree(&problem).solve_with(&UnitTreeSolver, &luby(eps, 3));
            rounds.add_row(vec![
                int(n as u64),
                f2(eps),
                int(sol.diagnostics.epochs as u64),
                int(sol.diagnostics.stages_per_epoch as u64),
                int(sol.diagnostics.steps),
                int(sol.stats.mis_rounds),
                int(sol.stats.rounds),
                int(sol.stats.messages),
            ]);
        }
    }

    vec![quality, rounds]
}

/// E4 — Theorem 6.3 / Lemma 6.2: arbitrary heights; quality and the
/// `1/h_min` factor in the number of stages.
pub fn e4_arbitrary_tree(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E4 — arbitrary heights on tree networks (Theorem 6.3)",
        &[
            "h_min",
            "profit",
            "reference",
            "%ref",
            "certified ratio",
            "stages/epoch",
            "rounds",
            "paper bound",
        ],
    )
    .caption(
        "Stages per epoch grow like 1/h_min (Lemma 6.2); the certified ratio stays far \
         below the 80+ε worst case.",
    );
    let hmins: &[f64] = if quick {
        &[0.5, 0.1]
    } else {
        &[0.5, 0.25, 0.1, 0.05]
    };
    for &hmin in hmins {
        let workload = TreeWorkload {
            vertices: if quick { 20 } else { 32 },
            networks: 2,
            demands: if quick { 16 } else { 40 },
            heights: HeightDistribution::Uniform {
                min: hmin,
                max: 1.0,
            },
            profits: ProfitDistribution::Uniform {
                min: 1.0,
                max: 16.0,
            },
            seed: 0xE4,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        // Mixed heights: the dispatch table auto-selects Theorem 6.3.
        let session = Scheduler::for_tree(&problem);
        let universe = session.universe();
        let sol = session.solve(&luby(0.1, 4));
        sol.verify(universe).expect("feasible");
        let (reference, label) = if universe.num_instances() <= 24 {
            (exact_optimum(universe).profit, "exact")
        } else {
            (sol.diagnostics.optimum_upper_bound, "dual UB")
        };
        table.add_row(vec![
            f2(hmin),
            f2(sol.profit),
            format!("{} ({})", f2(reference), label),
            f2(measure::pct(sol.profit, reference)),
            f3(sol.certified_ratio().unwrap_or(1.0)),
            int(sol.diagnostics.stages_per_epoch as u64),
            int(sol.stats.rounds),
            f2(82.0 / 0.9),
        ]);
    }
    vec![table]
}

/// E7 — Lemma 5.1 / Claim 5.2: the number of steps per stage is bounded by
/// `1 + log2(p_max/p_min)`.
pub fn e7_steps_per_stage(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E7 — steps per stage vs profit spread (Lemma 5.1, Claim 5.2)",
        &[
            "p_max/p_min",
            "max steps/stage",
            "bound 1+log2(spread)",
            "total steps",
            "rounds",
        ],
    )
    .caption(
        "Claim 5.2: within a stage, surviving unsatisfied instances double in profit, so \
              steps per stage ≤ 1 + log2(p_max/p_min).",
    );
    let exponents: &[u32] = if quick { &[0, 4, 8] } else { &[0, 2, 4, 8, 12] };
    for &k in exponents {
        let workload = TreeWorkload {
            vertices: if quick { 24 } else { 48 },
            networks: 2,
            demands: if quick { 30 } else { 72 },
            profits: ProfitDistribution::PowerOfTwo { exponents: k },
            seed: 0xE7 + k as u64,
            ..TreeWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let sol = Scheduler::for_tree(&problem).solve_with(&UnitTreeSolver, &luby(0.1, 7));
        let bound = 1.0 + k as f64;
        assert!(
            sol.diagnostics.max_steps_per_stage as f64 <= bound + 1.0,
            "Claim 5.2 bound violated: {} > {}",
            sol.diagnostics.max_steps_per_stage,
            bound
        );
        table.add_row(vec![
            f2((2.0f64).powi(k as i32)),
            int(sol.diagnostics.max_steps_per_stage),
            f2(bound),
            int(sol.diagnostics.steps),
            int(sol.stats.rounds),
        ]);
    }
    vec![table]
}

/// E8 — Appendix A: the sequential 3-approximation vs the distributed
/// (7 + ε)-approximation on the same instances.
pub fn e8_sequential_vs_distributed(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E8 — sequential (Appendix A) vs distributed (Theorem 5.3)",
        &[
            "seed",
            "exact",
            "seq profit",
            "seq ratio",
            "seq rounds",
            "dist profit",
            "dist ratio",
            "dist rounds",
        ],
    )
    .caption(
        "The sequential algorithm has the better guarantee (3 vs 7+ε) but its round \
         complexity equals the number of raised instances; the distributed one needs only \
         polylogarithmically many rounds.",
    );
    let seeds: &[u64] = if quick { &[0, 1] } else { &[0, 1, 2, 3, 4] };
    let rows: Vec<Vec<String>> = seeds
        .par_iter()
        .map(|&seed| {
            let workload = TreeWorkload {
                vertices: 14,
                networks: 2,
                demands: 11,
                seed,
                ..TreeWorkload::default()
            };
            let problem = workload.build().expect("valid workload");
            let session = Scheduler::for_tree(&problem);
            let exact = exact_optimum(session.universe());
            let seq = session.solve_with(&SequentialTreeSolver, &luby(0.1, seed));
            let dist = session.solve_with(&UnitTreeSolver, &luby(0.1, seed));
            vec![
                int(seed),
                f2(exact.profit),
                f2(seq.profit),
                f3(measure::ratio(exact.profit, &seq)),
                int(seq.stats.rounds),
                f2(dist.profit),
                f3(measure::ratio(exact.profit, &dist)),
                int(dist.stats.rounds),
            ]
        })
        .collect();
    for row in rows {
        table.add_row(row);
    }
    vec![table]
}

/// E12 — ablation: which layered decomposition feeds the engine.
///
/// DESIGN.md calls out the layering as the central design choice; this
/// experiment runs the same unit-rule engine with the ideal, balancing and
/// root-fixing layerings (Lemma 4.2 applied to each tree decomposition) and
/// the Appendix A wings-only layering, and reports the resulting ∆, number
/// of epochs, certificates and rounds.
pub fn e12_layering_ablation(quick: bool) -> Vec<Table> {
    use netsched_core::{run_two_phase, RaiseRule};
    use netsched_decomp::{InstanceLayering, TreeDecompositionKind};

    let mut table = Table::new(
        "E12 — ablation: layered-decomposition choice (unit rule)",
        &[
            "layering",
            "∆",
            "epochs",
            "profit",
            "certified ratio",
            "worst-case bound",
            "rounds",
        ],
    )
    .caption(
        "The ideal layering keeps both ∆ (approximation) and the number of epochs (rounds) \
         small; root-fixing minimizes ∆ but needs up to n epochs; balancing keeps epochs small \
         but lets ∆ grow with the pivot size.",
    );
    let workload = TreeWorkload {
        vertices: if quick { 48 } else { 96 },
        networks: 3,
        demands: if quick { 64 } else { 128 },
        topology: TreeTopology::Caterpillar,
        seed: 0xE12,
        ..TreeWorkload::default()
    };
    let problem = workload.build().expect("valid workload");
    let universe = problem.universe();
    let cfg = AlgorithmConfig::deterministic(0.1);

    let mut run = |label: &str, layering: InstanceLayering| {
        let sol = run_two_phase(&universe, &layering, RaiseRule::Unit, &cfg);
        sol.verify(&universe).expect("feasible");
        table.add_row(vec![
            label.to_string(),
            int(layering.max_critical() as u64),
            int(layering.num_groups() as u64),
            f2(sol.profit),
            f3(sol.certified_ratio().unwrap_or(1.0)),
            f2((layering.max_critical() as f64 + 1.0) / (1.0 - 0.1)),
            int(sol.stats.rounds),
        ]);
    };
    run(
        "ideal (Thm 5.3)",
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::Ideal),
    );
    run(
        "balancing (Sec 4.2)",
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::Balancing),
    );
    run(
        "root-fixing (Sec 4.2)",
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::RootFixing),
    );
    run(
        "Appendix A wings-only",
        InstanceLayering::appendix_a(&problem, &universe),
    );
    vec![table]
}
