//! The experiment registry (E1–E11).
//!
//! Each experiment regenerates one quantitative claim of the paper as one or
//! more tables; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results.

pub mod decomp;
pub mod line;
pub mod misc;
pub mod tree;

use crate::Table;

/// An experiment: identifier, description and a runner.
pub struct Experiment {
    /// Identifier (`e1` … `e11`).
    pub id: &'static str,
    /// One-line description (which claim of the paper it reproduces).
    pub description: &'static str,
    /// Runs the experiment; `quick` selects a reduced sweep.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// All experiments in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            description: "Lemma 4.1: tree-decomposition depth and pivot size across topologies",
            run: decomp::e1_decomposition_parameters,
        },
        Experiment {
            id: "e2",
            description: "Lemmas 4.2/4.3: layered decompositions (∆, length, interference property)",
            run: decomp::e2_layered_parameters,
        },
        Experiment {
            id: "e3",
            description: "Theorem 5.3: unit-height tree networks — quality, certificates and round complexity",
            run: tree::e3_unit_tree,
        },
        Experiment {
            id: "e4",
            description: "Theorem 6.3 / Lemma 6.2: arbitrary heights on trees — quality and 1/h_min round scaling",
            run: tree::e4_arbitrary_tree,
        },
        Experiment {
            id: "e5",
            description: "Theorem 7.1 vs Panconesi–Sozio: unit-height line networks with windows",
            run: line::e5_line_unit_vs_ps,
        },
        Experiment {
            id: "e6",
            description: "Theorem 7.2 vs Panconesi–Sozio: arbitrary-height line networks with windows",
            run: line::e6_line_arbitrary_vs_ps,
        },
        Experiment {
            id: "e7",
            description: "Lemma 5.1 / Claim 5.2: steps per stage vs the profit spread",
            run: tree::e7_steps_per_stage,
        },
        Experiment {
            id: "e8",
            description: "Appendix A: sequential 3-approximation vs the distributed algorithm",
            run: tree::e8_sequential_vs_distributed,
        },
        Experiment {
            id: "e9",
            description: "Figures 1, 2 and 6: the paper's worked examples",
            run: misc::e9_worked_examples,
        },
        Experiment {
            id: "e10",
            description: "IPPS extension: non-uniform edge capacities (capacitated scenario)",
            run: misc::e10_capacitated,
        },
        Experiment {
            id: "e11",
            description: "Distributed implementation: Luby MIS rounds, message counts, communication graph",
            run: misc::e11_distributed_substrate,
        },
        Experiment {
            id: "e12",
            description: "Ablation: ideal vs balancing vs root-fixing vs Appendix-A layerings in the engine",
            run: tree::e12_layering_ablation,
        },
        Experiment {
            id: "e13",
            description: "Scheduler session reuse: cold vs cached solves across an eps sweep, plus a registry portfolio",
            run: misc::e13_session_reuse,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_thirteen_unique_experiments() {
        let all = all_experiments();
        assert_eq!(all.len(), 13);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13);
        assert!(find("e3").is_some());
        assert!(find("e13").is_some());
        assert!(find("e42").is_none());
    }

    #[test]
    fn quick_mode_of_every_experiment_produces_tables() {
        // This is the harness's own integration test: every experiment must
        // run in quick mode and produce at least one non-empty table.
        for e in all_experiments() {
            let tables = (e.run)(true);
            assert!(!tables.is_empty(), "{} produced no tables", e.id);
            for t in &tables {
                assert!(t.num_rows() > 0, "{} produced an empty table", e.id);
                assert!(!t.render().is_empty());
            }
        }
    }
}
