//! E1 and E2: decomposition experiments (Section 4 of the paper).

use crate::table::{f2, int, Table};
use netsched_decomp::{
    balancing_decomposition, ideal_decomposition, ideal_depth_bound, root_fixing_decomposition,
    InstanceLayering, TreeDecompositionKind,
};
use netsched_graph::{NetworkId, TreeNetwork, VertexId};
use netsched_workloads::{
    random_tree_edges, HeightDistribution, ProfitDistribution, TreeTopology, TreeWorkload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_tree(topology: TreeTopology, n: usize, seed: u64) -> TreeNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = random_tree_edges(topology, n, &mut rng);
    TreeNetwork::new(NetworkId::new(0), n, edges).expect("generated trees are valid")
}

/// E1 — Lemma 4.1: depth and pivot size of the three tree decompositions.
///
/// The paper claims: root-fixing has θ = 1 but depth up to n; balancing has
/// depth ≤ ⌈log n⌉ (+1 for the depth-1 root convention) but θ up to the
/// depth; the ideal decomposition has θ ≤ 2 and depth ≤ 2⌈log n⌉.
pub fn e1_decomposition_parameters(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[16, 64, 128]
    } else {
        &[16, 64, 256, 1024]
    };
    let topologies = [
        TreeTopology::RandomAttachment,
        TreeTopology::Path,
        TreeTopology::Star,
        TreeTopology::Caterpillar,
        TreeTopology::BinaryTree,
    ];
    let mut table = Table::new(
        "E1 — tree-decomposition parameters (Lemma 4.1)",
        &[
            "topology",
            "n",
            "rootfix depth",
            "rootfix θ",
            "balance depth",
            "balance θ",
            "ideal depth",
            "ideal θ",
            "2⌈log n⌉+1",
        ],
    )
    .caption("Ideal decomposition must have θ ≤ 2 and depth ≤ 2⌈log n⌉ + 1.");

    for &topology in &topologies {
        for &n in sizes {
            let tree = build_tree(topology, n, 0xE1 + n as u64);
            let rf = root_fixing_decomposition(&tree, VertexId::new(0));
            let bal = balancing_decomposition(&tree);
            let ideal = ideal_decomposition(&tree);
            // Validate the paper's bounds while we are here (cheap checks).
            assert!(ideal.pivot_size(&tree) <= 2, "ideal pivot bound violated");
            assert!(
                ideal.max_depth() <= ideal_depth_bound(n),
                "ideal depth bound violated"
            );
            table.add_row(vec![
                topology.label().to_string(),
                int(n as u64),
                int(rf.max_depth() as u64),
                int(rf.pivot_size(&tree) as u64),
                int(bal.max_depth() as u64),
                int(bal.pivot_size(&tree) as u64),
                int(ideal.max_depth() as u64),
                int(ideal.pivot_size(&tree) as u64),
                int(ideal_depth_bound(n) as u64),
            ]);
        }
    }
    vec![table]
}

/// E2 — Lemmas 4.2/4.3: parameters of the derived layered decompositions and
/// verification of the interference property.
pub fn e2_layered_parameters(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    let mut table = Table::new(
        "E2 — layered-decomposition parameters (Lemmas 4.2/4.3)",
        &[
            "topology",
            "n",
            "m",
            "instances",
            "ideal ∆",
            "ideal ℓ",
            "appendix-A ∆",
            "balancing ∆",
            "interference",
        ],
    )
    .caption("Lemma 4.3: the ideal layering has ∆ ≤ 6 and ℓ = O(log n); Appendix A has ∆ ≤ 2.");

    for &topology in &[
        TreeTopology::RandomAttachment,
        TreeTopology::Caterpillar,
        TreeTopology::Path,
    ] {
        for &n in sizes {
            let m = 2 * n;
            let workload = TreeWorkload {
                vertices: n,
                networks: 2,
                demands: m,
                topology,
                access_probability: 0.6,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 32.0,
                },
                heights: HeightDistribution::Unit,
                seed: 0xE2 + n as u64,
            };
            let problem = workload.build().expect("valid workload");
            let universe = problem.universe();
            let ideal = InstanceLayering::for_tree_problem(
                &problem,
                &universe,
                TreeDecompositionKind::Ideal,
            );
            let appendix = InstanceLayering::appendix_a(&problem, &universe);
            let balancing = InstanceLayering::for_tree_problem(
                &problem,
                &universe,
                TreeDecompositionKind::Balancing,
            );
            // The interference check is O(|D|^2); keep it to moderate sizes.
            let interference_ok = if universe.num_instances() <= 400 {
                ideal.check_layered_property(&universe).is_ok()
                    && appendix.check_layered_property(&universe).is_ok()
            } else {
                true
            };
            assert!(ideal.max_critical() <= 6);
            assert!(appendix.max_critical() <= 2);
            table.add_row(vec![
                topology.label().to_string(),
                int(n as u64),
                int(m as u64),
                int(universe.num_instances() as u64),
                int(ideal.max_critical() as u64),
                int(ideal.num_groups() as u64),
                int(appendix.max_critical() as u64),
                int(balancing.max_critical() as u64),
                if interference_ok {
                    "ok".into()
                } else {
                    "VIOLATED".into()
                },
            ]);
        }
    }

    // A second table: the line length-class layering of Section 7.
    let mut line_table = Table::new(
        "E2b — line length-class layering (Section 7)",
        &[
            "L_max/L_min",
            "instances",
            "∆",
            "ℓ",
            "⌈log(Lmax/Lmin)⌉+1",
            "interference",
        ],
    )
    .caption("The line layering has ∆ = 3 and ℓ ≤ ⌈log(L_max/L_min)⌉ + 1.");
    use netsched_workloads::LineWorkload;
    for &max_len in if quick {
        &[4u32, 16][..]
    } else {
        &[4u32, 16, 32][..]
    } {
        let workload = LineWorkload {
            timeslots: 2 * max_len.max(16),
            resources: 2,
            demands: 40,
            min_length: 1,
            max_length: max_len,
            max_slack: 4,
            seed: 0xE2B + max_len as u64,
            ..LineWorkload::default()
        };
        let problem = workload.build().expect("valid workload");
        let universe = problem.universe();
        let layering = InstanceLayering::line_length_classes(&universe);
        let (lmax, lmin) = problem.length_bounds();
        let bound = ((lmax as f64 / lmin as f64).log2().floor() as u64) + 1;
        let ok = if universe.num_instances() <= 400 {
            layering.check_layered_property(&universe).is_ok()
        } else {
            true
        };
        line_table.add_row(vec![
            f2(lmax as f64 / lmin as f64),
            int(universe.num_instances() as u64),
            int(layering.max_critical() as u64),
            int(layering.num_groups() as u64),
            int(bound),
            if ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }

    vec![table, line_table]
}
