//! Experiment harness for `netsched`.
//!
//! The paper is theoretical and contains no experimental tables or figures;
//! every quantitative claim (approximation ratios, decomposition parameters,
//! round complexities) is reproduced here as a measurable experiment. The
//! experiment index lives in `DESIGN.md` (E1–E11) and the measured results
//! are recorded in `EXPERIMENTS.md`.
//!
//! Run all experiments with
//!
//! ```text
//! cargo run -p netsched-bench --release --bin experiments -- all
//! ```
//!
//! or an individual one with its id (`e1` … `e11`). Pass `--quick` for a
//! reduced sweep.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// Common measurement helpers shared by experiments and benches.
pub mod measure {
    use netsched_core::Solution;
    use std::time::Instant;

    /// Wall-clock time of a closure in milliseconds together with its
    /// result.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64() * 1e3)
    }

    /// Percentage of `part` relative to `whole` (0 when `whole` is 0).
    pub fn pct(part: f64, whole: f64) -> f64 {
        if whole.abs() < 1e-12 {
            0.0
        } else {
            100.0 * part / whole
        }
    }

    /// The empirical approximation ratio `reference / achieved` (1.0 when
    /// the achieved profit is zero and the reference is zero too).
    pub fn ratio(reference: f64, sol: &Solution) -> f64 {
        if sol.profit <= 1e-12 {
            if reference <= 1e-12 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            reference / sol.profit
        }
    }
}

/// Host metadata recorded in every bench JSON header, so committed artifacts
/// are interpretable without knowing the machine they ran on.
pub mod host {
    use netsched_workloads::json::JsonValue;

    /// Logical CPUs visible to the process.
    pub fn logical_cpus() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }

    /// Physical cores: unique `(physical id, core id)` pairs from
    /// `/proc/cpuinfo`, falling back to the logical count when the fields
    /// are absent (VMs often omit them) or the file is unreadable.
    pub fn physical_cores() -> usize {
        let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
            return logical_cpus();
        };
        let mut pairs = std::collections::BTreeSet::new();
        let (mut package, mut core) = (None::<u64>, None::<u64>);
        for line in info.lines() {
            let mut parts = line.splitn(2, ':');
            let key = parts.next().unwrap_or("").trim();
            let value = parts.next().unwrap_or("").trim();
            match key {
                "physical id" => package = value.parse().ok(),
                "core id" => core = value.parse().ok(),
                "" => {
                    if let (Some(p), Some(c)) = (package, core) {
                        pairs.insert((p, c));
                    }
                    package = None;
                    core = None;
                }
                _ => {}
            }
        }
        if let (Some(p), Some(c)) = (package, core) {
            pairs.insert((p, c));
        }
        if pairs.is_empty() {
            logical_cpus()
        } else {
            pairs.len()
        }
    }

    /// Peak resident set size of this process in KiB (`VmHWM` from
    /// `/proc/self/status`); 0 when unavailable (non-Linux hosts).
    pub fn peak_rss_kb() -> usize {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        status
            .lines()
            .find_map(|line| line.strip_prefix("VmHWM:"))
            .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
            .unwrap_or(0)
    }

    /// The standard bench JSON header entries: bench name, mode, the rayon
    /// worker count the run actually used (`host_threads` keeps its
    /// historical key; workers beyond `physical_cores` measure shim
    /// oversubscription, not hardware parallelism), the physical/logical
    /// core counts and the process's peak RSS. Call this *after* the
    /// measured work so the RSS high-water mark covers it, and splice the
    /// entries at the front of the bench's top-level object so every
    /// committed artifact carries the same provenance fields.
    pub fn meta(bench: &str, mode: &str, rayon_workers: usize) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("bench", JsonValue::String(bench.to_string())),
            ("mode", JsonValue::String(mode.to_string())),
            ("host_threads", JsonValue::int(rayon_workers)),
            ("rayon_workers", JsonValue::int(rayon_workers)),
            ("physical_cores", JsonValue::int(physical_cores())),
            ("logical_cpus", JsonValue::int(logical_cpus())),
            ("peak_rss_kb", JsonValue::int(peak_rss_kb())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::measure;

    #[test]
    fn pct_and_timed_behave() {
        assert_eq!(measure::pct(1.0, 4.0), 25.0);
        assert_eq!(measure::pct(1.0, 0.0), 0.0);
        let (v, ms) = measure::timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
