//! Experiment harness for `netsched`.
//!
//! The paper is theoretical and contains no experimental tables or figures;
//! every quantitative claim (approximation ratios, decomposition parameters,
//! round complexities) is reproduced here as a measurable experiment. The
//! experiment index lives in `DESIGN.md` (E1–E11) and the measured results
//! are recorded in `EXPERIMENTS.md`.
//!
//! Run all experiments with
//!
//! ```text
//! cargo run -p netsched-bench --release --bin experiments -- all
//! ```
//!
//! or an individual one with its id (`e1` … `e11`). Pass `--quick` for a
//! reduced sweep.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// Common measurement helpers shared by experiments and benches.
pub mod measure {
    use netsched_core::Solution;
    use std::time::Instant;

    /// Wall-clock time of a closure in milliseconds together with its
    /// result.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64() * 1e3)
    }

    /// Percentage of `part` relative to `whole` (0 when `whole` is 0).
    pub fn pct(part: f64, whole: f64) -> f64 {
        if whole.abs() < 1e-12 {
            0.0
        } else {
            100.0 * part / whole
        }
    }

    /// The empirical approximation ratio `reference / achieved` (1.0 when
    /// the achieved profit is zero and the reference is zero too).
    pub fn ratio(reference: f64, sol: &Solution) -> f64 {
        if sol.profit <= 1e-12 {
            if reference <= 1e-12 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            reference / sol.profit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::measure;

    #[test]
    fn pct_and_timed_behave() {
        assert_eq!(measure::pct(1.0, 4.0), 25.0);
        assert_eq!(measure::pct(1.0, 0.0), 0.0);
        let (v, ms) = measure::timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
