//! Plain-text tables for the experiment harness.

/// A simple aligned text table with a title and caption, rendered in a
/// Markdown-friendly way so experiment output can be pasted into
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            caption: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets an explanatory caption printed under the title.
    pub fn caption(mut self, caption: &str) -> Self {
        self.caption = caption.to_string();
        self
    }

    /// Adds a row (must match the number of headers).
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text with a Markdown-style separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        if !self.caption.is_empty() {
            out.push_str(&format!("{}\n", self.caption));
        }
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:>width$} |", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an integer-valued count.
pub fn int(x: u64) -> String {
    format!("{x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "value"]).caption("a caption");
        t.add_row(vec!["4".into(), "1.25".into()]);
        t.add_row(vec!["1024".into(), "17.50".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("a caption"));
        assert!(s.contains("| 1024 |"));
        assert_eq!(t.num_rows(), 2);
        // Header separator present.
        assert!(s
            .lines()
            .any(|l| l.starts_with("|---") || l.starts_with("|--")));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f2(1.004), "1.00");
        assert_eq!(f3(2.0), "2.000");
        assert_eq!(int(7), "7");
    }
}
