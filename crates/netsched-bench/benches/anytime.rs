//! Benchmark: the anytime frontier of deadline-bounded admission.
//!
//! One warm-started serving session per round budget replays the same
//! `churn-line` trace through [`ServiceSession::step_with_deadline`],
//! sweeping budgets `k ∈ {1, 2, 4, 8, 16, 32, ∞}`. Per budget we report:
//!
//! * **mean epoch ms** — how much latency the cut actually buys;
//! * **truncated fraction** — how many epochs the budget genuinely bound
//!   (a budget that never cuts is just the warm path with extra steps);
//! * **mean certified ratio** — the quality bill: `profit / upper bound`
//!   averaged over the epochs where a certificate exists, so the frontier
//!   `latency ↓ vs certificate quality ↓` is visible in one table;
//! * **final λ after reconvergence** — one undeadlined empty step at the
//!   end must always land back at `λ ≥ 1 − ε` regardless of how hard the
//!   trace was cut (asserted, not just reported).
//!
//! Results are written to `BENCH_anytime.json`; run with `--quick` for
//! the reduced CI configuration.

use netsched_core::{AlgorithmConfig, Budget};
use netsched_service::{DemandEvent, DemandTicket, ResolveMode, ServiceSession};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{
    many_networks_line, poisson_arrivals_line, ChurnSpec, EventTrace, TraceEvent,
};
use std::time::Instant;

/// The arrival-index → ticket table is the identity (tickets are issued
/// sequentially from the initial demand set onward).
fn ticket_table(initial: usize, trace: &EventTrace) -> Vec<DemandTicket> {
    let arrivals = trace
        .batches
        .iter()
        .flat_map(|b| b.iter())
        .filter(|e| e.is_arrival())
        .count();
    (0..(initial + arrivals) as u64).map(DemandTicket).collect()
}

fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(netsched_service::DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
            TraceEvent::ArriveTree { .. } => unreachable!("line scenario"),
        })
        .collect()
}

struct Scenario {
    problem: netsched_graph::LineProblem,
    trace: EventTrace,
    tickets: Vec<DemandTicket>,
    config: AlgorithmConfig,
}

fn scenario(epochs: usize, seed: u64) -> Scenario {
    let workload = many_networks_line(4, 48, seed);
    let trace = poisson_arrivals_line(
        &workload,
        &ChurnSpec {
            epochs,
            churn: 0.08,
            focus: 2,
            seed: seed ^ 0xA17D1E,
        },
    );
    let tickets = ticket_table(workload.demands, &trace);
    Scenario {
        problem: workload.build().unwrap(),
        trace,
        tickets,
        config: AlgorithmConfig::deterministic(0.25),
    }
}

struct BudgetResult {
    epochs: usize,
    total_s: f64,
    truncated: usize,
    ratio_sum: f64,
    ratio_count: usize,
    final_lambda: f64,
    resume_s: f64,
}

impl BudgetResult {
    fn mean_ratio(&self) -> f64 {
        if self.ratio_count == 0 {
            f64::NAN
        } else {
            self.ratio_sum / self.ratio_count as f64
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            (
                "mean_epoch_ms",
                JsonValue::num(1e3 * self.total_s / self.epochs as f64),
            ),
            (
                "truncated_fraction",
                JsonValue::num(self.truncated as f64 / self.epochs as f64),
            ),
            ("mean_certified_ratio", JsonValue::num(self.mean_ratio())),
            ("final_lambda", JsonValue::num(self.final_lambda)),
            ("reconverge_ms", JsonValue::num(1e3 * self.resume_s)),
        ])
    }
}

fn run_budget(sc: &Scenario, rounds: Option<u64>) -> BudgetResult {
    let mut session =
        ServiceSession::for_line(&sc.problem, sc.config).with_resolve_mode(ResolveMode::Warm);
    let mut truncated = 0;
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0;
    let start = Instant::now();
    for batch in &sc.trace.batches {
        let events = to_events(batch, &sc.tickets);
        // Round accounting is per-`Budget`: construct a fresh one each epoch.
        let budget = rounds.map_or_else(Budget::unlimited, Budget::rounds);
        let delta = session
            .step_with_deadline(&events, &budget)
            .expect("trace replays");
        if delta.stats.quality.is_truncated() {
            truncated += 1;
        }
        if let Some(ratio) = session.last_solution().and_then(|s| s.certified_ratio()) {
            ratio_sum += ratio;
            ratio_count += 1;
        }
    }
    let total_s = start.elapsed().as_secs_f64();

    // However hard the sweep cut, one undeadlined step reconverges.
    let resume_start = Instant::now();
    session.step(&[]).expect("reconvergence step");
    let resume_s = resume_start.elapsed().as_secs_f64();
    let final_lambda = session
        .last_solution()
        .map(|s| s.diagnostics.lambda)
        .unwrap_or(f64::NAN);
    assert!(
        session.live_demands() == 0 || final_lambda >= 1.0 - sc.config.epsilon - 1e-6,
        "reconverged λ = {final_lambda} below 1 − ε"
    );
    BudgetResult {
        epochs: sc.trace.batches.len(),
        total_s,
        truncated,
        ratio_sum,
        ratio_count,
        final_lambda,
        resume_s,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    let workers = rayon::current_num_threads();

    let epochs = if quick { 12 } else { 40 };
    let sc = scenario(epochs, 13);
    println!("benchmark group: anytime/round-budget sweep ({epochs} epochs)");
    let budgets: &[(Option<u64>, &str)] = &[
        (Some(1), "1"),
        (Some(2), "2"),
        (Some(4), "4"),
        (Some(8), "8"),
        (Some(16), "16"),
        (Some(32), "32"),
        (None, "unlimited"),
    ];
    let mut budgets_json: Vec<(String, JsonValue)> = Vec::new();
    for &(rounds, name) in budgets {
        let result = run_budget(&sc, rounds);
        println!(
            "  k = {name:>9}   {:>8.3}ms/epoch   truncated {:>5.1}%   \
             mean certified ratio {:>6.3}   reconverge {:>8.3}ms (final λ = {:.4})",
            1e3 * result.total_s / result.epochs as f64,
            100.0 * result.truncated as f64 / result.epochs as f64,
            result.mean_ratio(),
            1e3 * result.resume_s,
            result.final_lambda,
        );
        budgets_json.push((name.to_string(), result.to_json()));
    }

    let mut entries = netsched_bench::host::meta("anytime", mode, workers);
    entries.push(("epochs", JsonValue::int(epochs)));
    entries.push((
        "round_budgets",
        JsonValue::Object(budgets_json.into_iter().collect()),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_anytime.json");
    std::fs::write(path, json.render()).expect("writing BENCH_anytime.json must succeed");
    println!("\nwrote BENCH_anytime.json ({mode} mode, rayon workers: {workers})");
}
