//! Criterion bench: line networks with windows — the paper's (4 + ε) /
//! (23 + ε) algorithms vs the Panconesi–Sozio baseline and the exact DP.
//! Runtime companion of E5/E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_baseline::{solve_ps_line_unit, weighted_interval_optimum};
use netsched_core::{solve_line_arbitrary, solve_line_unit, AlgorithmConfig};
use netsched_workloads::{HeightDistribution, LineWorkload};

fn bench_line_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_unit_solve");
    group.sample_size(10);
    for &m in &[30usize, 60, 120] {
        let workload = LineWorkload {
            timeslots: 96,
            resources: 2,
            demands: m,
            max_slack: 4,
            seed: 0x11,
            ..LineWorkload::default()
        };
        let problem = workload.build().unwrap();
        group.bench_with_input(BenchmarkId::new("theorem_7_1", m), &problem, |b, p| {
            b.iter(|| solve_line_unit(p, &AlgorithmConfig::deterministic(0.1)))
        });
        group.bench_with_input(BenchmarkId::new("panconesi_sozio", m), &problem, |b, p| {
            b.iter(|| solve_ps_line_unit(p, &AlgorithmConfig::deterministic(0.1)))
        });
    }
    group.finish();
}

fn bench_line_arbitrary_and_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_arbitrary_and_dp");
    group.sample_size(10);
    let workload = LineWorkload {
        timeslots: 96,
        resources: 2,
        demands: 60,
        max_slack: 4,
        heights: HeightDistribution::Mixed {
            wide_fraction: 0.3,
            min_narrow: 0.1,
        },
        seed: 2,
        ..LineWorkload::default()
    };
    let problem = workload.build().unwrap();
    group.bench_function("theorem_7_2_arbitrary_heights", |b| {
        b.iter(|| solve_line_arbitrary(&problem, &AlgorithmConfig::deterministic(0.1)))
    });

    // The exact DP on single-resource fixed intervals.
    let dp_workload = LineWorkload {
        timeslots: 256,
        resources: 1,
        demands: 200,
        max_slack: 0,
        access_probability: 1.0,
        seed: 3,
        ..LineWorkload::default()
    };
    let dp_problem = dp_workload.build().unwrap();
    let dp_universe = dp_problem.universe();
    group.bench_function("weighted_interval_dp_exact", |b| {
        b.iter(|| weighted_interval_optimum(&dp_universe).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_line_unit, bench_line_arbitrary_and_dp);
criterion_main!(benches);
