//! Benchmark: the cost of durability and the speed of recovery.
//!
//! Three arms over the `churn-line` serving scenario:
//!
//! * **append throughput** — one durable session per [`Durability`] mode
//!   replays the same churn trace; reports epochs/s, the journal's share
//!   of the epoch (from the session's own `journal_seconds` telemetry)
//!   and log bytes per epoch. The spread between `None`/`Epoch`/`Batch`
//!   is the fsync bill.
//! * **snapshot cost** — times [`DurableSession::snapshot_now`] at the
//!   end of the run and reports the document size on disk.
//! * **restore scaling** — for log lengths `L ∈ {25, 50, 100, 200}`
//!   (full mode), restores the same history twice: from the epoch-0
//!   snapshot replaying **all** `L` records (the full cold rebuild a
//!   snapshotless server would pay) and from the newest cadence snapshot
//!   replaying only the suffix. Snapshot+replay must beat the full
//!   rebuild on `L ≥ 100` logs — the number that justifies the snapshot
//!   cadence.
//!
//! Results are written to `BENCH_durability.json`; run with `--quick`
//! for the reduced CI configuration.

use netsched_core::AlgorithmConfig;
use netsched_persist::{restore, Durability, DurableSession, PersistConfig};
use netsched_service::{DemandEvent, DemandTicket, ServiceSession};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{
    many_networks_line, poisson_arrivals_line, ChurnSpec, EventTrace, TraceEvent,
};
use std::path::PathBuf;
use std::time::Instant;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netsched-bench-durability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The arrival-index → ticket table is the identity (tickets are issued
/// sequentially from the initial demand set onward).
fn ticket_table(initial: usize, trace: &EventTrace) -> Vec<DemandTicket> {
    let arrivals = trace
        .batches
        .iter()
        .flat_map(|b| b.iter())
        .filter(|e| e.is_arrival())
        .count();
    (0..(initial + arrivals) as u64).map(DemandTicket).collect()
}

fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(netsched_service::DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
            TraceEvent::ArriveTree { .. } => unreachable!("line scenario"),
        })
        .collect()
}

struct Scenario {
    problem: netsched_graph::LineProblem,
    trace: EventTrace,
    tickets: Vec<DemandTicket>,
    config: AlgorithmConfig,
}

fn scenario(epochs: usize, seed: u64) -> Scenario {
    let workload = many_networks_line(4, 48, seed);
    let trace = poisson_arrivals_line(
        &workload,
        &ChurnSpec {
            epochs,
            churn: 0.06,
            focus: 2,
            seed: seed ^ 0xD15EA5E,
        },
    );
    let tickets = ticket_table(workload.demands, &trace);
    Scenario {
        problem: workload.build().unwrap(),
        trace,
        tickets,
        config: AlgorithmConfig::deterministic(0.25),
    }
}

// ---------------------------------------------------------------------
// Arm 1+2: append throughput per durability mode + snapshot cost
// ---------------------------------------------------------------------

struct AppendResult {
    epochs: usize,
    total_s: f64,
    journal_s: f64,
    log_bytes: u64,
    snapshot_s: f64,
    snapshot_bytes: u64,
}

impl AppendResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            (
                "mean_epoch_ms",
                JsonValue::num(1e3 * self.total_s / self.epochs as f64),
            ),
            (
                "mean_journal_us",
                JsonValue::num(1e6 * self.journal_s / self.epochs as f64),
            ),
            (
                "journal_share",
                JsonValue::num(self.journal_s / self.total_s),
            ),
            (
                "log_bytes_per_epoch",
                JsonValue::num(self.log_bytes as f64 / self.epochs as f64),
            ),
            ("snapshot_ms", JsonValue::num(1e3 * self.snapshot_s)),
            (
                "snapshot_bytes",
                JsonValue::int(self.snapshot_bytes as usize),
            ),
        ])
    }
}

fn run_append(sc: &Scenario, durability: Durability, tag: &str) -> AppendResult {
    let dir = temp_dir(tag);
    let mut durable = DurableSession::create(
        &dir,
        ServiceSession::for_line(&sc.problem, sc.config),
        PersistConfig {
            durability,
            snapshot_every: 0,
        },
    )
    .expect("create");
    let start = Instant::now();
    let mut journal_s = 0.0;
    for batch in &sc.trace.batches {
        let events = to_events(batch, &sc.tickets);
        let delta = durable.step(&events).expect("trace replays");
        journal_s += delta.stats.journal_seconds;
    }
    let total_s = start.elapsed().as_secs_f64();
    let log_bytes = std::fs::metadata(dir.join(netsched_persist::WAL_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    let snap_start = Instant::now();
    durable.snapshot_now().expect("snapshot");
    let snapshot_s = snap_start.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(netsched_persist::snapshot_path(
        &dir,
        durable.session().epoch(),
    ))
    .map(|m| m.len())
    .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    AppendResult {
        epochs: sc.trace.batches.len(),
        total_s,
        journal_s,
        log_bytes,
        snapshot_s,
        snapshot_bytes,
    }
}

// ---------------------------------------------------------------------
// Arm 3: restore time vs log length, snapshot+replay vs full rebuild
// ---------------------------------------------------------------------

struct RestoreResult {
    log_len: usize,
    full_rebuild_s: f64,
    snapshot_replay_s: f64,
    replayed_suffix: u64,
    snapshot_epoch: u64,
}

impl RestoreResult {
    fn speedup(&self) -> f64 {
        self.full_rebuild_s / self.snapshot_replay_s
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("log_epochs", JsonValue::int(self.log_len)),
            ("full_rebuild_ms", JsonValue::num(1e3 * self.full_rebuild_s)),
            (
                "snapshot_replay_ms",
                JsonValue::num(1e3 * self.snapshot_replay_s),
            ),
            (
                "replayed_suffix_epochs",
                JsonValue::int(self.replayed_suffix as usize),
            ),
            (
                "snapshot_epoch",
                JsonValue::int(self.snapshot_epoch as usize),
            ),
            ("restore_speedup", JsonValue::num(self.speedup())),
        ])
    }
}

fn run_restore(log_len: usize, cadence: u64, seed: u64) -> RestoreResult {
    let sc = scenario(log_len, seed);

    // One directory with only the epoch-0 snapshot (every record must
    // replay: the full cold rebuild), one with the snapshot cadence.
    let mut dirs = Vec::new();
    for (tag, snapshot_every) in [("full", 0u64), ("cadence", cadence)] {
        let dir = temp_dir(&format!("restore-{log_len}-{tag}"));
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&sc.problem, sc.config),
            PersistConfig {
                durability: Durability::None,
                snapshot_every,
            },
        )
        .expect("create");
        for batch in &sc.trace.batches {
            let events = to_events(batch, &sc.tickets);
            durable.step(&events).expect("trace replays");
        }
        dirs.push(dir);
    }

    let start = Instant::now();
    let full = restore(&dirs[0]).expect("full rebuild restores");
    let full_rebuild_s = start.elapsed().as_secs_f64();
    assert_eq!(full.report.replayed_epochs as usize, log_len);

    let start = Instant::now();
    let quickpath = restore(&dirs[1]).expect("cadence restore");
    let snapshot_replay_s = start.elapsed().as_secs_f64();
    assert_eq!(full.session.profit(), quickpath.session.profit());
    assert_eq!(full.session.epoch(), quickpath.session.epoch());

    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
    RestoreResult {
        log_len,
        full_rebuild_s,
        snapshot_replay_s,
        replayed_suffix: quickpath.report.replayed_epochs,
        snapshot_epoch: quickpath.report.snapshot_epoch,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    let workers = rayon::current_num_threads();

    // ---- append throughput + snapshot cost ----
    let append_epochs = if quick { 12 } else { 50 };
    let sc = scenario(append_epochs, 7);
    println!("benchmark group: durability/append ({append_epochs} epochs)");
    let mut modes_json: Vec<(String, JsonValue)> = Vec::new();
    for (durability, name) in [
        (Durability::None, "none"),
        (Durability::Epoch, "epoch"),
        (Durability::Batch, "batch"),
    ] {
        let result = run_append(&sc, durability, name);
        println!(
            "  {name:>5}   {:>8.3}ms/epoch   journal {:>7.1}us/epoch ({:>5.2}% of epoch)   \
             {:>6.0} log bytes/epoch   snapshot {:>7.3}ms / {} bytes",
            1e3 * result.total_s / result.epochs as f64,
            1e6 * result.journal_s / result.epochs as f64,
            100.0 * result.journal_s / result.total_s,
            result.log_bytes as f64 / result.epochs as f64,
            1e3 * result.snapshot_s,
            result.snapshot_bytes,
        );
        modes_json.push((name.to_string(), result.to_json()));
    }

    // ---- restore scaling ----
    // The cadence deliberately does not divide the log lengths, so every
    // restore replays a realistic non-empty suffix.
    let log_lens: &[usize] = if quick {
        &[10, 25]
    } else {
        &[25, 50, 100, 200]
    };
    let cadence = 16u64;
    println!("\nbenchmark group: durability/restore (snapshot cadence {cadence})");
    let mut restore_json: Vec<(String, JsonValue)> = Vec::new();
    for &log_len in log_lens {
        let result = run_restore(log_len, cadence, 11);
        println!(
            "  L = {log_len:>4}   full rebuild {:>9.3}ms   snapshot+replay {:>9.3}ms \
             (suffix {:>3} epochs from snapshot @ {})   speedup {:.2}x",
            1e3 * result.full_rebuild_s,
            1e3 * result.snapshot_replay_s,
            result.replayed_suffix,
            result.snapshot_epoch,
            result.speedup(),
        );
        if !quick && log_len >= 100 {
            assert!(
                result.speedup() > 1.0,
                "snapshot+replay must beat the full cold rebuild on {log_len}-epoch logs"
            );
        }
        restore_json.push((format!("{log_len}"), result.to_json()));
    }

    let mut entries = netsched_bench::host::meta("durability", mode, workers);
    entries.push((
        "append",
        JsonValue::Object(modes_json.into_iter().collect()),
    ));
    entries.push((
        "restore",
        JsonValue::object(vec![
            ("snapshot_cadence", JsonValue::int(cadence as usize)),
            (
                "log_lengths",
                JsonValue::Object(restore_json.into_iter().collect()),
            ),
        ]),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    std::fs::write(path, json.render()).expect("writing BENCH_durability.json must succeed");
    println!("\nwrote BENCH_durability.json ({mode} mode, rayon workers: {workers})");
}
