//! Benchmark: the dynamic serving path at a 10⁵-demand live set.
//!
//! Replays the `mega-churn-line` / `mega-churn-tree` serving traces — 10⁵
//! live demands over hundreds of networks, Poisson churn focused on a few
//! hot shards per epoch — through one long-lived warm [`ServiceSession`]
//! and reports what the million-demand scale push is accountable for:
//!
//! * **sustained epochs/sec** over the whole replay (splice + dirty-shard
//!   CSR rebuild + warm re-solve per epoch), with the rebuild/solve split
//!   from the session's own telemetry;
//! * **bytes/demand** from the committed-bytes audit of every hot layer
//!   (universe columns + paths, sharding/CSR/cross-group arenas, Fenwick
//!   duals + raise records + replay stack) via
//!   [`ServiceSession::memory_footprint`];
//! * **peak RSS** (`VmHWM`) of the whole process, in the shared header.
//!
//! Results are written to `BENCH_mega_scale.json`. Run with `--quick` for
//! the reduced CI configuration (a scaled-down live set; the committed
//! artifact must come from a full-mode run) and `--threads N` to pin the
//! rayon shim's worker count.

use netsched_core::AlgorithmConfig;
use netsched_service::{replay_trace, ResolveMode, ServiceSession};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{
    poisson_arrivals_line, poisson_arrivals_tree, scenario_by_name, ChurnSpec, Scenario,
};
use std::time::Instant;

/// Parses `--threads N` (0 = the shim's default worker count).
fn thread_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args
                .next()
                .and_then(|n| n.parse().ok())
                .expect("--threads takes a worker count");
        }
    }
    0
}

struct MegaResult {
    live_demands: usize,
    instances: usize,
    epochs: usize,
    events: usize,
    replay_s: f64,
    rebuild_s: f64,
    solve_s: f64,
    mean_dirty_shards: f64,
    universe_bytes: usize,
    conflict_bytes: usize,
    warm_bytes: usize,
    /// Per-epoch admission latency (`epoch.step_ns`) from the session's
    /// obs registry, covering the replayed churn epochs only.
    latency: netsched_obs::HistogramSnapshot,
}

impl MegaResult {
    fn total_bytes(&self) -> usize {
        self.universe_bytes + self.conflict_bytes + self.warm_bytes
    }

    fn epochs_per_sec(&self) -> f64 {
        self.epochs as f64 / self.replay_s
    }

    fn bytes_per_demand(&self) -> f64 {
        self.total_bytes() as f64 / self.live_demands.max(1) as f64
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("live_demands", JsonValue::int(self.live_demands)),
            ("instances", JsonValue::int(self.instances)),
            ("epochs", JsonValue::int(self.epochs)),
            ("events", JsonValue::int(self.events)),
            (
                "sustained_epochs_per_sec",
                JsonValue::num(self.epochs_per_sec()),
            ),
            (
                "mean_epoch_ms",
                JsonValue::num(1e3 * self.replay_s / self.epochs as f64),
            ),
            (
                "mean_rebuild_ms",
                JsonValue::num(1e3 * self.rebuild_s / self.epochs as f64),
            ),
            (
                "mean_solve_ms",
                JsonValue::num(1e3 * self.solve_s / self.epochs as f64),
            ),
            ("mean_dirty_shards", JsonValue::num(self.mean_dirty_shards)),
            ("universe_bytes", JsonValue::int(self.universe_bytes)),
            ("conflict_bytes", JsonValue::int(self.conflict_bytes)),
            ("warm_bytes", JsonValue::int(self.warm_bytes)),
            ("total_bytes", JsonValue::int(self.total_bytes())),
            ("bytes_per_demand", JsonValue::num(self.bytes_per_demand())),
            (
                "latency_p50_ms",
                JsonValue::num(self.latency.p50 as f64 / 1e6),
            ),
            (
                "latency_p95_ms",
                JsonValue::num(self.latency.p95 as f64 / 1e6),
            ),
            (
                "latency_p99_ms",
                JsonValue::num(self.latency.p99 as f64 / 1e6),
            ),
            (
                "latency_max_ms",
                JsonValue::num(self.latency.max as f64 / 1e6),
            ),
        ])
    }
}

fn run_scenario(name: &str, quick: bool) -> MegaResult {
    // Serving accuracy as in the dynamic_serving bench: the ε a serving
    // tier would run at; the certificate suite pins correctness elsewhere.
    let config = AlgorithmConfig::deterministic(0.25);
    let mut scenario = scenario_by_name(name).expect("mega scenario registered");
    let spec = {
        let base = scenario.churn().expect("mega scenario has churn").clone();
        ChurnSpec {
            epochs: if quick { 6 } else { base.epochs },
            ..base
        }
    };
    // Quick mode scales the live set down so CI can afford the replay; the
    // committed artifact comes from a full-mode run at the real size.
    let (session, trace) = match &mut scenario {
        Scenario::Line { workload, .. } => {
            if quick {
                workload.demands = 4_000;
            }
            let problem = workload.build().expect("mega line workload builds");
            (
                ServiceSession::for_line(&problem, config),
                poisson_arrivals_line(workload, &spec),
            )
        }
        Scenario::Tree { workload, .. } => {
            if quick {
                workload.demands = 4_000;
            }
            let problem = workload.build().expect("mega tree workload builds");
            (
                ServiceSession::for_tree(&problem, config),
                poisson_arrivals_tree(workload, &spec),
            )
        }
    };
    let mut session = session.with_resolve_mode(ResolveMode::Warm);
    session.step(&[]).expect("initial solve"); // warm-up, untimed

    // Fresh registry post warm-up so the latency percentiles cover the
    // measured churn epochs only, not the initial from-scratch solve.
    let mut session = session.with_obs(netsched_obs::ObsRegistry::default());

    let start = Instant::now();
    let deltas = replay_trace(&mut session, &trace).expect("trace replays");
    let replay_s = start.elapsed().as_secs_f64();

    let latency = session.obs_registry().histogram("epoch.step_ns").snapshot();
    assert_eq!(
        latency.count,
        trace.batches.len() as u64,
        "epoch.step_ns must have one sample per churn epoch"
    );

    let footprint = session.memory_footprint();
    MegaResult {
        live_demands: session.live_demands(),
        instances: session.universe().num_instances(),
        epochs: trace.batches.len(),
        events: trace.num_events(),
        replay_s,
        rebuild_s: deltas.iter().map(|d| d.stats.rebuild_seconds).sum(),
        solve_s: deltas.iter().map(|d| d.stats.solve_seconds).sum(),
        mean_dirty_shards: deltas.iter().map(|d| d.stats.dirty_shards).sum::<usize>() as f64
            / deltas.len() as f64,
        universe_bytes: footprint.universe_bytes,
        conflict_bytes: footprint.conflict_bytes,
        warm_bytes: footprint.warm_bytes,
        latency,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    rayon::ThreadPoolBuilder::new()
        .num_threads(thread_arg())
        .build_global()
        .ok();
    let workers = rayon::current_num_threads();

    let mut scenarios_json: Vec<(String, JsonValue)> = Vec::new();
    for name in ["mega-churn-line", "mega-churn-tree"] {
        println!("\nbenchmark group: mega_scale/{name}");
        let result = run_scenario(name, quick);
        println!(
            "  live demands: {}   instances: {}   epochs: {}",
            result.live_demands, result.instances, result.epochs
        );
        println!(
            "  sustained {:>7.2} epochs/sec   epoch {:>9.3}ms (rebuild {:>7.3} + solve {:>8.3})   \
             dirty shards {:>4.1}",
            result.epochs_per_sec(),
            1e3 * result.replay_s / result.epochs as f64,
            1e3 * result.rebuild_s / result.epochs as f64,
            1e3 * result.solve_s / result.epochs as f64,
            result.mean_dirty_shards,
        );
        println!(
            "  committed {:>6.1} MiB (universe {:.1} + conflict {:.1} + warm {:.1})   \
             {:>6.0} bytes/demand",
            result.total_bytes() as f64 / (1 << 20) as f64,
            result.universe_bytes as f64 / (1 << 20) as f64,
            result.conflict_bytes as f64 / (1 << 20) as f64,
            result.warm_bytes as f64 / (1 << 20) as f64,
            result.bytes_per_demand(),
        );
        scenarios_json.push((name.to_string(), result.to_json()));
    }

    let mut entries = netsched_bench::host::meta("mega_scale", mode, workers);
    entries.push((
        "scenarios",
        JsonValue::Object(scenarios_json.into_iter().collect()),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mega_scale.json");
    std::fs::write(path, json.render()).expect("writing BENCH_mega_scale.json must succeed");
    println!(
        "\nwrote BENCH_mega_scale.json ({mode} mode, rayon workers: {workers}, peak RSS {} kB)",
        netsched_bench::host::peak_rss_kb()
    );
}
