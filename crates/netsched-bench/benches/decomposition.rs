//! Criterion bench: building the three tree decompositions and the layered
//! decomposition (E1/E2 runtime companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_decomp::{
    balancing_decomposition, ideal_decomposition, root_fixing_decomposition, InstanceLayering,
    TreeDecompositionKind,
};
use netsched_graph::{NetworkId, TreeNetwork, VertexId};
use netsched_workloads::{random_tree_edges, TreeTopology, TreeWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tree_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_decomposition_build");
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(7);
        let edges = random_tree_edges(TreeTopology::RandomAttachment, n, &mut rng);
        let tree = TreeNetwork::new(NetworkId::new(0), n, edges).unwrap();
        group.bench_with_input(BenchmarkId::new("ideal", n), &tree, |b, t| {
            b.iter(|| ideal_decomposition(t))
        });
        group.bench_with_input(BenchmarkId::new("balancing", n), &tree, |b, t| {
            b.iter(|| balancing_decomposition(t))
        });
        group.bench_with_input(BenchmarkId::new("root_fixing", n), &tree, |b, t| {
            b.iter(|| root_fixing_decomposition(t, VertexId::new(0)))
        });
    }
    group.finish();
}

fn bench_layering(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_layering");
    for &n in &[64usize, 256] {
        let workload = TreeWorkload {
            vertices: n,
            networks: 3,
            demands: 2 * n,
            seed: 3,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        group.bench_with_input(BenchmarkId::new("ideal_layering", n), &n, |b, _| {
            b.iter(|| {
                InstanceLayering::for_tree_problem(
                    &problem,
                    &universe,
                    TreeDecompositionKind::Ideal,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_decompositions, bench_layering);
criterion_main!(benches);
