//! Benchmark: wait-free schedule reads under pipelined epochs.
//!
//! Replays the `mega-churn-line` serving trace (10⁵ live demands) twice
//! with concurrent reader threads polling the current schedule, and
//! compares two serving arrangements:
//!
//! * **baseline_locked** — the synchronous read-after-step design this PR
//!   replaces: one `Mutex<ServiceSession>` shared by the writer and the
//!   readers. Every read waits for the lock, so a reader that lands while
//!   an epoch is stepping blocks for the whole splice/rebuild/solve.
//! * **pipelined** — a [`PipelinedService`] worker stepping epochs (queue
//!   lookahead feeding `prefetch_arrivals`, so splice inputs for epoch
//!   N+1 materialize during epoch N's replay) while readers observe the
//!   published schedule through wait-free [`ScheduleReader`]s: one atomic
//!   load per read, a mutex + `Arc` clone only on epoch change.
//!
//! Both arms run the identical reader loop (read one consistent
//! profit/certificate pair, then pause 200µs), so the reported
//! `read_throughput` and reader latency percentiles differ only by the
//! read path. The full-mode run asserts the pipelined reader p99 is at
//! least 10× lower than the locked baseline and that recorded staleness
//! never exceeds one epoch.
//!
//! Results are written to `BENCH_concurrent_serving.json`. Run with
//! `--quick` for the reduced CI configuration (scaled-down live set; the
//! committed artifact must come from a full-mode run) and `--threads N`
//! to pin the rayon shim's worker count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use netsched_core::AlgorithmConfig;
use netsched_obs::ObsRegistry;
use netsched_service::{
    DemandEvent, DemandRequest, DemandTicket, PipelinedService, ResolveMode, ServiceSession,
};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{
    poisson_arrivals_line, scenario_by_name, ChurnSpec, EventTrace, Scenario, TraceEvent,
};

/// Concurrent reader threads per arm. The harness host is small; the
/// latency contrast comes from the read path, not reader fan-out.
const READERS: usize = 2;

/// Pause between reads — a polling server tier, not a spin loop, so the
/// writer is never starved and both arms sample identically.
const READ_PAUSE: Duration = Duration::from_micros(200);

/// Parses `--threads N` (0 = the shim's default worker count).
fn thread_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args
                .next()
                .and_then(|n| n.parse().ok())
                .expect("--threads takes a worker count");
        }
    }
    0
}

fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
            TraceEvent::ArriveTree { .. } => unreachable!("line trace only"),
        })
        .collect()
}

/// The trace's batches as `DemandEvent` batches, resolving expiries
/// through the session's ticket numbering (tickets are assigned in
/// admission order, so the table is computable without stepping).
fn event_batches(trace: &EventTrace, initial: Vec<DemandTicket>) -> Vec<Vec<DemandEvent>> {
    let mut tickets = initial;
    let mut next = tickets.len() as u64;
    let mut batches = Vec::with_capacity(trace.batches.len());
    for batch in &trace.batches {
        let events = to_events(batch, &tickets);
        for event in &events {
            if matches!(event, DemandEvent::Arrive(_)) {
                tickets.push(DemandTicket(next));
                next += 1;
            }
        }
        batches.push(events);
    }
    batches
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ArmResult {
    label: &'static str,
    epochs: usize,
    replay_s: f64,
    reads: u64,
    /// Per-read latency samples (ns), merged across readers and sorted.
    latencies_ns: Vec<u64>,
    /// Per-epoch admission latency (`epoch.step_ns`) over the replayed
    /// churn epochs.
    admission: netsched_obs::HistogramSnapshot,
}

impl ArmResult {
    fn read_throughput(&self) -> f64 {
        self.reads as f64 / self.replay_s
    }

    fn read_p99_ms(&self) -> f64 {
        percentile(&self.latencies_ns, 0.99) as f64 / 1e6
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            ("replay_seconds", JsonValue::num(self.replay_s)),
            (
                "epochs_per_sec",
                JsonValue::num(self.epochs as f64 / self.replay_s),
            ),
            ("reads", JsonValue::int(self.reads as usize)),
            ("read_throughput", JsonValue::num(self.read_throughput())),
            (
                "latency_p50_ms",
                JsonValue::num(percentile(&self.latencies_ns, 0.50) as f64 / 1e6),
            ),
            (
                "latency_p95_ms",
                JsonValue::num(percentile(&self.latencies_ns, 0.95) as f64 / 1e6),
            ),
            ("latency_p99_ms", JsonValue::num(self.read_p99_ms())),
            (
                "latency_max_ms",
                JsonValue::num(self.latencies_ns.last().copied().unwrap_or(0) as f64 / 1e6),
            ),
            (
                "admission_p50_ms",
                JsonValue::num(self.admission.p50 as f64 / 1e6),
            ),
            (
                "admission_p99_ms",
                JsonValue::num(self.admission.p99 as f64 / 1e6),
            ),
        ])
    }

    fn print(&self) {
        println!(
            "  {:<16} {:>7.2} epochs/sec   {:>9.0} reads/sec   read p50 {:>10.4}ms  p99 {:>10.4}ms  max {:>10.4}ms",
            self.label,
            self.epochs as f64 / self.replay_s,
            self.read_throughput(),
            percentile(&self.latencies_ns, 0.50) as f64 / 1e6,
            self.read_p99_ms(),
            self.latencies_ns.last().copied().unwrap_or(0) as f64 / 1e6,
        );
    }
}

/// A fresh warm session over `problem` with its initial solve done and a
/// clean obs registry, so both arms start from the same state and their
/// `epoch.step_ns` covers only the replayed churn epochs.
fn prepared_session(
    problem: &netsched_graph::LineProblem,
    config: AlgorithmConfig,
) -> ServiceSession {
    let mut session =
        ServiceSession::for_line(problem, config).with_resolve_mode(ResolveMode::Warm);
    session.step(&[]).expect("initial solve");
    session.with_obs(ObsRegistry::default())
}

/// The synchronous read-after-step baseline: writer and readers contend
/// on one mutex around the whole session.
fn run_baseline(session: ServiceSession, batches: &[Vec<DemandEvent>]) -> ArmResult {
    let locked = Mutex::new(session);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let (reads, mut latencies, replay_s) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let locked = &locked;
                let stop = &stop;
                scope.spawn(move || {
                    let mut reads = 0u64;
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Acquire) || reads == 0 {
                        let t = Instant::now();
                        let (profit, bound) = {
                            let session = locked.lock().expect("session lock");
                            (session.profit(), session.certificate().optimum_upper_bound)
                        };
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert!(bound + 1e-6 >= profit, "weak duality under the lock");
                        reads += 1;
                        std::thread::sleep(READ_PAUSE);
                    }
                    (reads, lat)
                })
            })
            .collect();
        for events in batches {
            locked
                .lock()
                .expect("session lock")
                .step(events)
                .expect("baseline step");
        }
        let replay_s = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Release);
        let mut reads = 0u64;
        let mut latencies = Vec::new();
        for handle in handles {
            let (r, mut l) = handle.join().expect("reader thread");
            reads += r;
            latencies.append(&mut l);
        }
        (reads, latencies, replay_s)
    });
    latencies.sort_unstable();
    let session = locked.into_inner().expect("unpoisoned session");
    ArmResult {
        label: "baseline_locked",
        epochs: batches.len(),
        replay_s,
        reads,
        latencies_ns: latencies,
        admission: session.obs_registry().histogram("epoch.step_ns").snapshot(),
    }
}

/// The pipelined arm: worker thread steps epochs with queue lookahead
/// feeding the prefetch; readers poll wait-free `ScheduleReader`s.
/// Returns the arm result plus staleness/prefetch telemetry from the
/// session's registry.
fn run_pipelined(session: ServiceSession, batches: Vec<Vec<DemandEvent>>) -> (ArmResult, u64, u64) {
    let epochs = batches.len();
    let service = PipelinedService::new(session);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let (reads, mut latencies, replay_s) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let mut reader = service.reader();
                let stop = &stop;
                scope.spawn(move || {
                    let mut reads = 0u64;
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Acquire) || reads == 0 {
                        let t = Instant::now();
                        let snap = reader.read();
                        let (profit, bound) =
                            (snap.profit(), snap.certificate().optimum_upper_bound);
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert!(bound + 1e-6 >= profit, "weak duality in the snapshot");
                        reads += 1;
                        std::thread::sleep(READ_PAUSE);
                    }
                    (reads, lat)
                })
            })
            .collect();
        let submissions: Vec<_> = batches
            .into_iter()
            .map(|events| service.submit(events).expect("unbounded queue accepts"))
            .collect();
        for handle in submissions {
            handle.wait().expect("epoch ran");
        }
        let replay_s = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Release);
        let mut reads = 0u64;
        let mut latencies = Vec::new();
        for handle in handles {
            let (r, mut l) = handle.join().expect("reader thread");
            reads += r;
            latencies.append(&mut l);
        }
        (reads, latencies, replay_s)
    });
    latencies.sort_unstable();
    let session = service.shutdown();
    let report = session.obs_registry().snapshot();
    let staleness_max = report
        .histogram("read.staleness_epochs")
        .map(|h| h.max)
        .unwrap_or(0);
    let prefetch_hits = report.counter("pipeline.prefetch_hits").unwrap_or(0);
    let arm = ArmResult {
        label: "pipelined",
        epochs,
        replay_s,
        reads,
        latencies_ns: latencies,
        admission: session.obs_registry().histogram("epoch.step_ns").snapshot(),
    };
    (arm, staleness_max, prefetch_hits)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    rayon::ThreadPoolBuilder::new()
        .num_threads(thread_arg())
        .build_global()
        .ok();
    let workers = rayon::current_num_threads();

    // Serving accuracy as in the other serving benches; the certificate
    // suite pins correctness elsewhere.
    let config = AlgorithmConfig::deterministic(0.25);
    let mut scenario = scenario_by_name("mega-churn-line").expect("mega scenario registered");
    let spec = {
        let base = scenario.churn().expect("mega scenario has churn").clone();
        ChurnSpec {
            epochs: if quick { 6 } else { base.epochs },
            ..base
        }
    };
    let Scenario::Line { workload, .. } = &mut scenario else {
        unreachable!("mega-churn-line is a line scenario")
    };
    if quick {
        workload.demands = 4_000;
    }
    let problem = workload.build().expect("mega line workload builds");
    let trace = poisson_arrivals_line(workload, &spec);

    println!("\nbenchmark group: concurrent_serving/mega-churn-line");
    let baseline_session = prepared_session(&problem, config);
    let live_demands = baseline_session.live_demands();
    let batches = event_batches(&trace, baseline_session.live_tickets());
    println!(
        "  live demands: {}   epochs: {}   readers: {}",
        live_demands,
        batches.len(),
        READERS
    );

    let baseline = run_baseline(baseline_session, &batches);
    baseline.print();

    let (pipelined, staleness_max, prefetch_hits) =
        run_pipelined(prepared_session(&problem, config), batches);
    pipelined.print();

    let speedup_p99 = baseline.read_p99_ms() / pipelined.read_p99_ms().max(1e-9);
    println!(
        "  reader p99 speedup: {speedup_p99:>6.1}x   staleness max: {staleness_max} epoch(s)   \
         prefetch hits: {prefetch_hits}"
    );
    assert!(
        staleness_max <= 1,
        "published reads must never lag more than one epoch"
    );
    if !quick {
        assert!(
            speedup_p99 >= 10.0,
            "wait-free reads must beat the locked baseline by >=10x at p99 \
             (got {speedup_p99:.1}x)"
        );
        assert!(
            prefetch_hits > 0,
            "the full-mode replay must exercise the prefetch overlap"
        );
    }

    let mut entries = netsched_bench::host::meta("concurrent_serving", mode, workers);
    entries.push(("scenario", JsonValue::String("mega-churn-line".to_string())));
    entries.push(("live_demands", JsonValue::int(live_demands)));
    entries.push(("readers", JsonValue::int(READERS)));
    entries.push((
        "arms",
        JsonValue::Object(
            vec![
                ("baseline_locked".to_string(), baseline.to_json()),
                ("pipelined".to_string(), pipelined.to_json()),
            ]
            .into_iter()
            .collect(),
        ),
    ));
    entries.push((
        "read_throughput",
        JsonValue::num(pipelined.read_throughput()),
    ));
    entries.push(("latency_p99_ms", JsonValue::num(pipelined.read_p99_ms())));
    entries.push(("speedup_p99", JsonValue::num(speedup_p99)));
    entries.push((
        "staleness_max_epochs",
        JsonValue::int(staleness_max as usize),
    ));
    entries.push(("prefetch_hits", JsonValue::int(prefetch_hits as usize)));
    let json = JsonValue::object(entries);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_serving.json"
    );
    std::fs::write(path, json.render())
        .expect("writing BENCH_concurrent_serving.json must succeed");
    println!(
        "\nwrote BENCH_concurrent_serving.json ({mode} mode, rayon workers: {workers}, peak RSS {} kB)",
        netsched_bench::host::peak_rss_kb()
    );
}
