//! Criterion bench: Luby's distributed MIS on conflict graphs of growing
//! size — the runtime companion of E11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_distrib::{
    greedy_mis, maximal_independent_set, ConflictGraph, MisStrategy, RoundStats,
};
use netsched_graph::InstanceId;
use netsched_workloads::TreeWorkload;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_independent_set");
    group.sample_size(10);
    for &m in &[100usize, 400, 1000] {
        let workload = TreeWorkload {
            vertices: (m / 2).max(8),
            networks: 2,
            demands: m / 2,
            seed: 0x715,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let graph = ConflictGraph::build(&universe);
        let active: Vec<InstanceId> = universe.instance_ids().collect();
        group.bench_with_input(
            BenchmarkId::new("luby_simulated", active.len()),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut stats = RoundStats::new();
                    maximal_independent_set(g, &active, MisStrategy::Luby { seed: 5 }, &mut stats)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_sequential", active.len()),
            &graph,
            |b, g| b.iter(|| greedy_mis(g, &active)),
        );
        group.bench_with_input(
            BenchmarkId::new("conflict_graph_build", active.len()),
            &universe,
            |b, u| b.iter(|| ConflictGraph::build(u)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
