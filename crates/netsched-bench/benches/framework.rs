//! Criterion bench: the generic two-phase engine and its building blocks
//! (dual raises, feasibility checks, exact solver), plus an ablation of the
//! layering choice (ideal vs balancing vs root-fixing) called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_baseline::exact_optimum;
use netsched_core::{run_two_phase, AlgorithmConfig, RaiseRule};
use netsched_decomp::{InstanceLayering, TreeDecompositionKind};
use netsched_workloads::TreeWorkload;

fn bench_engine_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_phase_engine_layering_ablation");
    group.sample_size(10);
    let workload = TreeWorkload {
        vertices: 64,
        networks: 3,
        demands: 96,
        seed: 0xF0,
        ..TreeWorkload::default()
    };
    let problem = workload.build().unwrap();
    let universe = problem.universe();
    for kind in [
        TreeDecompositionKind::Ideal,
        TreeDecompositionKind::Balancing,
        TreeDecompositionKind::RootFixing,
    ] {
        let layering = InstanceLayering::for_tree_problem(&problem, &universe, kind);
        group.bench_with_input(
            BenchmarkId::new("unit_rule", format!("{kind:?}")),
            &layering,
            |b, l| {
                b.iter(|| {
                    run_two_phase(
                        &universe,
                        l,
                        RaiseRule::Unit,
                        &AlgorithmConfig::deterministic(0.1),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    for &m in &[6usize, 9, 12] {
        let workload = TreeWorkload {
            vertices: 16,
            networks: 2,
            demands: m,
            seed: 0xEE,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        group.bench_with_input(BenchmarkId::new("exact", m), &universe, |b, u| {
            b.iter(|| exact_optimum(u))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_ablation, bench_exact_solver);
criterion_main!(benches);
