//! Benchmark: implicit interval paths + difference-array congestion engine
//! versus the pre-PR materialized representation.
//!
//! Two scenarios stress the two axes the interval representation targets:
//!
//! * **deep-tree** — a caterpillar-style tree (long spine, random leaves)
//!   whose demand paths span hundreds of edges; the old representation
//!   materialized every path as a sorted `Vec<EdgeId>`.
//! * **windowed-line** — wide windows on a long timeline; the old
//!   representation allocated one `Vec<EdgeId>` per admissible start time.
//!
//! For each scenario we measure universe construction, conflict-graph
//! construction and a verification pass (`edge_loads` over every network),
//! against a faithful in-bench replica of the old code path (`Vec<EdgeId>`
//! paths, per-edge `HashMap` buckets). Run with `--quick` for the reduced
//! CI configuration; results are written to `BENCH_path_repr.json` so the
//! perf trajectory is recorded from this PR onward.

use criterion::black_box;
use netsched_distrib::ConflictGraph;
use netsched_graph::{
    DemandInstanceUniverse, EdgeId, GlobalEdge, InstanceId, LineProblem, NetworkId, TreeProblem,
    VertexId,
};
use netsched_workloads::json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Baseline replica of the pre-PR representation.
// ---------------------------------------------------------------------------

/// The old materialized representation: one sorted `Vec<EdgeId>` per
/// instance (plus the per-instance metadata the old universe kept).
struct MaterializedUniverse {
    paths: Vec<Vec<EdgeId>>,
    network: Vec<NetworkId>,
    demand: Vec<u32>,
    height: Vec<f64>,
    edges_per_network: Vec<usize>,
}

impl MaterializedUniverse {
    /// Replicates the old `TreeProblem::universe`: walk parent pointers to
    /// the LCA, push every edge, sort.
    fn build_tree(problem: &TreeProblem) -> Self {
        let mut out = Self::empty(
            problem
                .networks()
                .iter()
                .map(|t| t.num_edges())
                .collect::<Vec<_>>(),
        );
        for demand in problem.demands() {
            for &t in problem.access(demand.id) {
                let network = problem.network(t);
                let l = network.lca(demand.u, demand.v);
                let mut edges = Vec::with_capacity(network.distance(demand.u, demand.v) as usize);
                for mut x in [demand.u, demand.v] {
                    while x != l {
                        let (p, e) = network.parent(x).expect("non-root has a parent");
                        edges.push(e);
                        x = p;
                    }
                }
                edges.sort_unstable();
                out.push(t, demand.id.index() as u32, demand.height, edges);
            }
        }
        out
    }

    /// Replicates the old `LineProblem::universe`: one heap-allocated
    /// `Vec<EdgeId>` per (demand, resource, admissible start time).
    fn build_line(problem: &LineProblem) -> Self {
        let mut out = Self::empty(vec![problem.timeslots(); problem.num_resources()]);
        for demand in problem.demands() {
            for &t in problem.access(demand.id) {
                let last_start = demand.deadline + 1 - demand.processing;
                for start in demand.release..=last_start {
                    let end = start + demand.processing - 1;
                    let edges: Vec<EdgeId> =
                        (start as usize..=end as usize).map(EdgeId::new).collect();
                    out.push(t, demand.id.index() as u32, demand.height, edges);
                }
            }
        }
        out
    }

    fn empty(edges_per_network: Vec<usize>) -> Self {
        Self {
            paths: Vec::new(),
            network: Vec::new(),
            demand: Vec::new(),
            height: Vec::new(),
            edges_per_network,
        }
    }

    fn push(&mut self, t: NetworkId, demand: u32, height: f64, edges: Vec<EdgeId>) {
        self.paths.push(edges);
        self.network.push(t);
        self.demand.push(demand);
        self.height.push(height);
    }

    /// The old `ConflictGraph::build`: same-demand cliques plus per-edge
    /// `HashMap` buckets, `Vec<Vec<_>>` adjacency with sort + dedup.
    fn conflict_graph(&self) -> Vec<Vec<u32>> {
        let n = self.paths.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut by_demand: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for (i, &a) in self.demand.iter().enumerate() {
            by_demand.entry(a).or_default().push(i as u32);
        }
        for group in by_demand.values() {
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    adj[d1 as usize].push(d2);
                    adj[d2 as usize].push(d1);
                }
            }
        }
        let mut buckets: std::collections::HashMap<GlobalEdge, Vec<u32>> =
            std::collections::HashMap::new();
        for (i, path) in self.paths.iter().enumerate() {
            for &e in path {
                buckets
                    .entry(GlobalEdge::new(self.network[i], e))
                    .or_default()
                    .push(i as u32);
            }
        }
        for group in buckets.values() {
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    adj[d1 as usize].push(d2);
                    adj[d2 as usize].push(d1);
                }
            }
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
            nbrs.dedup();
        }
        adj
    }

    /// The old per-edge load accumulation over every network.
    fn edge_loads(&self) -> Vec<Vec<f64>> {
        let mut loads: Vec<Vec<f64>> = self
            .edges_per_network
            .iter()
            .map(|&m| vec![0.0; m])
            .collect();
        for (i, path) in self.paths.iter().enumerate() {
            let l = &mut loads[self.network[i].index()];
            for &e in path {
                l[e.index()] += self.height[i];
            }
        }
        loads
    }

    /// Bytes held by the materialized path storage (payload only; Vec
    /// headers excluded, which favours the baseline).
    fn path_bytes(&self) -> usize {
        self.paths.iter().map(|p| p.len() * 4).sum()
    }
}

/// Bytes held by the interval-run path storage of the real universe.
fn run_path_bytes(universe: &DemandInstanceUniverse) -> usize {
    universe.instances().map(|d| d.path.num_runs() * 8).sum()
}

// ---------------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------------

struct Sizes {
    tree_vertices: usize,
    tree_demands: usize,
    line_slots: u32,
    line_demands: usize,
    samples: usize,
}

const FULL: Sizes = Sizes {
    tree_vertices: 3000,
    tree_demands: 400,
    line_slots: 2000,
    line_demands: 160,
    samples: 7,
};

const QUICK: Sizes = Sizes {
    tree_vertices: 600,
    tree_demands: 120,
    line_slots: 500,
    line_demands: 60,
    samples: 3,
};

/// Deep caterpillar tree: 80% spine, leaves attached to random spine
/// vertices; demands connect random vertices, so paths span a large chunk
/// of the spine.
fn deep_tree_problem(sizes: &Sizes) -> TreeProblem {
    let n = sizes.tree_vertices;
    let spine = (n * 4) / 5;
    let mut rng = StdRng::seed_from_u64(20130521);
    let mut problem = TreeProblem::new(n);
    let mut nets = Vec::new();
    for _ in 0..2 {
        let mut edges: Vec<(VertexId, VertexId)> = (1..spine)
            .map(|i| (VertexId::new(i - 1), VertexId::new(i)))
            .collect();
        for v in spine..n {
            edges.push((VertexId::new(rng.gen_range(0..spine)), VertexId::new(v)));
        }
        nets.push(problem.add_network(edges).unwrap());
    }
    for _ in 0..sizes.tree_demands {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        let access = if rng.gen_bool(0.5) {
            nets.clone()
        } else {
            vec![nets[rng.gen_range(0..nets.len())]]
        };
        problem
            .add_unit_demand(
                VertexId::new(u),
                VertexId::new(v),
                rng.gen_range(1.0..64.0),
                access,
            )
            .unwrap();
    }
    problem
}

/// Wide windows on a long timeline: every admissible start time becomes an
/// instance.
fn windowed_line_problem(sizes: &Sizes) -> LineProblem {
    let slots = sizes.line_slots;
    let mut rng = StdRng::seed_from_u64(19051205);
    let mut problem = LineProblem::new(slots as usize, 2);
    let acc = vec![NetworkId::new(0), NetworkId::new(1)];
    for _ in 0..sizes.line_demands {
        let len = rng.gen_range(slots / 40..=slots / 10).max(1);
        let release = rng.gen_range(0..=(slots - len));
        let slack = rng.gen_range(0..=(slots - release - len).min(slots / 50));
        problem
            .add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..16.0),
                rng.gen_range(0.2..=1.0),
                acc.clone(),
            )
            .unwrap();
    }
    problem
}

// ---------------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------------

/// Median wall-clock time of `samples` runs of `f`.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

struct ScenarioResult {
    name: &'static str,
    instances: usize,
    universe_new: Duration,
    universe_old: Duration,
    conflict_new: Duration,
    conflict_old: Duration,
    loads_new: Duration,
    loads_old: Duration,
    path_bytes_new: usize,
    path_bytes_old: usize,
}

impl ScenarioResult {
    fn build_speedup(&self) -> f64 {
        secs(self.universe_old + self.conflict_old) / secs(self.universe_new + self.conflict_new)
    }

    fn memory_ratio(&self) -> f64 {
        self.path_bytes_old as f64 / self.path_bytes_new.max(1) as f64
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("instances", JsonValue::int(self.instances)),
            ("universe_new_s", JsonValue::num(secs(self.universe_new))),
            ("universe_old_s", JsonValue::num(secs(self.universe_old))),
            ("conflict_new_s", JsonValue::num(secs(self.conflict_new))),
            ("conflict_old_s", JsonValue::num(secs(self.conflict_old))),
            ("edge_loads_new_s", JsonValue::num(secs(self.loads_new))),
            ("edge_loads_old_s", JsonValue::num(secs(self.loads_old))),
            ("build_speedup", JsonValue::num(self.build_speedup())),
            ("path_bytes_new", JsonValue::int(self.path_bytes_new)),
            ("path_bytes_old", JsonValue::int(self.path_bytes_old)),
            ("path_memory_ratio", JsonValue::num(self.memory_ratio())),
        ])
    }

    fn print(&self) {
        println!("\nbenchmark group: path_repr/{}", self.name);
        println!("  instances: {}", self.instances);
        println!(
            "  universe build     new {:>12?}   old {:>12?}   ({:.2}x)",
            self.universe_new,
            self.universe_old,
            secs(self.universe_old) / secs(self.universe_new)
        );
        println!(
            "  conflict build     new {:>12?}   old {:>12?}   ({:.2}x)",
            self.conflict_new,
            self.conflict_old,
            secs(self.conflict_old) / secs(self.conflict_new)
        );
        println!(
            "  edge loads         new {:>12?}   old {:>12?}   ({:.2}x)",
            self.loads_new,
            self.loads_old,
            secs(self.loads_old) / secs(self.loads_new)
        );
        println!(
            "  universe+conflict speedup: {:.2}x   path memory: {} -> {} bytes ({:.1}x smaller)",
            self.build_speedup(),
            self.path_bytes_old,
            self.path_bytes_new,
            self.memory_ratio()
        );
    }
}

fn run_tree_scenario(sizes: &Sizes) -> ScenarioResult {
    let problem = deep_tree_problem(sizes);
    let universe_new = measure(sizes.samples, || problem.universe());
    let universe_old = measure(sizes.samples, || MaterializedUniverse::build_tree(&problem));
    let universe = problem.universe();
    let old = MaterializedUniverse::build_tree(&problem);
    let conflict_new = measure(sizes.samples, || ConflictGraph::build(&universe));
    let conflict_old = measure(sizes.samples, || old.conflict_graph());
    let selection: Vec<InstanceId> = universe.instance_ids().collect();
    let loads_new = measure(sizes.samples, || {
        (0..universe.num_networks())
            .map(|t| universe.edge_loads(NetworkId::new(t), &selection))
            .collect::<Vec<_>>()
    });
    let loads_old = measure(sizes.samples, || old.edge_loads());
    ScenarioResult {
        name: "deep-tree",
        instances: universe.num_instances(),
        universe_new,
        universe_old,
        conflict_new,
        conflict_old,
        loads_new,
        loads_old,
        path_bytes_new: run_path_bytes(&universe),
        path_bytes_old: old.path_bytes(),
    }
}

fn run_line_scenario(sizes: &Sizes) -> ScenarioResult {
    let problem = windowed_line_problem(sizes);
    let universe_new = measure(sizes.samples, || problem.universe());
    let universe_old = measure(sizes.samples, || MaterializedUniverse::build_line(&problem));
    let universe = problem.universe();
    let old = MaterializedUniverse::build_line(&problem);
    let conflict_new = measure(sizes.samples, || ConflictGraph::build(&universe));
    let conflict_old = measure(sizes.samples, || old.conflict_graph());
    let selection: Vec<InstanceId> = universe.instance_ids().collect();
    let loads_new = measure(sizes.samples, || {
        (0..universe.num_networks())
            .map(|t| universe.edge_loads(NetworkId::new(t), &selection))
            .collect::<Vec<_>>()
    });
    let loads_old = measure(sizes.samples, || old.edge_loads());
    ScenarioResult {
        name: "windowed-line",
        instances: universe.num_instances(),
        universe_new,
        universe_old,
        conflict_new,
        conflict_old,
        loads_new,
        loads_old,
        path_bytes_new: run_path_bytes(&universe),
        path_bytes_old: old.path_bytes(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick { QUICK } else { FULL };
    let mode = if quick { "quick" } else { "full" };

    let results = [run_tree_scenario(&sizes), run_line_scenario(&sizes)];
    for r in &results {
        r.print();
    }

    let mut entries = netsched_bench::host::meta("path_repr", mode, rayon::current_num_threads());
    entries.push((
        "scenarios",
        JsonValue::object(results.iter().map(|r| (r.name, r.to_json())).collect()),
    ));
    let json = JsonValue::object(entries);
    // Anchor at the workspace root regardless of the bench's working
    // directory, so CI and local runs agree on the artifact location.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_path_repr.json");
    std::fs::write(path, json.render()).expect("writing BENCH_path_repr.json must succeed");
    println!("\nwrote BENCH_path_repr.json ({mode} mode)");
}
