//! Benchmark: the sharded conflict engine versus the pre-shard reference
//! path, across shard counts and worker-thread counts.
//!
//! Scenarios come from the `netsched-workloads` multi-network generators:
//! balanced line workloads at 1/2/4/8 shards, a skewed-shard workload (one
//! hot network) and an 8-network tree workload. For each we measure
//!
//! * **conflict build** — [`ConflictGraph::build`] (single flat CSR, the
//!   pre-shard path) versus [`ShardedConflictGraph::build`] (per-shard
//!   sweeps driven through rayon) at 1/2/4/8 workers, and
//! * **MIS epochs + engine** — [`run_two_phase_reference`] (simulator-driven
//!   Luby, sequential filters and raises) versus [`run_two_phase_on`]
//!   (shard-parallel MIS, filters and raises) at the same worker counts —
//!   both engines produce identical schedules, so this is a pure
//!   representation comparison.
//!
//! Results are written to `BENCH_shard_scaling.json`. Run with `--quick`
//! for the reduced CI configuration. Worker counts beyond the machine's
//! cores measure oversubscription, not speedup; the JSON records
//! `host_threads` so readers can judge.

use criterion::black_box;
use netsched_core::framework::{run_two_phase_on, run_two_phase_reference};
use netsched_core::{AlgorithmConfig, RaiseRule};
use netsched_decomp::InstanceLayering;
use netsched_distrib::{ConflictGraph, MisStrategy, ShardedConflictGraph};
use netsched_graph::DemandInstanceUniverse;
use netsched_workloads::json::JsonValue;
use netsched_workloads::{many_networks_line, many_networks_tree, skewed_networks_line};
use rayon::ThreadPoolBuilder;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Median wall-clock time of `samples` runs of `f`.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn with_threads<O>(n: usize, f: impl FnOnce() -> O) -> O {
    ThreadPoolBuilder::new().num_threads(n).build_global().ok();
    let out = f();
    ThreadPoolBuilder::new().num_threads(0).build_global().ok();
    out
}

struct Scenario {
    name: String,
    universe: DemandInstanceUniverse,
    layering: InstanceLayering,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let demands = if quick { 70 } else { 170 };
    let tree_demands = if quick { 60 } else { 140 };
    let mut out = Vec::new();
    for networks in [1usize, 2, 4, 8] {
        let u = many_networks_line(networks, demands, 20130 + networks as u64)
            .build()
            .expect("valid workload")
            .universe();
        let layering = InstanceLayering::line_length_classes(&u);
        out.push(Scenario {
            name: format!("line-{networks}shard"),
            universe: u,
            layering,
        });
    }
    {
        let u = skewed_networks_line(8, demands, 1.5, 77)
            .build()
            .expect("valid workload")
            .universe();
        let layering = InstanceLayering::line_length_classes(&u);
        out.push(Scenario {
            name: "line-8shard-skewed".to_string(),
            universe: u,
            layering,
        });
    }
    {
        let p = many_networks_tree(8, tree_demands, 4242)
            .build()
            .expect("valid workload");
        let u = p.universe();
        let layering = InstanceLayering::for_tree_problem(
            &p,
            &u,
            netsched_decomp::TreeDecompositionKind::Ideal,
        );
        out.push(Scenario {
            name: "tree-8shard".to_string(),
            universe: u,
            layering,
        });
    }
    out
}

struct ThreadResult {
    threads: usize,
    conflict_s: f64,
    engine_s: f64,
}

struct ScenarioResult {
    name: String,
    networks: usize,
    instances: usize,
    conflict_edges: usize,
    conflict_reference_s: f64,
    engine_reference_s: f64,
    per_thread: Vec<ThreadResult>,
}

impl ScenarioResult {
    fn combined_speedup(&self, tr: &ThreadResult) -> f64 {
        (self.conflict_reference_s + self.engine_reference_s) / (tr.conflict_s + tr.engine_s)
    }

    fn best_speedup(&self) -> f64 {
        self.per_thread
            .iter()
            .map(|tr| self.combined_speedup(tr))
            .fold(0.0, f64::max)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("networks", JsonValue::int(self.networks)),
            ("instances", JsonValue::int(self.instances)),
            ("conflict_edges", JsonValue::int(self.conflict_edges)),
            (
                "conflict_reference_s",
                JsonValue::num(self.conflict_reference_s),
            ),
            (
                "engine_reference_s",
                JsonValue::num(self.engine_reference_s),
            ),
            (
                "threads",
                JsonValue::Object(
                    self.per_thread
                        .iter()
                        .map(|tr| {
                            (
                                format!("{}", tr.threads),
                                JsonValue::object(vec![
                                    ("conflict_sharded_s", JsonValue::num(tr.conflict_s)),
                                    ("engine_sharded_s", JsonValue::num(tr.engine_s)),
                                    (
                                        "combined_speedup",
                                        JsonValue::num(self.combined_speedup(tr)),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("best_combined_speedup", JsonValue::num(self.best_speedup())),
        ])
    }

    fn print(&self) {
        println!("\nbenchmark group: shard_scaling/{}", self.name);
        println!(
            "  networks: {}   instances: {}   conflict edges: {}",
            self.networks, self.instances, self.conflict_edges
        );
        println!(
            "  reference     conflict {:>11.6}s   engine {:>11.6}s",
            self.conflict_reference_s, self.engine_reference_s
        );
        for tr in &self.per_thread {
            println!(
                "  sharded x{}    conflict {:>11.6}s   engine {:>11.6}s   combined speedup {:.2}x",
                tr.threads,
                tr.conflict_s,
                tr.engine_s,
                self.combined_speedup(tr)
            );
        }
    }
}

fn run_scenario(s: &Scenario, samples: usize) -> ScenarioResult {
    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 1205 },
        seed: 1205,
    };
    let flat = ConflictGraph::build(&s.universe);
    let conflict_reference_s = secs(measure(samples, || ConflictGraph::build(&s.universe)));
    let engine_reference_s = secs(measure(samples, || {
        run_two_phase_reference(&s.universe, &s.layering, RaiseRule::Unit, &config)
    }));
    let per_thread = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            with_threads(threads, || {
                let conflict_s = secs(measure(samples, || {
                    ShardedConflictGraph::build(&s.universe)
                }));
                let conflict = ShardedConflictGraph::build(&s.universe);
                let engine_s = secs(measure(samples, || {
                    run_two_phase_on(
                        &s.universe,
                        &conflict,
                        &s.layering,
                        RaiseRule::Unit,
                        &config,
                    )
                }));
                ThreadResult {
                    threads,
                    conflict_s,
                    engine_s,
                }
            })
        })
        .collect();
    ScenarioResult {
        name: s.name.clone(),
        networks: s.universe.num_networks(),
        instances: s.universe.num_instances(),
        conflict_edges: flat.num_edges(),
        conflict_reference_s,
        engine_reference_s,
        per_thread,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick { 3 } else { 5 };
    let mode = if quick { "quick" } else { "full" };
    // The sweep exercises every worker count in THREAD_COUNTS; the header
    // records the widest one (per-thread timings carry the rest).
    let workers = *THREAD_COUNTS.iter().max().unwrap();

    let results: Vec<ScenarioResult> = scenarios(quick)
        .iter()
        .map(|s| run_scenario(s, sizes))
        .collect();
    for r in &results {
        r.print();
    }

    let mut entries = netsched_bench::host::meta("shard_scaling", mode, workers);
    entries.push((
        "scenarios",
        JsonValue::Object(
            results
                .iter()
                .map(|r| (r.name.clone(), r.to_json()))
                .collect(),
        ),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_shard_scaling.json"
    );
    std::fs::write(path, json.render()).expect("writing BENCH_shard_scaling.json must succeed");
    println!("\nwrote BENCH_shard_scaling.json ({mode} mode, rayon workers: {workers})");
}
