//! Criterion bench: the distributed unit-height tree algorithm
//! (Theorem 5.3) across instance sizes — the runtime companion of E3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_core::{
    solve_sequential_tree, solve_unit_tree, AlgorithmConfig, Scheduler, UnitTreeSolver,
};
use netsched_distrib::MisStrategy;
use netsched_workloads::TreeWorkload;

fn bench_unit_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_tree_solve");
    group.sample_size(10);
    for &(n, m) in &[(32usize, 40usize), (64, 80), (128, 160)] {
        let workload = TreeWorkload {
            vertices: n,
            networks: 3,
            demands: m,
            seed: 0xBE,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("distributed_luby", format!("n{n}_m{m}")),
            &problem,
            |b, p| {
                b.iter(|| {
                    solve_unit_tree(
                        p,
                        &AlgorithmConfig {
                            epsilon: 0.1,
                            mis: MisStrategy::Luby { seed: 1 },
                            seed: 1,
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("distributed_deterministic", format!("n{n}_m{m}")),
            &problem,
            |b, p| b.iter(|| solve_unit_tree(p, &AlgorithmConfig::deterministic(0.1))),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_appendix_a", format!("n{n}_m{m}")),
            &problem,
            |b, p| b.iter(|| solve_sequential_tree(p)),
        );
    }
    group.finish();
}

/// The Scheduler session win: solving the same instance repeatedly (an ε
/// sweep, a portfolio, a seed study) with a shared session skips the
/// universe + decomposition rebuild that the per-call path pays every time.
fn bench_session_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_session");
    group.sample_size(10);
    for &(n, m) in &[(64usize, 80usize), (128, 160)] {
        let workload = TreeWorkload {
            vertices: n,
            networks: 3,
            demands: m,
            seed: 0x5E55,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let config = AlgorithmConfig::deterministic(0.1);
        group.bench_with_input(
            BenchmarkId::new("per_call_rebuild", format!("n{n}_m{m}")),
            &problem,
            |b, p| b.iter(|| solve_unit_tree(p, &config)),
        );
        let session = Scheduler::for_tree(&problem);
        session.universe(); // warm the caches once, outside the timing loop
        session.layering();
        group.bench_with_input(
            BenchmarkId::new("cached_session", format!("n{n}_m{m}")),
            &session,
            |b, s| b.iter(|| s.solve_with(&UnitTreeSolver, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_unit_tree, bench_session_reuse);
criterion_main!(benches);
