//! Benchmark: incremental serving epochs versus from-scratch rebuilds.
//!
//! Replays the `churn-line` / `churn-tree` serving traces at several churn
//! rates through two implementations of the same contract ("after this
//! batch, give me the schedule of the surviving demand set"):
//!
//! * **incremental** — one long-lived `ServiceSession`: per epoch, splice
//!   the universe, rebuild only the dirty shards' CSRs, splice the
//!   layering, re-solve with the shard-parallel engine;
//! * **from-scratch** — what a naive server does per batch: open a fresh
//!   `Scheduler` over the surviving demand set (universe + sharding +
//!   conflict sweep + decompositions + layering) and solve. Problem
//!   assembly itself is kept *outside* the timer, so the comparison is
//!   cache rebuild + solve on both sides.
//!
//! Both paths produce identical schedules (asserted on the final epoch;
//! the full differential suite lives in `tests/dynamic_equivalence.rs`).
//! Results are written to `BENCH_dynamic_serving.json`; run with `--quick`
//! for the reduced CI configuration.
//!
//! A second arm compares **warm vs cold re-solving** on the same traces:
//! two identical incremental sessions, one in `ResolveMode::Cold` (the
//! PR-4 path: splice + dirty-shard rebuild + from-zero solve) and one in
//! `ResolveMode::Warm` (splice + dirty-shard rebuild + certificate
//! repair). Every warm epoch's certificate is checked against the
//! auto-selected solver's guarantee while timing; results are written to
//! `BENCH_warm_resolve.json`.

use netsched_core::{AlgorithmConfig, Scheduler};
use netsched_graph::{LineProblem, TreeProblem};
use netsched_service::{replay_trace, ResolveMode, ServiceSession};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{
    poisson_arrivals_line, poisson_arrivals_tree, scenario_by_name, ChurnSpec, EventTrace,
    Scenario, TraceEvent,
};
use std::time::Instant;

const CHURN_RATES: [f64; 3] = [0.02, 0.05, 0.10];

enum Problem {
    Tree(TreeProblem),
    Line(LineProblem),
}

/// The from-scratch mirror: the surviving demand set as trace events.
struct Mirror {
    problem: Problem,
    live: Vec<(usize, TraceEvent)>,
    next_arrival: usize,
}

impl Mirror {
    fn new(problem: Problem, initial: usize) -> Self {
        let live = match &problem {
            Problem::Tree(p) => p
                .demands()
                .iter()
                .map(|d| {
                    (
                        d.id.index(),
                        TraceEvent::ArriveTree {
                            u: d.u,
                            v: d.v,
                            profit: d.profit,
                            height: d.height,
                            access: p.access(d.id).to_vec(),
                        },
                    )
                })
                .collect(),
            Problem::Line(p) => p
                .demands()
                .iter()
                .map(|d| {
                    (
                        d.id.index(),
                        TraceEvent::ArriveLine {
                            release: d.release,
                            deadline: d.deadline,
                            processing: d.processing,
                            profit: d.profit,
                            height: d.height,
                            access: p.access(d.id).to_vec(),
                        },
                    )
                })
                .collect(),
        };
        Self {
            problem,
            live,
            next_arrival: initial,
        }
    }

    fn apply(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            match event {
                TraceEvent::Expire { arrival } => {
                    let pos = self
                        .live
                        .iter()
                        .position(|(a, _)| a == arrival)
                        .expect("expiry of a live arrival");
                    self.live.remove(pos);
                }
                arrive => {
                    self.live.push((self.next_arrival, arrive.clone()));
                    self.next_arrival += 1;
                }
            }
        }
    }

    /// The surviving set as a fresh problem (not timed).
    fn rebuild(&self) -> Problem {
        match &self.problem {
            Problem::Tree(base) => {
                let mut p = TreeProblem::new(base.num_vertices());
                for t in 0..base.num_networks() {
                    let network = netsched_graph::NetworkId::new(t);
                    let edges = base.network(network).edges().map(|(_, uv)| uv).collect();
                    let id = p.add_network(edges).unwrap();
                    for (e, &cap) in base.capacities(network).iter().enumerate() {
                        if (cap - 1.0).abs() > f64::EPSILON {
                            p.set_capacity(id, e, cap).unwrap();
                        }
                    }
                }
                for (_, event) in &self.live {
                    if let TraceEvent::ArriveTree {
                        u,
                        v,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(*u, *v, *profit, *height, access.clone())
                            .unwrap();
                    }
                }
                Problem::Tree(p)
            }
            Problem::Line(base) => {
                let mut p = LineProblem::new(base.timeslots(), base.num_resources());
                for (_, event) in &self.live {
                    if let TraceEvent::ArriveLine {
                        release,
                        deadline,
                        processing,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(
                            *release,
                            *deadline,
                            *processing,
                            *profit,
                            *height,
                            access.clone(),
                        )
                        .unwrap();
                    }
                }
                Problem::Line(p)
            }
        }
    }
}

struct ChurnResult {
    epochs: usize,
    events: usize,
    incremental_s: f64,
    /// Splice + dirty-shard rebuild + layering portion of the incremental
    /// epochs (from the session's own telemetry).
    incremental_rebuild_s: f64,
    /// Engine-solve portion of the incremental epochs.
    incremental_solve_s: f64,
    scratch_s: f64,
    mean_dirty_shards: f64,
    final_live: usize,
    /// Per-epoch admission latency (`epoch.step_ns`) from the session's
    /// obs registry.
    latency: netsched_obs::HistogramSnapshot,
}

impl ChurnResult {
    fn speedup(&self) -> f64 {
        self.scratch_s / self.incremental_s
    }

    /// Cache-rebuild speedup: from-scratch rebuild time (everything but
    /// the solve, which is identical on both sides) over the incremental
    /// rebuild time.
    fn rebuild_speedup(&self) -> f64 {
        (self.scratch_s - self.incremental_solve_s) / self.incremental_rebuild_s
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            ("events", JsonValue::int(self.events)),
            ("final_live_demands", JsonValue::int(self.final_live)),
            (
                "mean_incremental_epoch_ms",
                JsonValue::num(1e3 * self.incremental_s / self.epochs as f64),
            ),
            (
                "mean_incremental_rebuild_ms",
                JsonValue::num(1e3 * self.incremental_rebuild_s / self.epochs as f64),
            ),
            (
                "mean_incremental_solve_ms",
                JsonValue::num(1e3 * self.incremental_solve_s / self.epochs as f64),
            ),
            (
                "mean_scratch_epoch_ms",
                JsonValue::num(1e3 * self.scratch_s / self.epochs as f64),
            ),
            ("mean_dirty_shards", JsonValue::num(self.mean_dirty_shards)),
            ("epoch_speedup", JsonValue::num(self.speedup())),
            ("rebuild_speedup", JsonValue::num(self.rebuild_speedup())),
            (
                "latency_p50_ms",
                JsonValue::num(self.latency.p50 as f64 / 1e6),
            ),
            (
                "latency_p95_ms",
                JsonValue::num(self.latency.p95 as f64 / 1e6),
            ),
            (
                "latency_p99_ms",
                JsonValue::num(self.latency.p99 as f64 / 1e6),
            ),
            (
                "latency_max_ms",
                JsonValue::num(self.latency.max as f64 / 1e6),
            ),
        ])
    }
}

fn run_churn(scenario: &Scenario, churn: f64, epochs: usize) -> ChurnResult {
    // Serving accuracy: ε = 0.25 (certified 4/(1−ε) ≈ 5.3 for the
    // unit-height scenarios) — the latency/accuracy point a serving tier
    // would run at; both paths solve with the same configuration.
    let config = AlgorithmConfig::deterministic(0.25);
    let spec = ChurnSpec {
        epochs,
        churn,
        ..scenario.churn().expect("churn scenario").clone()
    };
    let (problem, trace, initial): (Problem, EventTrace, usize) = match scenario {
        Scenario::Tree { workload, .. } => (
            Problem::Tree(workload.build().unwrap()),
            poisson_arrivals_tree(workload, &spec),
            workload.demands,
        ),
        Scenario::Line { workload, .. } => (
            Problem::Line(workload.build().unwrap()),
            poisson_arrivals_line(workload, &spec),
            workload.demands,
        ),
    };

    // ---- incremental: one session, timed per epoch ----
    let mut session = match &problem {
        Problem::Tree(p) => ServiceSession::for_tree(p, config),
        Problem::Line(p) => ServiceSession::for_line(p, config),
    };
    session.step(&[]).expect("initial solve"); // session warm-up, untimed

    // Fresh registry post warm-up so the latency percentiles cover the
    // measured churn epochs only, not the initial from-scratch solve.
    let mut session = session.with_obs(netsched_obs::ObsRegistry::default());
    let start = Instant::now();
    let deltas = replay_trace(&mut session, &trace).expect("trace replays");
    let incremental_s = start.elapsed().as_secs_f64();
    let mean_dirty_shards =
        deltas.iter().map(|d| d.stats.dirty_shards).sum::<usize>() as f64 / deltas.len() as f64;
    let incremental_rebuild_s: f64 = deltas.iter().map(|d| d.stats.rebuild_seconds).sum();
    let incremental_solve_s: f64 = deltas.iter().map(|d| d.stats.solve_seconds).sum();

    // ---- from-scratch: rebuild + solve per epoch (assembly untimed) ----
    let mut mirror = Mirror::new(problem, initial);
    let mut scratch_s = 0.0;
    let mut scratch_profit = 0.0;
    for batch in &trace.batches {
        mirror.apply(batch);
        let rebuilt = mirror.rebuild();
        let start = Instant::now();
        let solution = match &rebuilt {
            Problem::Tree(p) => Scheduler::for_tree(p).solve(&config),
            Problem::Line(p) => Scheduler::for_line(p).solve(&config),
        };
        scratch_s += start.elapsed().as_secs_f64();
        scratch_profit = solution.profit;
    }

    // Same contract, same answer: the final standing schedules agree.
    assert_eq!(
        session.profit(),
        scratch_profit,
        "incremental and from-scratch schedules diverged"
    );

    let latency = session.obs_registry().histogram("epoch.step_ns").snapshot();
    assert_eq!(
        latency.count,
        trace.batches.len() as u64,
        "epoch.step_ns must have one sample per churn epoch"
    );

    ChurnResult {
        epochs: trace.batches.len(),
        events: trace.num_events(),
        incremental_s,
        incremental_rebuild_s,
        incremental_solve_s,
        scratch_s,
        mean_dirty_shards,
        final_live: session.live_demands(),
        latency,
    }
}

struct WarmResult {
    epochs: usize,
    events: usize,
    cold_s: f64,
    cold_solve_s: f64,
    warm_s: f64,
    warm_solve_s: f64,
    min_lambda: f64,
    max_certified_ratio: f64,
    guarantee: f64,
    final_live: usize,
}

impl WarmResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            ("events", JsonValue::int(self.events)),
            ("final_live_demands", JsonValue::int(self.final_live)),
            (
                "mean_cold_epoch_ms",
                JsonValue::num(1e3 * self.cold_s / self.epochs as f64),
            ),
            (
                "mean_cold_solve_ms",
                JsonValue::num(1e3 * self.cold_solve_s / self.epochs as f64),
            ),
            (
                "mean_warm_epoch_ms",
                JsonValue::num(1e3 * self.warm_s / self.epochs as f64),
            ),
            (
                "mean_warm_solve_ms",
                JsonValue::num(1e3 * self.warm_solve_s / self.epochs as f64),
            ),
            ("epoch_speedup", JsonValue::num(self.cold_s / self.warm_s)),
            (
                "solve_speedup",
                JsonValue::num(self.cold_solve_s / self.warm_solve_s),
            ),
            ("min_lambda", JsonValue::num(self.min_lambda)),
            (
                "max_certified_ratio",
                JsonValue::num(self.max_certified_ratio),
            ),
            ("guarantee", JsonValue::num(self.guarantee)),
        ])
    }
}

/// Warm vs cold: two identical incremental sessions replay the same trace;
/// only the re-solve strategy differs. The warm side's certificate is
/// validated (λ ≥ 1 − ε, certified ratio ≤ the solver's guarantee) on
/// every epoch — inside the contract, outside the comparison's honesty:
/// both sides run exactly what a serving tier would.
fn run_warm(scenario: &Scenario, churn: f64, epochs: usize) -> WarmResult {
    let config = AlgorithmConfig::deterministic(0.25);
    let spec = ChurnSpec {
        epochs,
        churn,
        ..scenario.churn().expect("churn scenario").clone()
    };
    let (problem, trace): (Problem, EventTrace) = match scenario {
        Scenario::Tree { workload, .. } => (
            Problem::Tree(workload.build().unwrap()),
            poisson_arrivals_tree(workload, &spec),
        ),
        Scenario::Line { workload, .. } => (
            Problem::Line(workload.build().unwrap()),
            poisson_arrivals_line(workload, &spec),
        ),
    };
    // Both scenarios are unit-height, so the dispatch table selects the
    // unit solvers: 7/(1 − ε) on trees (∆ = 6), 4/(1 − ε) on lines (∆ = 3).
    let guarantee = match &problem {
        Problem::Tree(p) => Scheduler::for_tree(p)
            .auto_solver()
            .guarantee(config.epsilon),
        Problem::Line(p) => Scheduler::for_line(p)
            .auto_solver()
            .guarantee(config.epsilon),
    }
    .expect("paper solvers carry a guarantee");

    let run = |mode: ResolveMode| {
        let mut session = match &problem {
            Problem::Tree(p) => ServiceSession::for_tree(p, config),
            Problem::Line(p) => ServiceSession::for_line(p, config),
        }
        .with_resolve_mode(mode);
        session.step(&[]).expect("initial solve"); // warm-up, untimed
        let start = Instant::now();
        let deltas = replay_trace(&mut session, &trace).expect("trace replays");
        let total_s = start.elapsed().as_secs_f64();
        let solve_s: f64 = deltas.iter().map(|d| d.stats.solve_seconds).sum();
        (session, deltas, total_s, solve_s)
    };

    let (_, _, cold_s, cold_solve_s) = run(ResolveMode::Cold);
    let (warm_session, warm_deltas, warm_s, warm_solve_s) = run(ResolveMode::Warm);

    let mut min_lambda = f64::INFINITY;
    let mut max_certified_ratio: f64 = 1.0;
    for delta in &warm_deltas {
        // Empty batches take the resolved=false fast path (no solve at
        // all); an empty live set solves trivially. Neither certifies.
        if !delta.stats.resolved || delta.stats.live_demands == 0 {
            continue;
        }
        assert!(
            delta.stats.warm_resolve,
            "resolved warm epoch not flagged as a warm resume"
        );
        min_lambda = min_lambda.min(delta.certificate.lambda);
        if delta.profit > 0.0 {
            let ratio = delta.certificate.optimum_upper_bound / delta.profit;
            max_certified_ratio = max_certified_ratio.max(ratio);
            assert!(
                ratio <= guarantee + 1e-6,
                "warm certified ratio {ratio} exceeds the {guarantee} guarantee"
            );
        }
        assert!(
            delta.certificate.lambda >= 1.0 - config.epsilon - 1e-6,
            "warm λ {} below 1 − ε",
            delta.certificate.lambda
        );
    }

    WarmResult {
        epochs: trace.batches.len(),
        events: trace.num_events(),
        cold_s,
        cold_solve_s,
        warm_s,
        warm_solve_s,
        min_lambda,
        max_certified_ratio,
        guarantee,
        final_live: warm_session.live_demands(),
    }
}

/// Parses `--threads N` (0 = the shim's default worker count).
fn thread_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args
                .next()
                .and_then(|n| n.parse().ok())
                .expect("--threads takes a worker count");
        }
    }
    0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let epochs = if quick { 12 } else { 40 };
    let mode = if quick { "quick" } else { "full" };
    rayon::ThreadPoolBuilder::new()
        .num_threads(thread_arg())
        .build_global()
        .ok();
    let workers = rayon::current_num_threads();

    let mut scenarios_json: Vec<(String, JsonValue)> = Vec::new();
    for name in ["churn-line", "churn-tree"] {
        let scenario = scenario_by_name(name).expect("churn scenario registered");
        println!("\nbenchmark group: dynamic_serving/{name}");
        println!(
            "  networks: {}   epochs per churn rate: {epochs}",
            match &scenario {
                Scenario::Tree { workload, .. } => workload.networks,
                Scenario::Line { workload, .. } => workload.resources,
            }
        );
        let mut churn_json: Vec<(String, JsonValue)> = Vec::new();
        for churn in CHURN_RATES {
            let result = run_churn(&scenario, churn, epochs);
            println!(
                "  churn {:>4.0}%   incremental {:>8.3}ms/epoch (rebuild {:>6.3} + solve {:>6.3})   \
                 from-scratch {:>8.3}ms/epoch   dirty shards {:>4.1}   epoch speedup {:.2}x   \
                 rebuild speedup {:.2}x",
                100.0 * churn,
                1e3 * result.incremental_s / result.epochs as f64,
                1e3 * result.incremental_rebuild_s / result.epochs as f64,
                1e3 * result.incremental_solve_s / result.epochs as f64,
                1e3 * result.scratch_s / result.epochs as f64,
                result.mean_dirty_shards,
                result.speedup(),
                result.rebuild_speedup()
            );
            churn_json.push((format!("{churn}"), result.to_json()));
        }
        scenarios_json.push((
            name.to_string(),
            JsonValue::object(vec![(
                "churn",
                JsonValue::Object(churn_json.into_iter().collect()),
            )]),
        ));
    }

    let mut entries = netsched_bench::host::meta("dynamic_serving", mode, workers);
    entries.push((
        "scenarios",
        JsonValue::Object(scenarios_json.into_iter().collect()),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_dynamic_serving.json"
    );
    std::fs::write(path, json.render()).expect("writing BENCH_dynamic_serving.json must succeed");
    println!("\nwrote BENCH_dynamic_serving.json ({mode} mode, rayon workers: {workers})");

    // ---- warm vs cold re-solve arm ----
    let mut warm_json: Vec<(String, JsonValue)> = Vec::new();
    for name in ["churn-line", "churn-tree"] {
        let scenario = scenario_by_name(name).expect("churn scenario registered");
        println!("\nbenchmark group: warm_resolve/{name}");
        let mut churn_json: Vec<(String, JsonValue)> = Vec::new();
        for churn in CHURN_RATES {
            let result = run_warm(&scenario, churn, epochs);
            println!(
                "  churn {:>4.0}%   cold {:>8.3}ms/epoch (solve {:>6.3})   warm {:>8.3}ms/epoch \
                 (solve {:>6.3})   epoch speedup {:.2}x   solve speedup {:.2}x   min λ {:.4}   \
                 max ratio {:.2} (≤ {:.2})",
                100.0 * churn,
                1e3 * result.cold_s / result.epochs as f64,
                1e3 * result.cold_solve_s / result.epochs as f64,
                1e3 * result.warm_s / result.epochs as f64,
                1e3 * result.warm_solve_s / result.epochs as f64,
                result.cold_s / result.warm_s,
                result.cold_solve_s / result.warm_solve_s,
                result.min_lambda,
                result.max_certified_ratio,
                result.guarantee,
            );
            churn_json.push((format!("{churn}"), result.to_json()));
        }
        warm_json.push((
            name.to_string(),
            JsonValue::object(vec![(
                "churn",
                JsonValue::Object(churn_json.into_iter().collect()),
            )]),
        ));
    }
    let mut entries = netsched_bench::host::meta("warm_resolve", mode, workers);
    entries.push((
        "scenarios",
        JsonValue::Object(warm_json.into_iter().collect()),
    ));
    let json = JsonValue::object(entries);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_warm_resolve.json");
    std::fs::write(path, json.render()).expect("writing BENCH_warm_resolve.json must succeed");
    println!("\nwrote BENCH_warm_resolve.json ({mode} mode, rayon workers: {workers})");
}
