//! Criterion bench: the arbitrary-height tree algorithm (Theorem 6.3) across
//! minimum heights — the runtime companion of E4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsched_core::{solve_arbitrary_tree, AlgorithmConfig};
use netsched_workloads::{HeightDistribution, TreeWorkload};

fn bench_arbitrary_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitrary_tree_solve");
    group.sample_size(10);
    for &hmin in &[0.5f64, 0.25, 0.1] {
        let workload = TreeWorkload {
            vertices: 32,
            networks: 2,
            demands: 40,
            heights: HeightDistribution::Uniform {
                min: hmin,
                max: 1.0,
            },
            seed: 0xAB,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("theorem_6_3", format!("hmin{hmin}")),
            &problem,
            |b, p| b.iter(|| solve_arbitrary_tree(p, &AlgorithmConfig::deterministic(0.1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arbitrary_tree);
criterion_main!(benches);
