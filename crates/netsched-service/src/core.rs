//! A live, incrementally maintained solving core.
//!
//! A [`LiveCore`] bundles the three structures the two-phase engine reads —
//! the demand-instance universe, its sharded conflict graph and its
//! layering — and keeps them synchronized with a stream of demand splices.
//! The session owns one core for the full live set and (lazily, once the
//! height mix requires the wide/narrow split) one per split half; all three
//! are driven by the same [`LiveCore::apply`].

use netsched_core::framework::run_two_phase_on_budgeted;
use netsched_core::{
    run_two_phase_warm_on_budgeted, run_two_phase_warm_overlapped, AlgorithmConfig, Budget,
    RaiseRule, Solution, WarmState,
};
use netsched_decomp::{line_assignment, InstanceLayering, TreeDecompositionKind, TreeLayerer};
use netsched_distrib::ShardedConflictGraph;
use netsched_graph::{
    ArrivingDemand, DemandId, DemandInstanceUniverse, EdgeId, LineProblem, TreeProblem,
    UniverseDelta,
};

/// The layering assignments of one arriving demand's instances, in instance
/// order (tree cores only; line cores re-derive length classes globally).
pub(crate) type TreeAssignments = Vec<(usize, Vec<EdgeId>)>;

/// One universe + conflict graph + layering triple, spliced in place per
/// epoch. Byte-identical to the from-scratch structures of a fresh
/// [`Scheduler`](netsched_core::Scheduler) over the same surviving demand
/// set — the differential invariant the dynamic-equivalence suite pins.
pub(crate) struct LiveCore {
    pub universe: DemandInstanceUniverse,
    pub conflict: ShardedConflictGraph,
    pub layering: InstanceLayering,
    /// Reusable splice scratch (id remaps + dirty bitmap).
    delta: UniverseDelta,
    /// For line cores: histogram of instance lengths, maintained across
    /// splices so the global minimum length (which the length-class groups
    /// depend on) is known without a scan. `None` for tree cores.
    line_lengths: Option<Vec<u32>>,
    /// The `L_min` the current line layering was assigned against.
    layering_l_min: usize,
    /// Persisted warm-resolve state ([`ResolveMode::Warm`]
    /// (crate::ResolveMode::Warm) sessions only): duals, raise records and
    /// selection seed carried across epochs. `None` until the first warm
    /// solve; reset whenever the required raise rule changes.
    warm: Option<WarmState>,
    /// Nanoseconds the most recent [`LiveCore::apply`] spent rebuilding
    /// dirty conflict-graph shards — the session reads this after each
    /// splice to split the epoch's rebuild time into its
    /// `epoch.conflict_rebuild_ns` / `epoch.splice_ns` histograms.
    pub(crate) conflict_rebuild_ns: u64,
}

/// The minimum instance length recorded by a length histogram (1 for an
/// empty universe, mirroring `line_length_classes`).
fn histogram_min(counts: &[u32]) -> usize {
    counts.iter().position(|&c| c > 0).unwrap_or(0).max(1)
}

impl LiveCore {
    /// A core over a tree problem's current demand set, layered through the
    /// session's shared [`TreeLayerer`].
    pub(crate) fn new_tree(problem: &TreeProblem, layerer: &TreeLayerer) -> Self {
        let universe = problem.universe();
        let conflict = ShardedConflictGraph::build(&universe);
        let layering = layerer.layering(problem, &universe);
        Self {
            universe,
            conflict,
            layering,
            delta: UniverseDelta::new(),
            line_lengths: None,
            layering_l_min: 1,
            warm: None,
            conflict_rebuild_ns: 0,
        }
    }

    /// A core over a line problem's current demand set.
    pub(crate) fn new_line(problem: &LineProblem) -> Self {
        let universe = problem.universe();
        let conflict = ShardedConflictGraph::build(&universe);
        let layering = InstanceLayering::line_length_classes(&universe);
        let mut counts = vec![0u32; problem.timeslots() + 1];
        for inst in universe.instances() {
            counts[inst.len()] += 1;
        }
        let layering_l_min = histogram_min(&counts);
        Self {
            universe,
            conflict,
            layering,
            delta: UniverseDelta::new(),
            line_lengths: Some(counts),
            layering_l_min,
            warm: None,
            conflict_rebuild_ns: 0,
        }
    }

    /// Splices one epoch's demand delta through every structure:
    ///
    /// 1. the universe compacts expired instances and appends arrivals
    ///    (`O(|D|)`, no path recomputation),
    /// 2. the sharded conflict graph rebuilds **only** the dirty shards'
    ///    local CSRs plus the renumbered cross-shard rows,
    /// 3. the layering splices survivor assignments and appends the
    ///    arrivals' — tree assignments come pre-computed in `assignments`;
    ///    line length classes are assigned on the spot against the
    ///    histogram-tracked minimum length, falling back to a full
    ///    `O(|D|)` re-derivation only on the rare epochs where `L_min`
    ///    itself changes (its groups are global ratios).
    ///
    /// `assignments` must hold one `(group, critical)` entry per arriving
    /// instance, flattened in arrival order (ignored for line cores, which
    /// pass an empty vector). Returns the number of dirty shards.
    pub(crate) fn apply(
        &mut self,
        expired: &[DemandId],
        arrivals: &[ArrivingDemand],
        assignments: TreeAssignments,
    ) -> usize {
        // Expiring instance lengths must be read before the splice
        // renumbers them away.
        if let Some(counts) = &mut self.line_lengths {
            for &a in expired {
                for &d in self.universe.instances_of_demand(a) {
                    counts[self.universe.instance(d).len()] -= 1;
                }
            }
        }
        self.universe
            .apply_demand_delta(expired, arrivals, &mut self.delta);
        let conflict_start = std::time::Instant::now();
        self.conflict.apply_delta(&self.universe, &self.delta);
        self.conflict_rebuild_ns = conflict_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(warm) = &mut self.warm {
            warm.splice(&self.universe, &self.delta);
        }
        match &mut self.line_lengths {
            Some(counts) => {
                let old_min = self.layering_l_min;
                for arrival in arrivals {
                    for (_, path, _) in &arrival.instances {
                        counts[path.len()] += 1;
                    }
                }
                let new_min = histogram_min(counts);
                if new_min == old_min {
                    let additions: TreeAssignments = arrivals
                        .iter()
                        .flat_map(|a| a.instances.iter())
                        .map(|(_, path, _)| line_assignment(new_min, path))
                        .collect();
                    self.layering.splice(self.delta.instance_remap(), additions);
                } else {
                    self.layering = InstanceLayering::line_length_classes(&self.universe);
                    self.layering_l_min = new_min;
                }
            }
            None => {
                debug_assert_eq!(
                    assignments.len(),
                    arrivals.iter().map(|a| a.instances.len()).sum::<usize>()
                );
                self.layering
                    .splice(self.delta.instance_remap(), assignments);
            }
        }
        self.delta.num_dirty()
    }

    /// Runs the shard-parallel two-phase engine on the core's structures
    /// under a cooperative [`Budget`] (pass [`Budget::unlimited`] for a
    /// full run).
    pub(crate) fn solve(
        &self,
        rule: RaiseRule,
        config: &AlgorithmConfig,
        budget: &Budget,
    ) -> Solution {
        run_two_phase_on_budgeted(
            &self.universe,
            &self.conflict,
            &self.layering,
            rule,
            config,
            budget,
        )
    }

    /// Resumes the warm-started engine from the core's persisted
    /// [`WarmState`], creating (or, on a raise-rule switch, resetting) it
    /// first. A fresh state reproduces the cold engine exactly, so the
    /// first warm epoch of a session matches [`LiveCore::solve`]
    /// bit-for-bit; later epochs repair only the shards the splices since
    /// the previous solve dirtied. Under a binding [`Budget`] the repair
    /// is cut cooperatively and the unfinished work stays pending in the
    /// warm state (see
    /// [`run_two_phase_warm_on_budgeted`]).
    pub(crate) fn solve_warm(
        &mut self,
        rule: RaiseRule,
        config: &AlgorithmConfig,
        budget: &Budget,
    ) -> Solution {
        if self.warm.as_ref().map(WarmState::rule) != Some(rule) {
            self.warm = Some(WarmState::new(&self.universe, rule));
        }
        let warm = self.warm.as_mut().expect("warm state just ensured");
        run_two_phase_warm_on_budgeted(
            &self.universe,
            &self.conflict,
            &self.layering,
            rule,
            config,
            warm,
            budget,
        )
    }

    /// [`LiveCore::solve_warm`], overlapping `overlap` with the engine's
    /// phase-2 replay on a scoped thread (see
    /// [`run_two_phase_warm_overlapped`]). The solution is bit-identical
    /// to `solve_warm`'s — phase 2 only pops the frozen MIS stack — so the
    /// pipelined session uses this to pre-materialize the next epoch's
    /// arrivals for free.
    pub(crate) fn solve_warm_overlapped<R: Send>(
        &mut self,
        rule: RaiseRule,
        config: &AlgorithmConfig,
        budget: &Budget,
        overlap: impl FnOnce() -> R + Send,
    ) -> (Solution, R) {
        if self.warm.as_ref().map(WarmState::rule) != Some(rule) {
            self.warm = Some(WarmState::new(&self.universe, rule));
        }
        let warm = self.warm.as_mut().expect("warm state just ensured");
        run_two_phase_warm_overlapped(
            &self.universe,
            &self.conflict,
            &self.layering,
            rule,
            config,
            warm,
            budget,
            overlap,
        )
    }

    /// The persisted warm state, if any (read by snapshot serialization
    /// and the compaction policy).
    pub(crate) fn warm_state(&self) -> Option<&WarmState> {
        self.warm.as_ref()
    }

    /// Installs (or clears) the persisted warm state. Callers must have
    /// validated a restored state's shape against the core's universe;
    /// clearing is always certificate-safe — the next warm solve simply
    /// re-primes from zero duals, reproducing the cold engine.
    pub(crate) fn set_warm_state(&mut self, warm: Option<WarmState>) {
        self.warm = warm;
    }
}

/// The decomposition kind every core layers tree problems with — the
/// paper's ideal decomposition (∆ = 6), matching
/// [`Scheduler`](netsched_core::Scheduler)'s dispatch.
pub(crate) const TREE_LAYERING: TreeDecompositionKind = TreeDecompositionKind::Ideal;
