//! The synchronous epoch engine: [`ServiceSession`] and its
//! [`ScheduleDelta`] output.
//!
//! # Epoch model
//!
//! A session owns a **mutable** solving state — live demand set, universe,
//! sharded conflict graph, layerings, (lazily) the wide/narrow split — and
//! advances it one *epoch* at a time: [`ServiceSession::step`] takes a
//! batch of [`DemandEvent`]s, splices them through every cached structure,
//! re-solves with the shard-parallel two-phase engine, and returns a
//! [`ScheduleDelta`] describing only what changed. The invariant
//! maintained by every epoch (and pinned by `tests/dynamic_equivalence.rs`)
//! is:
//!
//! > after any event sequence, the session's conflict graph is
//! > byte-identical to, and its schedule and certificate equal to, a
//! > from-scratch [`Scheduler`](netsched_core::Scheduler) built over the
//! > surviving demand set.

use std::collections::BTreeMap;

use fxhash::FxHashMap;
use netsched_core::{
    combine_wide_narrow, solve_wide_narrow_on_budgeted, AlgorithmConfig, Budget,
    CertificateQuality, EngineHalf, HalfOutcome, RaiseRule, RoundCalibration, Solution, WarmState,
};
use netsched_decomp::TreeLayerer;
use netsched_distrib::ShardedConflictGraph;
use netsched_graph::{
    ArrivingDemand, DemandId, DemandInstanceUniverse, EdgePath, LineProblem, NetworkId, TreeProblem,
};
use netsched_obs::{Counter, Histogram, ObsRegistry};
use netsched_workloads::json::{FromJson, JsonValue, ToJson};

use crate::core::{LiveCore, TreeAssignments, TREE_LAYERING};
use crate::event::{DemandEvent, DemandRequest, DemandTicket, ServiceError};
use crate::snapshot::SNAPSHOT_FORMAT_VERSION;
use crate::view::{ScheduleSnapshot, ScheduleView};

/// How a session re-solves the standing schedule each epoch.
///
/// # Warm vs Cold
///
/// * [`Cold`](ResolveMode::Cold) re-runs the two-phase engine from zero
///   duals every epoch. This preserves the PR-4 **byte-equivalence
///   anchor** exactly: schedule, certificate and conflict CSR match a
///   from-scratch [`Scheduler`](netsched_core::Scheduler) over the
///   surviving demand set bit for bit.
/// * [`Warm`](ResolveMode::Warm) resumes from the previous epoch's
///   persisted [`WarmState`](netsched_core::WarmState): expired demands'
///   dual contributions are point-cleared, clean shards keep their `β`/`α`
///   values, and the MIS/raise loop re-runs only over the dirty shards
///   until the repaired certificate verifies. This deliberately relaxes
///   the anchor to **certificate-equivalence** — the schedule may differ
///   from a cold solve, but every epoch's dual certificate must verify
///   (`λ ≥ 1 − ε`, feasible schedule) and the certified ratio must stay
///   within the solver's worst-case guarantee (checked in-engine; debug
///   builds assert, release builds fall back to a from-zero re-solve).
///
/// Choose `Warm` for serving tiers where the engine solve dominates the
/// epoch (the regime `BENCH_warm_resolve.json` measures); choose `Cold`
/// when downstream consumers diff schedules against a reference solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolveMode {
    /// From-zero re-solve every epoch (byte-equivalent to a fresh
    /// `Scheduler`; the default).
    #[default]
    Cold,
    /// Warm-started resume with certificate repair
    /// (certificate-equivalent, not byte-equivalent).
    Warm,
}

impl ResolveMode {
    /// Parses a mode name (`"cold"` / `"warm"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cold" => Some(ResolveMode::Cold),
            "warm" => Some(ResolveMode::Warm),
            _ => None,
        }
    }

    /// The mode named by the `NETSCHED_RESOLVE_MODE` environment variable.
    /// Used by the session constructors as the default, so a deployment
    /// (or the CI matrix) can flip every default-constructed session to
    /// warm re-solving without code changes; sessions built with
    /// [`ServiceSession::with_resolve_mode`] are unaffected.
    ///
    /// Returns `Ok(None)` when the variable is unset and a descriptive
    /// error when it is set to something other than `cold`/`warm` — a
    /// typo'd deployment variable must not silently run the wrong mode.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("NETSCHED_RESOLVE_MODE") {
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(raw)) => Err(format!(
                "NETSCHED_RESOLVE_MODE is set to non-unicode value {raw:?} \
                 (expected `cold` or `warm`)"
            )),
            Ok(raw) => match Self::parse(&raw) {
                Some(mode) => Ok(Some(mode)),
                None => Err(format!(
                    "NETSCHED_RESOLVE_MODE is set to unrecognized value `{raw}` \
                     (expected `cold` or `warm`)"
                )),
            },
        }
    }

    /// [`ResolveMode::from_env`], falling back to [`ResolveMode::Cold`]
    /// when the variable is unset **or** invalid. An invalid value is
    /// reported once to stderr instead of being swallowed, so a typo'd
    /// deployment shows up in operator logs.
    pub fn env_default() -> Self {
        match Self::from_env() {
            Ok(mode) => mode.unwrap_or_default(),
            Err(why) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!("netsched-service: {why}; falling back to cold re-solves");
                });
                ResolveMode::Cold
            }
        }
    }
}

/// A write-ahead hook for epoch batches: the durable serving tier
/// (`netsched-persist`) attaches one so every validated batch is recorded
/// **before** the epoch executes.
///
/// [`ServiceSession::step`] calls [`record`](EpochJournal::record) after
/// the batch validated and before any session state mutates, with the
/// epoch number the batch is about to advance the session to. A journal
/// error aborts the step ([`ServiceError::Journal`]) with the session
/// unchanged, so a batch is never executed unless its record is down —
/// the write-ahead contract crash recovery replays against. How durable
/// "down" is (buffered, fsynced per batch, fsynced per epoch) is the
/// journal implementation's policy.
pub trait EpochJournal: Send {
    /// Records the validated batch of the epoch about to execute.
    fn record(&mut self, epoch: u64, batch: &[DemandEvent]) -> Result<(), String>;

    /// Records that the batch journaled for `epoch` was **quarantined**
    /// and never executed, so replay must skip its record. Called by
    /// [`ServiceSession::step_with_deadline`] after a quarantine restores
    /// the session; the default implementation is a no-op for journals
    /// without rollback semantics.
    fn record_rollback(&mut self, epoch: u64) -> Result<(), String> {
        let _ = epoch;
        Ok(())
    }
}

/// What [`ServiceSession::compact`] dropped; see its docs for the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// The wide/narrow split cores were dropped because the live height
    /// mix is no longer mixed.
    pub split_dropped: bool,
    /// Warm states reset because their replay stack had grown past
    /// [`ServiceSession::STACK_MASS_FACTOR`] × live instances.
    pub warm_states_shed: usize,
}

/// Where a scheduled demand runs: its network and, for windowed line
/// demands, the start timeslot of the chosen placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The network the demand was scheduled on.
    pub network: NetworkId,
    /// Start timeslot of the chosen placement (line sessions only).
    pub start: Option<u32>,
}

/// One scheduled demand in a delta or schedule listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledDemand {
    /// The demand's stable ticket.
    pub ticket: DemandTicket,
    /// Where it runs.
    pub placement: Placement,
}

/// The dual certificate carried by every epoch (weak duality: the scaled
/// dual objective upper-bounds the optimum of the **current** live set).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Certificate {
    /// Machine-checked upper bound on the optimum profit.
    pub optimum_upper_bound: f64,
    /// The slackness λ reached by the first phase.
    pub lambda: f64,
    /// The raw dual objective `Σ α + Σ β`.
    pub dual_objective: f64,
}

/// Bookkeeping of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Arrivals applied this epoch.
    pub arrivals: usize,
    /// Expiries applied this epoch.
    pub expiries: usize,
    /// Shards whose local CSR was rebuilt (dirty networks of the splice).
    pub dirty_shards: usize,
    /// Total shards (== networks) of the session.
    pub num_shards: usize,
    /// Live demands after the epoch.
    pub live_demands: usize,
    /// Demand instances after the epoch.
    pub instances: usize,
    /// `false` for the empty-batch fast path, which returns the standing
    /// schedule without re-running the engine.
    pub resolved: bool,
    /// `true` when the epoch's solve resumed a persisted warm state
    /// ([`ResolveMode::Warm`]); `false` for cold solves and for the
    /// empty-batch fast path.
    pub warm_resolve: bool,
    /// Wall-clock seconds spent splicing and rebuilding structures
    /// (universe, dirty shards, layerings, split cores).
    pub rebuild_seconds: f64,
    /// Wall-clock seconds spent in the two-phase engine solve.
    pub solve_seconds: f64,
    /// Wall-clock seconds spent recording the batch in the attached
    /// [`EpochJournal`] (0 when none is attached).
    pub journal_seconds: f64,
    /// Whether the epoch's certificate is full or budget-truncated (a
    /// deadline cut the solve early; see
    /// [`ServiceSession::step_with_deadline`]). The empty-batch fast path
    /// reports [`CertificateQuality::Full`] — it is only taken while no
    /// truncated work is pending.
    pub quality: CertificateQuality,
}

/// What one epoch changed, instead of a full schedule: the paper solver's
/// output re-expressed against the previous epoch.
///
/// Semantics:
/// * `admitted` — demands scheduled now that were not scheduled before
///   (including arrivals of this very batch that got in);
/// * `evicted` — demands still live but no longer scheduled (a demand that
///   left because it *expired* is not listed — its departure is implied by
///   the expiry event itself);
/// * `reassigned` — demands scheduled before and after, but on a different
///   network or start slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDelta {
    /// The epoch this delta advanced the session to (1-based; a fresh
    /// session is at epoch 0).
    pub epoch: u64,
    /// Tickets assigned to this batch's arrivals, in batch order.
    pub tickets: Vec<DemandTicket>,
    /// Newly scheduled demands, ascending by ticket.
    pub admitted: Vec<ScheduledDemand>,
    /// Live demands that lost their slot, ascending by ticket.
    pub evicted: Vec<DemandTicket>,
    /// Demands whose placement moved, ascending by ticket.
    pub reassigned: Vec<ScheduledDemand>,
    /// Total profit of the standing schedule after the epoch.
    pub profit: f64,
    /// The dual certificate of the standing schedule.
    pub certificate: Certificate,
    /// Epoch bookkeeping.
    pub stats: EpochStats,
}

impl ScheduleDelta {
    /// `true` when the epoch changed nothing in the standing schedule.
    pub fn is_quiet(&self) -> bool {
        self.admitted.is_empty() && self.evicted.is_empty() && self.reassigned.is_empty()
    }
}

/// The demand-free topology a session was opened on.
enum BaseProblem {
    Tree(TreeProblem),
    Line(LineProblem),
}

/// One live demand: its stable ticket plus the validated request.
struct LiveDemand {
    ticket: u64,
    request: DemandRequest,
}

/// The lazily created wide/narrow split cores (see
/// [`ServiceSession::step`]): each half mirrors the sub-problem a cached
/// `Scheduler` split would build, maintained incrementally after creation.
struct SplitState {
    wide: LiveCore,
    narrow: LiveCore,
    /// Half demand index → full (current dense) demand id.
    wide_map: Vec<DemandId>,
    narrow_map: Vec<DemandId>,
}

/// Per-layer heap commitment of a session's hot serving structures; see
/// [`ServiceSession::memory_footprint`].
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryFootprint {
    /// Demand/instance columns, paths and the secondary indexes of every
    /// live universe.
    pub universe_bytes: usize,
    /// Sharding index, per-shard CSRs, cross-group arena and splice
    /// scratch of every live sharded conflict graph.
    pub conflict_bytes: usize,
    /// Warm-resolve state: Fenwick duals, the raise-record arena and the
    /// replay stack (0 for cold sessions).
    pub warm_bytes: usize,
}

impl MemoryFootprint {
    /// Total committed bytes across all layers.
    pub fn total_bytes(&self) -> usize {
        self.universe_bytes + self.conflict_bytes + self.warm_bytes
    }
}

/// Pre-resolved handles of the session's hot-path metrics, looked up once
/// per registry so the epoch step records through bare `Arc`'d atomics
/// (no registry lock on the hot path). See the crate docs' metric
/// catalogue for the names.
#[derive(Clone)]
struct SessionMetrics {
    /// `epoch.step_ns` — whole [`ServiceSession::step`] call, the
    /// submit-to-delta admission latency the benches report.
    step_ns: Histogram,
    /// `epoch.validate_ns` — batch validation and partitioning.
    validate_ns: Histogram,
    /// `epoch.journal_ns` — write-ahead journal record (0 when detached).
    journal_ns: Histogram,
    /// `epoch.splice_ns` — universe/layering/warm/split splicing (the
    /// rebuild window minus the conflict shard rebuilds).
    splice_ns: Histogram,
    /// `epoch.conflict_rebuild_ns` — dirty conflict-shard CSR rebuilds.
    conflict_rebuild_ns: Histogram,
    /// `epoch.solve_ns` — the two-phase engine solve.
    solve_ns: Histogram,
    /// `epoch.delta_emit_ns` — schedule diffing and delta assembly.
    delta_emit_ns: Histogram,
    /// `epoch.count` — epochs stepped (including empty fast-path epochs).
    epochs: Counter,
    /// `epoch.quarantined` — batches rolled back by panic quarantine.
    quarantined: Counter,
    /// `engine.mis_rounds` — first-phase MIS/raise rounds executed.
    mis_rounds: Counter,
    /// `engine.raises` — dual raises performed.
    raises: Counter,
    /// `engine.truncated_epochs` — epochs cut by a budget before full
    /// certification.
    truncated_epochs: Counter,
}

impl SessionMetrics {
    fn resolve(obs: &ObsRegistry) -> Self {
        Self {
            step_ns: obs.histogram("epoch.step_ns"),
            validate_ns: obs.histogram("epoch.validate_ns"),
            journal_ns: obs.histogram("epoch.journal_ns"),
            splice_ns: obs.histogram("epoch.splice_ns"),
            conflict_rebuild_ns: obs.histogram("epoch.conflict_rebuild_ns"),
            solve_ns: obs.histogram("epoch.solve_ns"),
            delta_emit_ns: obs.histogram("epoch.delta_emit_ns"),
            epochs: obs.counter("epoch.count"),
            quarantined: obs.counter("epoch.quarantined"),
            mis_rounds: obs.counter("engine.mis_rounds"),
            raises: obs.counter("engine.raises"),
            truncated_epochs: obs.counter("engine.truncated_epochs"),
        }
    }
}

/// A long-lived dynamic scheduling session; see the
/// [module docs](self) for the epoch model and [`crate`] docs for the
/// amortized cost table.
pub struct ServiceSession {
    base: BaseProblem,
    /// Shared per-network tree decompositions (tree sessions only); built
    /// once — networks never change.
    layerer: Option<TreeLayerer>,
    config: AlgorithmConfig,
    resolve: ResolveMode,
    live: Vec<LiveDemand>,
    /// Ticket → current dense demand id.
    index: FxHashMap<u64, u32>,
    next_ticket: u64,
    full: LiveCore,
    split: Option<SplitState>,
    /// Ticket → placement of the standing schedule.
    schedule: BTreeMap<u64, Placement>,
    epoch: u64,
    solved: bool,
    certificate: Certificate,
    profit: f64,
    last: Option<Solution>,
    /// Write-ahead hook called with every validated batch before it
    /// executes; `None` for purely in-memory sessions.
    journal: Option<Box<dyn EpochJournal>>,
    /// `true` when the most recent solve was budget-truncated: unfinished
    /// certification work is pending, so the next epoch must re-solve
    /// even on an empty batch.
    pending_anytime: bool,
    /// Fault-injection hook: epochs whose solve panics deterministically
    /// (see [`ServiceSession::inject_solve_panics`]). Never serialized.
    panic_epochs: Vec<u64>,
    /// The metrics registry every epoch records into (private per session
    /// by default; share one via [`ServiceSession::with_obs`]).
    obs: ObsRegistry,
    /// Hot-path handles resolved from `obs` once.
    metrics: SessionMetrics,
    /// Online EWMA of engine seconds-per-round, fed by **full** solved
    /// epochs only (truncated epochs over-weight fixed per-epoch overhead
    /// and would ratchet the compiled round caps downward — see
    /// `RoundCalibration::observe`); compiles wall-clock deadlines into
    /// deterministic round caps (see
    /// [`ServiceSession::calibrated_budget`]).
    calibration: RoundCalibration,
    /// The wait-free publication point, created lazily by
    /// [`ServiceSession::schedule_view`]. `None` until a reader asks:
    /// sessions that never hand out readers pay nothing on the step path.
    /// Never serialized; carried across a quarantine restore.
    view: Option<ScheduleView>,
    /// Next epoch's announced arrivals ([`ServiceSession::prefetch_arrivals`]),
    /// normalized and awaiting materialization overlapped with this
    /// epoch's phase-2 replay.
    lookahead: Vec<DemandRequest>,
    /// A pre-materialized arrival batch (splice inputs computed during the
    /// previous epoch's solve). Consumed by the next step whose arrivals
    /// start with the staged requests; dropped otherwise. Materialization
    /// reads only the immutable base topology and tree decompositions, so
    /// a staged batch never goes stale structurally.
    staged: Option<StagedBatch>,
}

/// Splice inputs pre-computed for an announced arrival batch; see
/// [`ServiceSession::prefetch_arrivals`].
struct StagedBatch {
    /// The normalized requests the inputs were materialized from.
    arrivals: Vec<DemandRequest>,
    arrivings: Vec<ArrivingDemand>,
    assignments: Vec<TreeAssignments>,
}

impl ServiceSession {
    /// Opens a session over a tree problem, adopting its demands as the
    /// initial live set (tickets `0..m` in problem order). The schedule is
    /// computed by the first [`step`](ServiceSession::step).
    pub fn for_tree(problem: &TreeProblem, config: AlgorithmConfig) -> Self {
        let layerer = TreeLayerer::new(problem, TREE_LAYERING);
        let full = LiveCore::new_tree(problem, &layerer);
        let live: Vec<LiveDemand> = problem
            .demands()
            .iter()
            .map(|d| LiveDemand {
                ticket: d.id.index() as u64,
                request: DemandRequest::Tree {
                    u: d.u,
                    v: d.v,
                    profit: d.profit,
                    height: d.height,
                    access: problem.access(d.id).to_vec(),
                },
            })
            .collect();
        let mut base = TreeProblem::new(problem.num_vertices());
        for t in 0..problem.num_networks() {
            let network = NetworkId::new(t);
            let edges = problem.network(network).edges().map(|(_, uv)| uv).collect();
            let id = base.add_network(edges).expect("copied network is valid");
            for (e, &cap) in problem.capacities(network).iter().enumerate() {
                if (cap - 1.0).abs() > f64::EPSILON {
                    base.set_capacity(id, e, cap).expect("copied capacity");
                }
            }
        }
        Self::assemble(BaseProblem::Tree(base), Some(layerer), config, live, full)
    }

    /// Opens a session over a line problem; see
    /// [`for_tree`](ServiceSession::for_tree).
    pub fn for_line(problem: &LineProblem, config: AlgorithmConfig) -> Self {
        let full = LiveCore::new_line(problem);
        let live: Vec<LiveDemand> = problem
            .demands()
            .iter()
            .map(|d| LiveDemand {
                ticket: d.id.index() as u64,
                request: DemandRequest::Line {
                    release: d.release,
                    deadline: d.deadline,
                    processing: d.processing,
                    profit: d.profit,
                    height: d.height,
                    access: problem.access(d.id).to_vec(),
                },
            })
            .collect();
        let base = LineProblem::new(problem.timeslots(), problem.num_resources());
        Self::assemble(BaseProblem::Line(base), None, config, live, full)
    }

    fn assemble(
        base: BaseProblem,
        layerer: Option<TreeLayerer>,
        config: AlgorithmConfig,
        live: Vec<LiveDemand>,
        full: LiveCore,
    ) -> Self {
        let next_ticket = live.len() as u64;
        let index = live
            .iter()
            .enumerate()
            .map(|(i, d)| (d.ticket, i as u32))
            .collect();
        let obs = ObsRegistry::default();
        let metrics = SessionMetrics::resolve(&obs);
        Self {
            base,
            layerer,
            config,
            resolve: ResolveMode::env_default(),
            live,
            index,
            next_ticket,
            full,
            split: None,
            schedule: BTreeMap::new(),
            epoch: 0,
            solved: false,
            certificate: Certificate::default(),
            profit: 0.0,
            last: None,
            journal: None,
            pending_anytime: false,
            panic_epochs: Vec::new(),
            obs,
            metrics,
            calibration: RoundCalibration::new(),
            view: None,
            lookahead: Vec::new(),
            staged: None,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Heap bytes committed by the session's hot serving structures,
    /// broken down by layer and summed over every live core (the full core
    /// plus, when the height mix forced it, the wide/narrow split halves).
    /// Divide by [`live_demands`](ServiceSession::live_demands) for the
    /// bytes/demand figure the scale benchmarks report.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let mut fp = MemoryFootprint::default();
        let mut add = |core: &LiveCore| {
            fp.universe_bytes += core.universe.committed_bytes();
            fp.conflict_bytes += core.conflict.committed_bytes();
            fp.warm_bytes += core.warm_state().map_or(0, WarmState::committed_bytes);
        };
        add(&self.full);
        if let Some(split) = &self.split {
            add(&split.wide);
            add(&split.narrow);
        }
        fp
    }

    /// Pins the session's [`ResolveMode`] explicitly, overriding the
    /// `NETSCHED_RESOLVE_MODE` environment default. Call before the first
    /// [`step`](ServiceSession::step): switching an already-stepped
    /// session is supported (a warm state is simply created — or ignored —
    /// from the next epoch on) but the mode is part of the session's
    /// contract and should not flip mid-stream.
    pub fn with_resolve_mode(mut self, mode: ResolveMode) -> Self {
        self.resolve = mode;
        self
    }

    /// The session's re-solve mode.
    pub fn resolve_mode(&self) -> ResolveMode {
        self.resolve
    }

    /// Records every subsequent epoch's metrics into `obs` instead of the
    /// session's private registry — so a process can aggregate several
    /// sessions (or a session plus its durable wrapper) into one
    /// [`MetricsReport`](netsched_obs::MetricsReport).
    pub fn with_obs(mut self, obs: ObsRegistry) -> Self {
        self.metrics = SessionMetrics::resolve(&obs);
        self.obs = obs;
        self
    }

    /// The metrics registry the session records into. Snapshot it for the
    /// epoch phase breakdown, engine counters and admission-latency
    /// percentiles (see the crate docs' metric catalogue).
    pub fn obs_registry(&self) -> &ObsRegistry {
        &self.obs
    }

    /// The session's online rounds-per-second calibration (primed after
    /// [`RoundCalibration::PRIME_OBSERVATIONS`] solved epochs).
    pub fn calibration(&self) -> &RoundCalibration {
        &self.calibration
    }

    /// Compiles a wall-clock deadline into a [`Budget`] using the online
    /// calibration: once primed, the budget carries a deterministic round
    /// cap (`deadline / EWMA seconds-per-round`) **and** the wall-clock
    /// deadline — whichever binds first cuts the solve, so a mispredicted
    /// rate can overshoot the deadline by at most the engine's
    /// between-checks granularity, while a well-predicted one cuts
    /// deterministically. Before priming this is a plain
    /// [`Budget::deadline`].
    pub fn calibrated_budget(&self, deadline: std::time::Duration) -> Budget {
        match self.calibration.rounds_for(deadline) {
            Some(cap) => Budget::rounds(cap).with_deadline(deadline),
            None => Budget::deadline(deadline),
        }
    }

    /// The run configuration every epoch solves with.
    pub fn config(&self) -> &AlgorithmConfig {
        &self.config
    }

    /// Number of live demands.
    pub fn live_demands(&self) -> usize {
        self.live.len()
    }

    /// The tickets of all live demands, in current dense-id order.
    pub fn live_tickets(&self) -> Vec<DemandTicket> {
        self.live.iter().map(|d| DemandTicket(d.ticket)).collect()
    }

    /// `true` when the ticket names a live demand.
    pub fn is_live(&self, ticket: DemandTicket) -> bool {
        self.index.contains_key(&ticket.0)
    }

    /// The session's current demand-instance universe.
    pub fn universe(&self) -> &DemandInstanceUniverse {
        &self.full.universe
    }

    /// The session's incrementally maintained sharded conflict graph.
    pub fn conflict(&self) -> &ShardedConflictGraph {
        &self.full.conflict
    }

    /// The standing schedule, ascending by ticket.
    pub fn schedule(&self) -> Vec<ScheduledDemand> {
        self.schedule
            .iter()
            .map(|(&t, &placement)| ScheduledDemand {
                ticket: DemandTicket(t),
                placement,
            })
            .collect()
    }

    /// Total profit of the standing schedule.
    pub fn profit(&self) -> f64 {
        self.profit
    }

    /// The dual certificate of the standing schedule (zeroed before the
    /// first solved epoch).
    pub fn certificate(&self) -> Certificate {
        self.certificate
    }

    /// The full engine [`Solution`] of the most recent solved epoch (`None`
    /// before the first solve **and** right after
    /// [`from_snapshot`](ServiceSession::from_snapshot), until the next
    /// solved epoch). Instance ids refer to the **current** universe only
    /// as long as no further mutating epoch runs.
    pub fn last_solution(&self) -> Option<&Solution> {
        self.last.as_ref()
    }

    /// The session's wait-free publication point (created on first call):
    /// a [`ScheduleView`] whose [readers](ScheduleView::reader) observe
    /// the last certified schedule with one atomic load per read,
    /// regardless of what the write side is doing. Every subsequent
    /// successful epoch publishes a fresh [`ScheduleSnapshot`] — the
    /// in-flight window between a step starting and publishing is the
    /// only time readers lag, by exactly one epoch (see the
    /// [`view`](crate::view) module docs for the staleness contract).
    ///
    /// The view is shared: cloning the returned handle (or calling this
    /// again) addresses the same slot. Publication costs one schedule
    /// clone per epoch on the step path; sessions that never call this
    /// pay nothing.
    pub fn schedule_view(&mut self) -> ScheduleView {
        if self.view.is_none() {
            let quality = self
                .last
                .as_ref()
                .map(|s| s.diagnostics.quality)
                .unwrap_or(CertificateQuality::Full);
            let snapshot = ScheduleSnapshot::capture(
                self.epoch,
                &self.schedule,
                self.certificate,
                self.profit,
                quality,
            );
            self.view = Some(ScheduleView::new(snapshot, &self.obs));
        }
        self.view.clone().expect("view just ensured")
    }

    /// Announces the arrivals expected in the **next** step so the session
    /// can pre-materialize their splice inputs (instance paths and tree
    /// layering assignments) **overlapped with the current epoch's
    /// phase-2 replay** on a scoped thread — the pipelining half of the
    /// serving tier. Requests are validated now (topology never changes,
    /// so validity is stable) and normalized.
    ///
    /// The staged work is consumed when the next step's arrival list
    /// *starts with* the announced requests, in order (`pipeline.prefetch_hits`
    /// counts consumptions); extra arrivals are materialized inline and a
    /// non-matching batch simply drops the staged work. Prefetching is a
    /// pure optimization: schedules, certificates and deltas are
    /// bit-identical with or without it — materialization is
    /// deterministic and reads only immutable topology. The overlap runs
    /// on the unmixed warm-resolve solve path; other paths carry no
    /// overlap thread and the announcement is dropped at the end of the
    /// step.
    pub fn prefetch_arrivals(&mut self, arrivals: &[DemandRequest]) -> Result<(), ServiceError> {
        for request in arrivals {
            self.validate_request(request)?;
        }
        self.lookahead = arrivals.iter().map(|r| normalize(r.clone())).collect();
        Ok(())
    }

    /// Attaches a write-ahead [`EpochJournal`]; every subsequent
    /// [`step`](ServiceSession::step) records its validated batch through
    /// it before executing. Replaces any previously attached journal.
    pub fn attach_journal(&mut self, journal: Box<dyn EpochJournal>) {
        self.journal = Some(journal);
    }

    /// Detaches the journal, returning it. Crash recovery replays logged
    /// batches through [`step`](ServiceSession::step) with the journal
    /// detached, so replayed epochs are not re-recorded.
    pub fn detach_journal(&mut self) -> Option<Box<dyn EpochJournal>> {
        self.journal.take()
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Validates an arriving request against the session topology — by
    /// delegating to the **same** `validate_demand` the problem types'
    /// `add_demand` runs, so the admission surface and the constructors
    /// cannot drift apart — without mutating anything.
    pub fn validate_request(&self, request: &DemandRequest) -> Result<(), ServiceError> {
        match (&self.base, request) {
            (
                BaseProblem::Tree(base),
                DemandRequest::Tree {
                    u,
                    v,
                    profit,
                    height,
                    access,
                },
            ) => base
                .validate_demand(*u, *v, *profit, *height, access)
                .map_err(|e| ServiceError::InvalidDemand(e.to_string())),
            (
                BaseProblem::Line(base),
                DemandRequest::Line {
                    release,
                    deadline,
                    processing,
                    profit,
                    height,
                    access,
                },
            ) => base
                .validate_demand(*release, *deadline, *processing, *profit, *height, access)
                .map_err(|e| ServiceError::InvalidDemand(e.to_string())),
            (BaseProblem::Tree(_), DemandRequest::Line { .. }) => {
                Err(ServiceError::ShapeMismatch { expected: "tree" })
            }
            (BaseProblem::Line(_), DemandRequest::Tree { .. }) => {
                Err(ServiceError::ShapeMismatch { expected: "line" })
            }
        }
    }

    // ------------------------------------------------------------------
    // The epoch step
    // ------------------------------------------------------------------

    /// Advances the session by one epoch: validates and applies the batch,
    /// rebuilds only the touched shards, re-solves, and returns the delta.
    ///
    /// Validation is all-or-nothing: on `Err` the session is unchanged. An
    /// empty batch on an already-solved session is a true no-op (no
    /// rebuild, no solve — `stats.resolved` is `false`), **unless** a
    /// previous deadline-bounded epoch left truncated work pending — then
    /// the empty step re-solves and finishes the certification.
    pub fn step(&mut self, batch: &[DemandEvent]) -> Result<ScheduleDelta, ServiceError> {
        self.step_inner(batch, &Budget::unlimited())
    }

    /// [`step`](ServiceSession::step) under a cooperative [`Budget`] and
    /// with **per-batch panic isolation**.
    ///
    /// *Deadline-bounded (anytime) admission*: the engine checks the
    /// budget between MIS/raise rounds and cuts when it is exhausted. A
    /// cut epoch still returns a feasible schedule with a valid — merely
    /// weaker — certificate, tagged
    /// [`CertificateQuality::Truncated`] in `stats.quality`; the
    /// unfinished certification work is carried into the session (warm
    /// modes keep the repaired shards pending-dirty) and an un-budgeted
    /// follow-up epoch — even an empty one — reconverges to full
    /// certification.
    ///
    /// *Quarantine*: the step runs under `catch_unwind`. If the solve
    /// panics, the batch is **quarantined** — the session is restored
    /// from its pre-step snapshot (journal re-attached), the call returns
    /// [`ServiceError::Quarantined`], and the session remains fully
    /// operational. The pre-step snapshot costs one serialization of the
    /// session per call; latency-sensitive tiers pay it in exchange for
    /// not losing the session to a poisoned batch. The write-ahead
    /// journal records the batch *before* the solve, so a quarantined
    /// batch leaves a dead record in the log; after the restore a
    /// **rollback tombstone** ([`EpochJournal::record_rollback`]) is
    /// appended so replay skips it. The tombstone is best-effort: if the
    /// append itself fails, the next accepted batch re-uses the same
    /// epoch number and replay lets the *last* record of a duplicated
    /// epoch supersede the dead one (engine panics are not reachable from
    /// validated batches — the hook exists for fault injection).
    pub fn step_with_deadline(
        &mut self,
        batch: &[DemandEvent],
        budget: &Budget,
    ) -> Result<ScheduleDelta, ServiceError> {
        let doc = self.snapshot();
        let pending_anytime = self.pending_anytime;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.step_inner(batch, budget)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                // The panic may have left the live structures mid-splice:
                // rebuild everything from the pre-step snapshot and carry
                // over what the snapshot does not serialize.
                let journal = self.journal.take();
                let panic_epochs = std::mem::take(&mut self.panic_epochs);
                let view = self.view.take();
                let mut restored =
                    Self::from_snapshot(&doc).expect("pre-step snapshot must round-trip");
                restored.journal = journal;
                restored.panic_epochs = panic_epochs;
                restored.pending_anytime = pending_anytime;
                restored.metrics = self.metrics.clone();
                restored.obs = self.obs.clone();
                restored.calibration = self.calibration;
                restored.view = view;
                *self = restored;
                // The poisoned epoch never published: clear its in-flight
                // bit so readers' staleness returns to zero on the last
                // certified snapshot.
                if let Some(view) = &self.view {
                    view.abort_epoch();
                }
                self.metrics.quarantined.inc();
                // The journal recorded the batch for epoch + 1 before the
                // solve; tombstone it so replay does not resurrect the
                // quarantined batch. Best-effort: a failed tombstone is
                // covered by replay's duplicate-epoch supersede rule.
                let dead_epoch = self.epoch + 1;
                if let Some(journal) = &mut self.journal {
                    let _ = journal.record_rollback(dead_epoch);
                }
                Err(ServiceError::Quarantined { reason })
            }
        }
    }

    /// `true` when the most recent solve was budget-truncated and the
    /// session carries unfinished certification work; the next epoch
    /// re-solves even on an empty batch.
    pub fn anytime_pending(&self) -> bool {
        self.pending_anytime
    }

    /// Arms the fault-injection hook: the solve of each listed epoch (the
    /// 1-based epoch the step would advance the session to) panics with
    /// `"injected solve fault"` before the engine runs. Harness plumbing
    /// for exercising the quarantine path of
    /// [`step_with_deadline`](ServiceSession::step_with_deadline) —
    /// production solves have no panic sites reachable from a validated
    /// batch. Never serialized; survives a quarantine restore.
    pub fn inject_solve_panics(&mut self, epochs: Vec<u64>) {
        self.panic_epochs = epochs;
    }

    fn step_inner(
        &mut self,
        batch: &[DemandEvent],
        budget: &Budget,
    ) -> Result<ScheduleDelta, ServiceError> {
        let step_start = std::time::Instant::now();
        let _step_span = netsched_obs::span!("epoch.step");

        // ---- validate & partition (no mutation before this block ends) --
        let validate_start = std::time::Instant::now();
        let mut arrivals: Vec<DemandRequest> = Vec::new();
        let mut expired: Vec<DemandId> = Vec::new();
        for event in batch {
            match event {
                DemandEvent::Arrive(request) => {
                    self.validate_request(request)?;
                    arrivals.push(normalize(request.clone()));
                }
                DemandEvent::Expire(ticket) => {
                    let id = *self
                        .index
                        .get(&ticket.0)
                        .ok_or(ServiceError::UnknownTicket(*ticket))?;
                    if expired.contains(&DemandId(id)) {
                        return Err(ServiceError::DuplicateExpiry(*ticket));
                    }
                    expired.push(DemandId(id));
                }
            }
        }
        expired.sort_unstable();
        self.metrics
            .validate_ns
            .record_duration(validate_start.elapsed());

        // ---- write-ahead journal (still no mutation) -------------------
        // Every batch — including empty keep-alive ones — is recorded with
        // the epoch it advances the session to, so a log replay reproduces
        // the epoch counter exactly.
        let journal_start = std::time::Instant::now();
        if let Some(journal) = &mut self.journal {
            journal
                .record(self.epoch + 1, batch)
                .map_err(ServiceError::Journal)?;
        }
        let journal_elapsed = journal_start.elapsed();
        let journal_seconds = journal_elapsed.as_secs_f64();
        self.metrics.journal_ns.record_duration(journal_elapsed);

        // ---- mark the epoch in flight ---------------------------------
        // Every early return above leaves the view untouched; from here
        // the step either publishes (success, fast path) or the
        // quarantine wrapper aborts the epoch on the restored session.
        if let Some(view) = &self.view {
            view.begin_epoch(self.epoch + 1);
        }

        // ---- empty-batch fast path ------------------------------------
        // Skipped while truncated work is pending: an empty step is then
        // exactly the "finish the certification" epoch.
        if batch.is_empty() && self.solved && !self.pending_anytime {
            self.epoch += 1;
            if let Some(view) = &self.view {
                view.publish(ScheduleSnapshot::capture(
                    self.epoch,
                    &self.schedule,
                    self.certificate,
                    self.profit,
                    CertificateQuality::Full,
                ));
            }
            self.metrics.epochs.inc();
            self.metrics.step_ns.record_duration(step_start.elapsed());
            return Ok(ScheduleDelta {
                epoch: self.epoch,
                tickets: Vec::new(),
                admitted: Vec::new(),
                evicted: Vec::new(),
                reassigned: Vec::new(),
                profit: self.profit,
                certificate: self.certificate,
                stats: EpochStats {
                    arrivals: 0,
                    expiries: 0,
                    dirty_shards: 0,
                    num_shards: self.full.conflict.num_shards(),
                    live_demands: self.live.len(),
                    instances: self.full.universe.num_instances(),
                    resolved: false,
                    warm_resolve: false,
                    rebuild_seconds: 0.0,
                    solve_seconds: 0.0,
                    journal_seconds,
                    quality: CertificateQuality::Full,
                },
            });
        }

        // ---- splice the full core -------------------------------------
        let rebuild_start = std::time::Instant::now();
        let rebuild_span = netsched_obs::span!("epoch.rebuild");
        let (arrivings, assignments) = match self.staged.take() {
            // Consume work pre-materialized during the previous epoch's
            // solve when this batch's arrivals start with the announced
            // ones; anything beyond the staged prefix is materialized
            // inline. Bit-identical to the unstaged path: materialization
            // is deterministic over immutable topology.
            Some(staged) if arrivals.starts_with(&staged.arrivals) => {
                self.obs.counter("pipeline.prefetch_hits").inc();
                let mut arrivings = staged.arrivings;
                let mut assignments = staged.assignments;
                let (rest_arrivings, rest_assignments) = materialize_arrivals(
                    &self.base,
                    self.layerer.as_ref(),
                    &arrivals[staged.arrivals.len()..],
                );
                arrivings.extend(rest_arrivings);
                assignments.extend(rest_assignments);
                (arrivings, assignments)
            }
            _ => materialize_arrivals(&self.base, self.layerer.as_ref(), &arrivals),
        };
        let dirty_shards = self.full.apply(&expired, &arrivings, assignments.concat());

        // ---- live-set bookkeeping -------------------------------------
        let mut removed = vec![false; self.live.len()];
        for &a in &expired {
            removed[a.index()] = true;
        }
        // Old dense id → new dense id for survivors (u32::MAX = expired);
        // mirrors the universe's demand renumbering.
        let mut demand_remap = vec![u32::MAX; self.live.len()];
        let mut next = 0u32;
        for (i, r) in removed.iter().enumerate() {
            if !*r {
                demand_remap[i] = next;
                next += 1;
            }
        }
        let mut expired_tickets: Vec<DemandTicket> = Vec::with_capacity(expired.len());
        let mut keep = removed.iter().map(|r| !*r);
        let old_live = std::mem::take(&mut self.live);
        self.live = old_live
            .into_iter()
            .filter(|d| {
                let kept = keep.next().unwrap();
                if !kept {
                    expired_tickets.push(DemandTicket(d.ticket));
                }
                kept
            })
            .collect();
        let mut new_tickets: Vec<DemandTicket> = Vec::with_capacity(arrivals.len());
        for request in &arrivals {
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            new_tickets.push(DemandTicket(ticket));
            self.live.push(LiveDemand {
                ticket,
                request: request.clone(),
            });
        }
        self.index.clear();
        for (i, d) in self.live.iter().enumerate() {
            self.index.insert(d.ticket, i as u32);
        }

        // ---- wide/narrow split maintenance ----------------------------
        let any_wide = self.live.iter().any(|d| d.request.is_wide());
        let any_narrow = self.live.iter().any(|d| !d.request.is_wide());
        let mixed = any_wide && any_narrow;
        let mut conflict_ns = self.full.conflict_rebuild_ns;
        if self.split.is_some() {
            self.update_split(&expired, &demand_remap, &arrivals, &arrivings, &assignments);
            let split = self.split.as_ref().expect("split just updated");
            conflict_ns += split.wide.conflict_rebuild_ns + split.narrow.conflict_rebuild_ns;
        } else if mixed {
            self.split = Some(self.build_split());
        }

        // ---- solve -----------------------------------------------------
        let rebuild_elapsed = rebuild_start.elapsed();
        drop(rebuild_span);
        let rebuild_seconds = rebuild_elapsed.as_secs_f64();
        let rebuild_ns = rebuild_elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.metrics.conflict_rebuild_ns.record(conflict_ns);
        self.metrics
            .splice_ns
            .record(rebuild_ns.saturating_sub(conflict_ns));
        let solve_start = std::time::Instant::now();
        let solve_span = netsched_obs::span!("epoch.solve");
        if self.panic_epochs.contains(&(self.epoch + 1)) {
            panic!("injected solve fault at epoch {}", self.epoch + 1);
        }
        let warm = self.resolve == ResolveMode::Warm;
        let solution = if self.live.is_empty() {
            Solution::empty()
        } else if mixed {
            if warm {
                // Each half resumes its own persisted warm state (wide
                // under the unit rule, narrow under the narrow rule); the
                // Theorem 6.3 / 7.2 combination is solve-agnostic. Both
                // halves charge the same budget.
                let split = self.split.as_mut().expect("split exists when mixed");
                let wide_solution = split.wide.solve_warm(RaiseRule::Unit, &self.config, budget);
                let narrow_solution =
                    split
                        .narrow
                        .solve_warm(RaiseRule::Narrow, &self.config, budget);
                let split = self.split.as_ref().expect("split exists when mixed");
                combine_wide_narrow(
                    &self.full.universe,
                    HalfOutcome {
                        universe: &split.wide.universe,
                        demand_map: &split.wide_map,
                        solution: wide_solution,
                    },
                    HalfOutcome {
                        universe: &split.narrow.universe,
                        demand_map: &split.narrow_map,
                        solution: narrow_solution,
                    },
                )
            } else {
                let split = self.split.as_ref().expect("split exists when mixed");
                solve_wide_narrow_on_budgeted(
                    &self.full.universe,
                    EngineHalf {
                        universe: &split.wide.universe,
                        conflict: &split.wide.conflict,
                        layering: &split.wide.layering,
                        demand_map: &split.wide_map,
                    },
                    EngineHalf {
                        universe: &split.narrow.universe,
                        conflict: &split.narrow.conflict,
                        layering: &split.narrow.layering,
                        demand_map: &split.narrow_map,
                    },
                    &self.config,
                    budget,
                )
            }
        } else if any_narrow {
            if warm {
                self.solve_full_warm(RaiseRule::Narrow, budget)
            } else {
                self.full.solve(RaiseRule::Narrow, &self.config, budget)
            }
        } else if warm {
            self.solve_full_warm(RaiseRule::Unit, budget)
        } else {
            self.full.solve(RaiseRule::Unit, &self.config, budget)
        };
        // An announcement not consumed by an overlapped solve (cold mode,
        // mixed split, empty live set) is dropped: the next step simply
        // materializes its batch inline.
        self.lookahead.clear();
        let solve_elapsed = solve_start.elapsed();
        drop(solve_span);
        let solve_seconds = solve_elapsed.as_secs_f64();
        self.metrics.solve_ns.record_duration(solve_elapsed);

        // ---- delta extraction -----------------------------------------
        let delta_start = std::time::Instant::now();
        let mut new_schedule: BTreeMap<u64, Placement> = BTreeMap::new();
        for &d in &solution.selected {
            let inst = self.full.universe.instance(d);
            let ticket = self.live[inst.demand.index()].ticket;
            new_schedule.insert(
                ticket,
                Placement {
                    network: inst.network,
                    start: inst.start,
                },
            );
        }
        let mut admitted = Vec::new();
        let mut reassigned = Vec::new();
        for (&ticket, &placement) in &new_schedule {
            match self.schedule.get(&ticket) {
                None => admitted.push(ScheduledDemand {
                    ticket: DemandTicket(ticket),
                    placement,
                }),
                Some(&old) if old != placement => reassigned.push(ScheduledDemand {
                    ticket: DemandTicket(ticket),
                    placement,
                }),
                Some(_) => {}
            }
        }
        let evicted: Vec<DemandTicket> = self
            .schedule
            .keys()
            .filter(|t| !new_schedule.contains_key(t) && self.index.contains_key(t))
            .map(|&t| DemandTicket(t))
            .collect();

        self.schedule = new_schedule;
        self.profit = solution.profit;
        self.certificate = Certificate {
            optimum_upper_bound: solution.diagnostics.optimum_upper_bound,
            lambda: solution.diagnostics.lambda,
            dual_objective: solution.diagnostics.dual_objective,
        };
        self.solved = true;
        self.pending_anytime = solution.diagnostics.quality.is_truncated();
        self.epoch += 1;
        let quality = solution.diagnostics.quality;
        self.metrics.epochs.inc();
        self.metrics.mis_rounds.add(solution.diagnostics.steps);
        self.metrics.raises.add(solution.diagnostics.raised);
        if quality.is_truncated() {
            self.metrics.truncated_epochs.inc();
        }
        // Only full solves are rate samples. A truncated epoch's few
        // rounds carry the epoch's whole fixed overhead, so its
        // seconds-per-round reads high; feeding it would shrink the next
        // compiled cap, truncate earlier, and ratchet the caps toward the
        // floor (reproduced by `budget::tests::
        // truncated_samples_ratchet_compiled_caps_downward`).
        if quality.is_full() {
            self.calibration
                .observe(solution.diagnostics.steps, solve_seconds);
        }
        if let Some(view) = &self.view {
            view.publish(ScheduleSnapshot::capture(
                self.epoch,
                &self.schedule,
                self.certificate,
                self.profit,
                quality,
            ));
        }
        self.last = Some(solution);
        self.metrics
            .delta_emit_ns
            .record_duration(delta_start.elapsed());
        self.metrics.step_ns.record_duration(step_start.elapsed());

        Ok(ScheduleDelta {
            epoch: self.epoch,
            tickets: new_tickets,
            admitted,
            evicted,
            reassigned,
            profit: self.profit,
            certificate: self.certificate,
            stats: EpochStats {
                arrivals: arrivals.len(),
                expiries: expired.len(),
                dirty_shards,
                num_shards: self.full.conflict.num_shards(),
                live_demands: self.live.len(),
                instances: self.full.universe.num_instances(),
                resolved: true,
                warm_resolve: warm && !self.live.is_empty(),
                rebuild_seconds,
                solve_seconds,
                journal_seconds,
                quality,
            },
        })
    }

    /// [`LiveCore::solve_warm`] on the full core, overlapping the
    /// materialization of any announced lookahead batch with the engine's
    /// phase-2 replay on a scoped thread. Phase 2 only pops the frozen MIS
    /// stack, and materialization reads only the immutable topology, so
    /// the solution is bit-identical to the sequential path (no
    /// announcement → exactly the sequential path, no thread spawned).
    fn solve_full_warm(&mut self, rule: RaiseRule, budget: &Budget) -> Solution {
        if self.lookahead.is_empty() {
            return self.full.solve_warm(rule, &self.config, budget);
        }
        let lookahead = std::mem::take(&mut self.lookahead);
        // Disjoint field borrows: the solve holds `self.full` mutably
        // while the overlap thread reads only `base` and `layerer`.
        let base = &self.base;
        let layerer = self.layerer.as_ref();
        let (solution, (arrivals, (arrivings, assignments))) =
            self.full
                .solve_warm_overlapped(rule, &self.config, budget, move || {
                    let materialized = materialize_arrivals(base, layerer, &lookahead);
                    (lookahead, materialized)
                });
        self.staged = Some(StagedBatch {
            arrivals,
            arrivings,
            assignments,
        });
        solution
    }

    /// Splices the epoch's (already full-core-applied) delta through the
    /// existing split cores: each half receives the expiries and arrivals
    /// of its height class, and the half→full demand maps are renumbered
    /// through the full core's demand remap.
    fn update_split(
        &mut self,
        expired: &[DemandId],
        demand_remap: &[u32],
        arrivals: &[DemandRequest],
        arrivings: &[ArrivingDemand],
        assignments: &[TreeAssignments],
    ) {
        let split = self.split.as_mut().expect("caller checked");
        let survivors = demand_remap.iter().filter(|&&m| m != u32::MAX).count() as u32;
        let mut removed = vec![false; demand_remap.len()];
        for &a in expired {
            removed[a.index()] = true;
        }

        for wide_half in [true, false] {
            let (core, map) = if wide_half {
                (&mut split.wide, &mut split.wide_map)
            } else {
                (&mut split.narrow, &mut split.narrow_map)
            };
            // Expired positions within this half, in half order.
            let half_expired: Vec<DemandId> = map
                .iter()
                .enumerate()
                .filter(|&(_, full_id)| removed[full_id.index()])
                .map(|(i, _)| DemandId::new(i))
                .collect();
            // This half's arrivals, in batch order.
            let mut half_arrivings: Vec<ArrivingDemand> = Vec::new();
            let mut half_assignments: TreeAssignments = Vec::new();
            let mut half_new_full: Vec<DemandId> = Vec::new();
            for (i, ((request, arriving), assigns)) in
                arrivals.iter().zip(arrivings).zip(assignments).enumerate()
            {
                if request.is_wide() == wide_half {
                    half_arrivings.push(arriving.clone());
                    half_assignments.extend(assigns.iter().cloned());
                    half_new_full.push(DemandId(survivors + i as u32));
                }
            }
            core.apply(&half_expired, &half_arrivings, half_assignments);
            // Renumber the half → full map and append the new arrivals.
            let old_map = std::mem::take(map);
            *map = old_map
                .into_iter()
                .filter_map(|full_id| match demand_remap[full_id.index()] {
                    u32::MAX => None,
                    new => Some(DemandId(new)),
                })
                .collect();
            map.extend(half_new_full);
        }
    }

    /// Builds the split cores from scratch over the current live set — the
    /// one-time cost paid on the first epoch whose height mix is mixed
    /// (identical to what a fresh `Scheduler`'s split caches would hold).
    fn build_split(&self) -> SplitState {
        let mut wide_map = Vec::new();
        let mut narrow_map = Vec::new();
        for (i, d) in self.live.iter().enumerate() {
            if d.request.is_wide() {
                wide_map.push(DemandId::new(i));
            } else {
                narrow_map.push(DemandId::new(i));
            }
        }
        let (wide, narrow) = match &self.base {
            BaseProblem::Tree(base) => {
                let layerer = self.layerer.as_ref().expect("tree sessions have a layerer");
                let build = |keep_wide: bool| {
                    let mut p = base.clone();
                    for d in &self.live {
                        if d.request.is_wide() != keep_wide {
                            continue;
                        }
                        if let DemandRequest::Tree {
                            u,
                            v,
                            profit,
                            height,
                            access,
                        } = &d.request
                        {
                            p.add_demand(*u, *v, *profit, *height, access.clone())
                                .expect("live demands are valid");
                        }
                    }
                    LiveCore::new_tree(&p, layerer)
                };
                (build(true), build(false))
            }
            BaseProblem::Line(base) => {
                let build = |keep_wide: bool| {
                    let mut p = base.clone();
                    for d in &self.live {
                        if d.request.is_wide() != keep_wide {
                            continue;
                        }
                        if let DemandRequest::Line {
                            release,
                            deadline,
                            processing,
                            profit,
                            height,
                            access,
                        } = &d.request
                        {
                            p.add_demand(
                                *release,
                                *deadline,
                                *processing,
                                *profit,
                                *height,
                                access.clone(),
                            )
                            .expect("live demands are valid");
                        }
                    }
                    LiveCore::new_line(&p)
                };
                (build(true), build(false))
            }
        };
        SplitState {
            wide,
            narrow,
            wide_map,
            narrow_map,
        }
    }

    // ------------------------------------------------------------------
    // Durability: compaction, snapshot, restore
    // ------------------------------------------------------------------

    /// Warm replay stacks larger than this factor × live instances are
    /// shed by [`compact`](ServiceSession::compact).
    pub const STACK_MASS_FACTOR: usize = 8;

    /// The lifecycle/compaction policy of the durable serving tier, run
    /// before every snapshot (and callable on its own):
    ///
    /// * the wide/narrow **split cores are dropped** once the live height
    ///   mix is no longer mixed — they are stale caches at that point, and
    ///   [`step`](ServiceSession::step) rebuilds byte-identical ones if
    ///   the mix turns mixed again;
    /// * a **warm state is reset** when its replay stack mass exceeds
    ///   [`STACK_MASS_FACTOR`](Self::STACK_MASS_FACTOR) × live instances —
    ///   long-lived sessions otherwise accumulate stack entries from
    ///   churned-away epochs without bound. Resetting is certificate-safe:
    ///   the next warm solve re-primes from zero duals (a cold re-epoch)
    ///   and certifies like any fresh state.
    pub fn compact(&mut self) -> CompactionReport {
        let any_wide = self.live.iter().any(|d| d.request.is_wide());
        let any_narrow = self.live.iter().any(|d| !d.request.is_wide());
        let mixed = any_wide && any_narrow;
        let mut report = CompactionReport::default();
        if self.split.is_some() && !mixed {
            self.split = None;
            report.split_dropped = true;
        }
        let mut shed = |core: &mut LiveCore| {
            let cap = Self::STACK_MASS_FACTOR * core.universe.num_instances().max(1);
            if core.warm_state().is_some_and(|w| w.stack_mass() > cap) {
                core.set_warm_state(None);
                report.warm_states_shed += 1;
            }
        };
        shed(&mut self.full);
        if let Some(split) = &mut self.split {
            shed(&mut split.wide);
            shed(&mut split.narrow);
        }
        report
    }

    /// Serializes the session as a versioned snapshot document: base
    /// topology, live ticket table (dense order), resolve mode, epoch
    /// counter, standing schedule + certificate, and every core's
    /// persisted [`WarmState`]. The split cores themselves are **not**
    /// serialized — [`from_snapshot`](ServiceSession::from_snapshot)
    /// rebuilds them from the live set (byte-identical by the session's
    /// differential invariant) — only their warm states travel. The
    /// `last` engine solution is transient telemetry and is not captured.
    pub fn snapshot(&self) -> JsonValue {
        let (shape, base) = match &self.base {
            BaseProblem::Tree(p) => ("tree", p.to_json()),
            BaseProblem::Line(p) => ("line", p.to_json()),
        };
        let live = JsonValue::Array(
            self.live
                .iter()
                .map(|d| {
                    JsonValue::Array(vec![JsonValue::u64_value(d.ticket), d.request.to_json()])
                })
                .collect(),
        );
        let schedule = JsonValue::Array(
            self.schedule
                .iter()
                .map(|(&t, p)| JsonValue::Array(vec![JsonValue::u64_value(t), p.to_json()]))
                .collect(),
        );
        let warm_or_null = |core: &LiveCore| {
            core.warm_state()
                .map(ToJson::to_json)
                .unwrap_or(JsonValue::Null)
        };
        JsonValue::object(vec![
            ("format", JsonValue::int(SNAPSHOT_FORMAT_VERSION as usize)),
            ("shape", JsonValue::String(shape.into())),
            ("base", base),
            ("config", self.config.to_json()),
            ("resolve", self.resolve.to_json()),
            ("live", live),
            ("next_ticket", JsonValue::u64_value(self.next_ticket)),
            ("epoch", JsonValue::u64_value(self.epoch)),
            ("solved", JsonValue::Bool(self.solved)),
            ("schedule", schedule),
            ("profit", JsonValue::num(self.profit)),
            ("certificate", self.certificate.to_json()),
            ("full_warm", warm_or_null(&self.full)),
            (
                "split",
                match &self.split {
                    None => JsonValue::Null,
                    Some(s) => JsonValue::object(vec![
                        ("wide_warm", warm_or_null(&s.wide)),
                        ("narrow_warm", warm_or_null(&s.narrow)),
                    ]),
                },
            ),
        ])
    }

    /// Reconstructs a session from a [`snapshot`](ServiceSession::snapshot)
    /// document: the base problem plus the live requests (in recorded
    /// dense order) rebuild every derived structure through the normal
    /// constructors — so the restored universe, conflict CSRs and
    /// layerings are byte-identical to the uninterrupted session's — and
    /// the recorded tickets, counters, schedule, certificate and warm
    /// states are installed on top. Warm states are validated against the
    /// rebuilt universes before installation. The cores' conflict-graph
    /// generations are advanced past the recovered epoch so
    /// generation-keyed merged-CSR caches can never alias pre-crash folds.
    pub fn from_snapshot(doc: &JsonValue) -> Result<Self, String> {
        let format = doc.field("format")?.as_u32()?;
        if format != SNAPSHOT_FORMAT_VERSION {
            return Err(format!(
                "unsupported snapshot format {format} (this build reads {SNAPSHOT_FORMAT_VERSION})"
            ));
        }
        let config = AlgorithmConfig::from_json(doc.field("config")?)?;
        let resolve = ResolveMode::from_json(doc.field("resolve")?)?;
        let live: Vec<(u64, DemandRequest)> = doc
            .field("live")?
            .as_array()?
            .iter()
            .map(|entry| {
                let entry = entry.as_array()?;
                if entry.len() != 2 {
                    return Err("live entries are [ticket, request] pairs".to_string());
                }
                Ok((entry[0].as_u64()?, DemandRequest::from_json(&entry[1])?))
            })
            .collect::<Result<_, String>>()?;
        let mut session = match doc.field("shape")?.as_str()? {
            "tree" => {
                let mut problem = TreeProblem::from_json(doc.field("base")?)?;
                for (_, request) in &live {
                    let DemandRequest::Tree {
                        u,
                        v,
                        profit,
                        height,
                        access,
                    } = request
                    else {
                        return Err("line request in a tree snapshot".into());
                    };
                    problem
                        .add_demand(*u, *v, *profit, *height, access.clone())
                        .map_err(|e| format!("snapshot live demand rejected: {e}"))?;
                }
                Self::for_tree(&problem, config)
            }
            "line" => {
                let mut problem = LineProblem::from_json(doc.field("base")?)?;
                for (_, request) in &live {
                    let DemandRequest::Line {
                        release,
                        deadline,
                        processing,
                        profit,
                        height,
                        access,
                    } = request
                    else {
                        return Err("tree request in a line snapshot".into());
                    };
                    problem
                        .add_demand(
                            *release,
                            *deadline,
                            *processing,
                            *profit,
                            *height,
                            access.clone(),
                        )
                        .map_err(|e| format!("snapshot live demand rejected: {e}"))?;
                }
                Self::for_line(&problem, config)
            }
            other => return Err(format!("unknown session shape `{other}`")),
        };
        session.resolve = resolve;
        session.index.clear();
        for (i, (ticket, _)) in live.iter().enumerate() {
            session.live[i].ticket = *ticket;
            session.index.insert(*ticket, i as u32);
        }
        if session.index.len() != session.live.len() {
            return Err("snapshot live tickets are not distinct".into());
        }
        session.next_ticket = doc.field("next_ticket")?.as_u64()?;
        session.epoch = doc.field("epoch")?.as_u64()?;
        session.solved = match doc.field("solved")? {
            JsonValue::Bool(b) => *b,
            other => return Err(format!("expected boolean `solved`, got {}", other.render())),
        };
        session.schedule = doc
            .field("schedule")?
            .as_array()?
            .iter()
            .map(|entry| {
                let entry = entry.as_array()?;
                if entry.len() != 2 {
                    return Err("schedule entries are [ticket, placement] pairs".to_string());
                }
                Ok((entry[0].as_u64()?, Placement::from_json(&entry[1])?))
            })
            .collect::<Result<BTreeMap<_, _>, String>>()?;
        for ticket in session.schedule.keys() {
            if !session.index.contains_key(ticket) {
                return Err(format!("scheduled ticket t{ticket} is not live"));
            }
        }
        session.profit = doc.field("profit")?.as_f64()?;
        session.certificate = Certificate::from_json(doc.field("certificate")?)?;
        match doc.field("full_warm")? {
            JsonValue::Null => {}
            warm_doc => {
                let warm = WarmState::from_json(warm_doc)?;
                warm.validate_shape(&session.full.universe)?;
                session.full.set_warm_state(Some(warm));
            }
        }
        let any_wide = session.live.iter().any(|d| d.request.is_wide());
        let any_narrow = session.live.iter().any(|d| !d.request.is_wide());
        if any_wide && any_narrow {
            let mut split = session.build_split();
            let split_doc = doc.field("split")?;
            if !matches!(split_doc, JsonValue::Null) {
                for (key, core) in [
                    ("wide_warm", &mut split.wide),
                    ("narrow_warm", &mut split.narrow),
                ] {
                    match split_doc.field(key)? {
                        JsonValue::Null => {}
                        warm_doc => {
                            let warm = WarmState::from_json(warm_doc)?;
                            warm.validate_shape(&core.universe)?;
                            core.set_warm_state(Some(warm));
                        }
                    }
                }
            }
            session.split = Some(split);
        }
        session.full.conflict.advance_generation(session.epoch);
        if let Some(split) = &mut session.split {
            split.wide.conflict.advance_generation(session.epoch);
            split.narrow.conflict.advance_generation(session.epoch);
        }
        Ok(session)
    }
}

/// Computes the universe splice inputs of a validated arrival batch: one
/// [`ArrivingDemand`] per request (instances in the canonical
/// `problem.universe()` enumeration order) and, for tree sessions, the
/// per-instance layering assignments. A free function over the immutable
/// topology (not a session method) so the overlapped solve can run it on
/// a scoped thread while the session's cores are mutably borrowed.
fn materialize_arrivals(
    base: &BaseProblem,
    layerer: Option<&TreeLayerer>,
    arrivals: &[DemandRequest],
) -> (Vec<ArrivingDemand>, Vec<TreeAssignments>) {
    let mut arrivings = Vec::with_capacity(arrivals.len());
    let mut assignments = Vec::with_capacity(arrivals.len());
    for request in arrivals {
        let mut instances = Vec::new();
        let mut assigns: TreeAssignments = Vec::new();
        match (base, request) {
            (BaseProblem::Tree(base), DemandRequest::Tree { u, v, access, .. }) => {
                let layerer = layerer.expect("tree sessions have a layerer");
                for &t in access {
                    let tree = base.network(t);
                    let path = tree.path_edges(*u, *v);
                    assigns.push(layerer.assign(tree, t, *u, *v, &path));
                    instances.push((t, path, None));
                }
            }
            (
                BaseProblem::Line(_),
                DemandRequest::Line {
                    release,
                    deadline,
                    processing,
                    ..
                },
            ) => {
                let last_start = deadline + 1 - processing;
                for &t in request.access() {
                    for start in *release..=last_start {
                        let end = start + processing - 1;
                        instances.push((
                            t,
                            EdgePath::interval(start as usize, end as usize),
                            Some(start),
                        ));
                    }
                }
            }
            _ => unreachable!("validated requests match the session shape"),
        }
        arrivings.push(ArrivingDemand {
            profit: request.profit(),
            height: request.height(),
            instances,
        });
        assignments.push(assigns);
    }
    (arrivings, assignments)
}

/// Sorts and deduplicates the access set, mirroring `add_demand`.
fn normalize(mut request: DemandRequest) -> DemandRequest {
    match &mut request {
        DemandRequest::Tree { access, .. } | DemandRequest::Line { access, .. } => {
            access.sort_unstable();
            access.dedup();
        }
    }
    request
}

impl std::fmt::Debug for ServiceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSession")
            .field("epoch", &self.epoch)
            .field("live_demands", &self.live.len())
            .field("instances", &self.full.universe.num_instances())
            .field("scheduled", &self.schedule.len())
            .field("profit", &self.profit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DemandEvent;
    use netsched_graph::VertexId;

    fn line_problem() -> LineProblem {
        let mut p = LineProblem::new(24, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for (release, len, profit) in [(0u32, 4u32, 3.0), (2, 5, 2.0), (8, 3, 4.0), (14, 6, 1.5)] {
            p.add_demand(release, release + len + 2, len, profit, 1.0, acc.clone())
                .unwrap();
        }
        p
    }

    #[test]
    fn resolve_mode_parses_and_defaults_cold() {
        assert_eq!(ResolveMode::parse("warm"), Some(ResolveMode::Warm));
        assert_eq!(ResolveMode::parse("WARM"), Some(ResolveMode::Warm));
        assert_eq!(ResolveMode::parse("cold"), Some(ResolveMode::Cold));
        assert_eq!(ResolveMode::parse("tepid"), None);
        assert_eq!(ResolveMode::default(), ResolveMode::Cold);
    }

    #[test]
    fn first_warm_epoch_matches_the_cold_engine_exactly() {
        // A fresh warm state replays the cold engine's step sequence, so
        // epoch 1 of a Warm session is bit-identical to a Cold session's.
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut cold =
            ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Cold);
        let mut warm =
            ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
        assert_eq!(warm.resolve_mode(), ResolveMode::Warm);
        let dc = cold.step(&[]).unwrap();
        let dw = warm.step(&[]).unwrap();
        assert!(dw.stats.warm_resolve);
        assert!(!dc.stats.warm_resolve);
        assert_eq!(dc.profit, dw.profit);
        assert_eq!(dc.admitted, dw.admitted);
        assert_eq!(dc.certificate, dw.certificate);
    }

    #[test]
    fn warm_sessions_recover_after_expiring_everything() {
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut session =
            ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
        session.step(&[]).unwrap();
        let everyone: Vec<DemandEvent> = session
            .live_tickets()
            .into_iter()
            .map(DemandEvent::Expire)
            .collect();
        let delta = session.step(&everyone).unwrap();
        assert_eq!(delta.profit, 0.0);
        let delta = session
            .step(&[DemandEvent::Arrive(DemandRequest::Line {
                release: 0,
                deadline: 10,
                processing: 4,
                profit: 5.0,
                height: 1.0,
                access: vec![NetworkId::new(0)],
            })])
            .unwrap();
        assert_eq!(delta.admitted.len(), 1);
        assert!(delta.certificate.optimum_upper_bound + 1e-9 >= delta.profit);
        assert!(delta.certificate.lambda >= 0.9 - 1e-6);
    }

    #[test]
    fn warm_sessions_survive_height_mix_transitions() {
        // All-wide -> mixed (split cores, per-half warm states) -> back to
        // a single class: every transition resets or re-primes the warm
        // states without losing the certificate.
        let mut p = TreeProblem::new(6);
        let t = p
            .add_network(vec![
                (VertexId(0), VertexId(1)),
                (VertexId(1), VertexId(2)),
                (VertexId(2), VertexId(3)),
                (VertexId(2), VertexId(4)),
                (VertexId(4), VertexId(5)),
            ])
            .unwrap();
        p.add_unit_demand(VertexId(0), VertexId(3), 3.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(5), 2.0, vec![t])
            .unwrap();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut session = ServiceSession::for_tree(&p, config).with_resolve_mode(ResolveMode::Warm);
        session.step(&[]).unwrap();

        // A narrow arrival forces the wide/narrow split path.
        let delta = session
            .step(&[DemandEvent::Arrive(DemandRequest::Tree {
                u: VertexId(3),
                v: VertexId(5),
                profit: 1.0,
                height: 0.3,
                access: vec![t],
            })])
            .unwrap();
        assert!(delta.certificate.optimum_upper_bound + 1e-9 >= delta.profit);
        let narrow_ticket = delta.tickets[0];

        // Expiring the narrow demand returns to the all-wide full-core path.
        let delta = session.step(&[DemandEvent::Expire(narrow_ticket)]).unwrap();
        assert!(delta.certificate.lambda >= 0.9 - 1e-6);
        assert!(delta.certificate.optimum_upper_bound + 1e-9 >= delta.profit);
        assert!(session.profit() > 0.0);
    }
}
