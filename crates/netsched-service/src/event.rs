//! The demand-event model of the dynamic scheduling service.
//!
//! A [`ServiceSession`](crate::ServiceSession) admits **batches** of
//! [`DemandEvent`]s: arrivals carry a full [`DemandRequest`] (the dynamic
//! counterpart of `TreeProblem::add_demand` / `LineProblem::add_demand`),
//! expiries name a previously issued [`DemandTicket`]. Tickets are the
//! *stable* external identity of a demand — the dense `DemandId`s of the
//! underlying universe are renumbered whenever an earlier demand expires,
//! exactly as a from-scratch rebuild over the surviving set would number
//! them, so callers never see them.

use std::fmt;

use netsched_graph::{NetworkId, VertexId};

/// The stable identity of a demand across the lifetime of a service
/// session. Assigned sequentially at admission (the demands a session is
/// seeded with receive tickets `0..m` in problem order) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DemandTicket(pub u64);

impl fmt::Display for DemandTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An arriving demand: everything `add_demand` would take, for either
/// network shape. The request's shape must match the session's shape.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandRequest {
    /// A tree-network demand `⟨u, v⟩` with an access set.
    Tree {
        /// One end-point of the route.
        u: VertexId,
        /// The other end-point of the route.
        v: VertexId,
        /// Profit `p(a) > 0`.
        profit: f64,
        /// Height `h(a) ∈ (0, 1]`.
        height: f64,
        /// Accessible networks (non-empty; duplicates are removed).
        access: Vec<NetworkId>,
    },
    /// A windowed line-network demand (Section 7).
    Line {
        /// Release time (first admissible timeslot, inclusive).
        release: u32,
        /// Deadline (last admissible timeslot, inclusive).
        deadline: u32,
        /// Processing time (consecutive timeslots required).
        processing: u32,
        /// Profit `p(a) > 0`.
        profit: f64,
        /// Height `h(a) ∈ (0, 1]`.
        height: f64,
        /// Accessible resources (non-empty; duplicates are removed).
        access: Vec<NetworkId>,
    },
}

impl DemandRequest {
    /// The demand's height.
    pub fn height(&self) -> f64 {
        match self {
            DemandRequest::Tree { height, .. } | DemandRequest::Line { height, .. } => *height,
        }
    }

    /// The demand's profit.
    pub fn profit(&self) -> f64 {
        match self {
            DemandRequest::Tree { profit, .. } | DemandRequest::Line { profit, .. } => *profit,
        }
    }

    /// The demand's access set.
    pub fn access(&self) -> &[NetworkId] {
        match self {
            DemandRequest::Tree { access, .. } | DemandRequest::Line { access, .. } => access,
        }
    }

    /// `true` when the demand is wide (`h > 1/2`) — the split the
    /// arbitrary-height solvers are built on.
    pub fn is_wide(&self) -> bool {
        self.height() > 0.5
    }
}

/// One element of an epoch batch.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandEvent {
    /// A demand joins the live set; the epoch's
    /// [`ScheduleDelta`](crate::ScheduleDelta) reports the ticket it was
    /// assigned.
    Arrive(DemandRequest),
    /// A previously admitted demand leaves the live set.
    Expire(DemandTicket),
}

/// Errors of the dynamic service. Batches are validated **before** any
/// state is mutated, so a failed [`step`](crate::ServiceSession::step)
/// leaves the session unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// An arriving demand failed the same validation `add_demand` performs
    /// (degenerate route, invalid window, non-positive profit, height
    /// outside `(0, 1]`, empty or unknown access set).
    InvalidDemand(String),
    /// An arrival's shape (tree vs line) does not match the session's.
    ShapeMismatch {
        /// The shape the session serves.
        expected: &'static str,
    },
    /// An expiry named a ticket that is not live.
    UnknownTicket(DemandTicket),
    /// The same ticket was expired twice within one batch.
    DuplicateExpiry(DemandTicket),
    /// An attached [`EpochJournal`](crate::EpochJournal) refused to record
    /// the batch. The write-ahead contract requires the batch to be
    /// durable before the epoch executes, so the step is abandoned with
    /// the session unchanged.
    Journal(String),
    /// Two or more events of one submission failed validation. Every
    /// failure is reported with the index of the offending event, so
    /// async callers can drop or fix exactly the invalid tickets and
    /// resubmit the rest (a single invalid event is returned as its bare
    /// error instead).
    InvalidBatch {
        /// `(event index, error)` for every invalid event, in batch order.
        failures: Vec<(usize, ServiceError)>,
    },
    /// The async frontend's submit queue is full
    /// ([`ServicePolicy::max_queued`](crate::ServicePolicy::max_queued)):
    /// backpressure, not failure. Nothing was enqueued; resubmit after
    /// roughly `retry_after_epochs` epochs have drained.
    Overloaded {
        /// How many epochs must run before the queue has drained; a
        /// polite client backs off at least this long.
        /// [`Service`](crate::Service) folds every queued submission into
        /// the next epoch, so it always hints `1`; the threaded
        /// [`PipelinedService`](crate::PipelinedService) steps one epoch
        /// per queued submission and hints the current queue depth.
        retry_after_epochs: u64,
    },
    /// The solve of this batch panicked. The batch is quarantined — the
    /// session was restored from its pre-step structures and is fully
    /// operational; the offending batch must not be resubmitted verbatim.
    Quarantined {
        /// The panic payload (downcast to a string when possible).
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidDemand(why) => write!(f, "invalid demand: {why}"),
            ServiceError::ShapeMismatch { expected } => {
                write!(f, "request shape does not match the session ({expected})")
            }
            ServiceError::UnknownTicket(t) => write!(f, "ticket {t} is not live"),
            ServiceError::DuplicateExpiry(t) => write!(f, "ticket {t} expired twice in one batch"),
            ServiceError::Journal(why) => write!(f, "journal refused the batch: {why}"),
            ServiceError::InvalidBatch { failures } => {
                write!(f, "{} events of the batch are invalid:", failures.len())?;
                for (index, error) in failures {
                    write!(f, " [#{index}: {error}]")?;
                }
                Ok(())
            }
            ServiceError::Overloaded { retry_after_epochs } => write!(
                f,
                "submit queue is full; retry after ~{retry_after_epochs} epoch(s)"
            ),
            ServiceError::Quarantined { reason } => write!(
                f,
                "solve panicked and the batch was quarantined (session restored): {reason}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors_and_display() {
        let req = DemandRequest::Tree {
            u: VertexId(0),
            v: VertexId(3),
            profit: 2.0,
            height: 0.75,
            access: vec![NetworkId(0), NetworkId(2)],
        };
        assert_eq!(req.profit(), 2.0);
        assert_eq!(req.height(), 0.75);
        assert!(req.is_wide());
        assert_eq!(req.access().len(), 2);
        assert_eq!(DemandTicket(7).to_string(), "t7");
        let err = ServiceError::UnknownTicket(DemandTicket(7));
        assert!(err.to_string().contains("t7"));
    }
}
