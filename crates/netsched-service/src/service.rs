//! The asynchronous, executor-agnostic frontend.
//!
//! [`Service`] wraps a [`ServiceSession`] behind a submission queue:
//! [`Service::submit`] enqueues a batch of events and returns a
//! [`SubmitFuture`]; whichever future is polled first **drives** one epoch,
//! folding every submission queued so far into a single
//! [`ServiceSession::step`] call and resolving all of their futures with
//! the same shared [`ScheduleDelta`]. Concurrent submitters therefore get
//! automatic batch admission — many submissions, one epoch — without any
//! background thread, timer or executor dependency (the waker/queue
//! machinery is hand-rolled on `std::task`, consistent with the
//! workspace's vendored-shim policy: no tokio).
//!
//! Any executor works: `block_on` (provided here for examples and tests),
//! tokio, async-std, or manual polling. Submissions are validated eagerly
//! inside [`Service::submit`], so a queued batch cannot poison its epoch.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use fxhash::FxHashSet;
use netsched_core::Budget;

use crate::event::{DemandEvent, DemandTicket, ServiceError};
use crate::session::{ScheduleDelta, ServiceSession};

/// How urgently a submission needs its epoch — the tiered admission
/// classes of the degraded-operation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionClass {
    /// Batched into full epochs: the solve runs to full λ-certification
    /// no matter how long it takes. The default, and the right class for
    /// background churn.
    #[default]
    Bulk,
    /// Needs its schedule within the policy's latency budget: any epoch
    /// admitting at least one latency-sensitive submission runs under
    /// [`ServicePolicy::latency_budget`] (via
    /// [`ServiceSession::step_with_deadline`]) and may return a
    /// [`Truncated`](netsched_core::CertificateQuality::Truncated)
    /// certificate; the unfinished work completes in a later bulk epoch.
    LatencySensitive,
}

/// A declarative latency budget, compiled to a [`Budget`] per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetSpec {
    /// No limit — every epoch certifies fully.
    #[default]
    Unlimited,
    /// At most this many first-phase MIS/raise rounds per epoch
    /// (deterministic; what the anytime test suite uses).
    Rounds(u64),
    /// A wall-clock deadline this many milliseconds after the solve
    /// starts.
    Millis(u64),
}

impl BudgetSpec {
    /// Compiles the spec into a fresh [`Budget`] (deadlines start now).
    pub fn to_budget(&self) -> Budget {
        match *self {
            BudgetSpec::Unlimited => Budget::unlimited(),
            BudgetSpec::Rounds(cap) => Budget::rounds(cap),
            BudgetSpec::Millis(ms) => Budget::deadline(Duration::from_millis(ms)),
        }
    }
}

/// Tuning of the async frontend: queue bound and latency budget. The
/// default policy is fully backward compatible — unbounded queue,
/// unlimited budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServicePolicy {
    /// Maximum submissions waiting in the queue (`0` = unbounded). When
    /// the queue is full, [`Service::submit`] returns
    /// [`ServiceError::Overloaded`] with a drain-time estimate instead of
    /// queueing — bounded backpressure instead of unbounded memory.
    pub max_queued: usize,
    /// The budget epochs admitting latency-sensitive submissions run
    /// under; bulk-only epochs always run unlimited.
    pub latency_budget: BudgetSpec,
    /// Run **every** epoch — including unlimited bulk-only ones — through
    /// [`ServiceSession::step_with_deadline`] so a panicking solve is
    /// quarantined instead of poisoning the session. Costs one pre-step
    /// serialization of the session per epoch, so it is opt-in; with the
    /// default `false`, only budgeted epochs (which pay that cost anyway)
    /// get panic isolation and bulk-only epochs take the plain
    /// [`step`](ServiceSession::step) path.
    pub quarantine: bool,
}

/// Outcome delivered to every submission folded into an epoch.
type EpochResult = Result<Arc<ScheduleDelta>, ServiceError>;

enum SlotState {
    Waiting(Option<Waker>),
    Done(EpochResult),
}

/// The per-submission completion slot shared between the queue and the
/// future.
struct Slot {
    state: Mutex<SlotState>,
}

impl Slot {
    fn fill(&self, result: EpochResult) {
        let mut state = self.state.lock().expect("slot lock poisoned");
        if let SlotState::Waiting(waker) = &mut *state {
            let waker = waker.take();
            *state = SlotState::Done(result);
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }
}

struct Pending {
    events: Vec<DemandEvent>,
    class: AdmissionClass,
    slot: Arc<Slot>,
    /// When the submission entered the queue; the drive records the
    /// submit-to-delta latency per admission class from it.
    submitted_at: Instant,
}

struct State {
    session: ServiceSession,
    queue: Vec<Pending>,
    /// Tickets with an expiry already queued (so two queued submissions
    /// cannot both expire the same demand).
    queued_expiries: FxHashSet<u64>,
    policy: ServicePolicy,
}

impl State {
    /// Drains the queue and steps one epoch over the folded batch,
    /// resolving every drained slot with the shared outcome. The epoch
    /// runs under the policy's latency budget when any drained submission
    /// is latency-sensitive (bulk-only epochs certify fully). Budgeted
    /// epochs — and every epoch under a `quarantine: true` policy — go
    /// through [`ServiceSession::step_with_deadline`], so a panicking
    /// solve quarantines the folded batch instead of poisoning the
    /// session; unbudgeted epochs under the default policy take the plain
    /// [`step`](ServiceSession::step) path and skip its per-epoch
    /// pre-step serialization.
    fn drive(&mut self) -> EpochResult {
        let pending: Vec<Pending> = self.queue.drain(..).collect();
        self.queued_expiries.clear();
        // Decrement-by-delta rather than `set(0)`: the registry may be
        // shared across services (`with_obs`), and the gauge must come
        // back to zero on *every* outcome — the drained submissions are
        // dequeued whether the epoch below succeeds, aborts on a journal
        // error, or quarantines.
        self.session
            .obs_registry()
            .gauge("service.queue_depth")
            .add(-(pending.len() as i64));
        let batch: Vec<DemandEvent> = pending
            .iter()
            .flat_map(|p| p.events.iter().cloned())
            .collect();
        let budget = if pending
            .iter()
            .any(|p| p.class == AdmissionClass::LatencySensitive)
        {
            match self.policy.latency_budget {
                // A wall-clock budget goes through the session's online
                // calibration: once primed, the deadline is compiled into
                // a deterministic round cap as well (tightest limit wins).
                BudgetSpec::Millis(ms) => self.session.calibrated_budget(Duration::from_millis(ms)),
                spec => spec.to_budget(),
            }
        } else {
            Budget::unlimited()
        };
        let outcome: EpochResult = if budget.is_limited() || self.policy.quarantine {
            self.session.step_with_deadline(&batch, &budget)
        } else {
            self.session.step(&batch)
        }
        .map(Arc::new);
        let obs = self.session.obs_registry();
        let bulk = obs.histogram("service.latency_bulk_ns");
        let sensitive = obs.histogram("service.latency_sensitive_ns");
        for p in &pending {
            match p.class {
                AdmissionClass::Bulk => bulk.record_duration(p.submitted_at.elapsed()),
                AdmissionClass::LatencySensitive => {
                    sensitive.record_duration(p.submitted_at.elapsed())
                }
            }
            p.slot.fill(outcome.clone());
        }
        outcome
    }
}

/// An async batch-admission scheduler service over a [`ServiceSession`];
/// see the [module docs](self).
pub struct Service {
    state: Arc<Mutex<State>>,
}

impl Service {
    /// Wraps a session under the default (unbounded, unlimited)
    /// [`ServicePolicy`].
    pub fn new(session: ServiceSession) -> Self {
        Self::with_policy(session, ServicePolicy::default())
    }

    /// Wraps a session under an explicit [`ServicePolicy`] — queue bound
    /// (backpressure via [`ServiceError::Overloaded`]) and latency budget
    /// for epochs admitting latency-sensitive submissions.
    pub fn with_policy(session: ServiceSession, policy: ServicePolicy) -> Self {
        Self {
            state: Arc::new(Mutex::new(State {
                session,
                queue: Vec::new(),
                queued_expiries: FxHashSet::default(),
                policy,
            })),
        }
    }

    /// The frontend's policy.
    pub fn policy(&self) -> ServicePolicy {
        self.state.lock().expect("service lock poisoned").policy
    }

    /// Enqueues a batch of events and returns the future of the epoch that
    /// will admit it ([`AdmissionClass::Bulk`]; see
    /// [`submit_with_class`](Service::submit_with_class)). Validation
    /// happens here, eagerly: invalid arrivals, unknown tickets and
    /// expiries already queued by an earlier (unprocessed) submission are
    /// rejected without touching the queue.
    ///
    /// The **whole** batch is validated before rejecting: when several
    /// events are invalid, the error is [`ServiceError::InvalidBatch`]
    /// listing every failure with its event index (a single invalid event
    /// comes back as its bare error), so callers can resubmit precisely
    /// the valid remainder instead of discovering failures one at a time.
    ///
    /// When the policy bounds the queue and it is full, the submission is
    /// rejected with [`ServiceError::Overloaded`] before validation —
    /// backpressure is cheaper than validating work that cannot be
    /// queued.
    pub fn submit(&self, events: Vec<DemandEvent>) -> Result<SubmitFuture, ServiceError> {
        self.submit_with_class(events, AdmissionClass::Bulk)
    }

    /// [`submit`](Service::submit) with an explicit [`AdmissionClass`]:
    /// an epoch that admits at least one latency-sensitive submission
    /// runs under the policy's latency budget and may return a truncated
    /// (but valid) certificate in its delta's `stats.quality`.
    pub fn submit_with_class(
        &self,
        events: Vec<DemandEvent>,
        class: AdmissionClass,
    ) -> Result<SubmitFuture, ServiceError> {
        let mut state = self.state.lock().expect("service lock poisoned");
        if state.policy.max_queued > 0 && state.queue.len() >= state.policy.max_queued {
            state
                .session
                .obs_registry()
                .counter("service.overloaded")
                .inc();
            // Drain-time estimate: every drive folds the *whole* queue
            // into one epoch, so however many submissions are waiting,
            // one epoch drains them all. The hint is exactly 1 — a larger
            // value would make well-behaved clients back off for epochs
            // that will never be needed.
            return Err(ServiceError::Overloaded {
                retry_after_epochs: 1,
            });
        }
        let mut batch_expiries: Vec<u64> = Vec::new();
        let mut failures: Vec<(usize, ServiceError)> = Vec::new();
        for (index, event) in events.iter().enumerate() {
            match event {
                DemandEvent::Arrive(request) => {
                    if let Err(error) = state.session.validate_request(request) {
                        failures.push((index, error));
                    }
                }
                DemandEvent::Expire(ticket) => {
                    if !state.session.is_live(*ticket) {
                        failures.push((index, ServiceError::UnknownTicket(*ticket)));
                    } else if state.queued_expiries.contains(&ticket.0)
                        || batch_expiries.contains(&ticket.0)
                    {
                        failures.push((index, ServiceError::DuplicateExpiry(*ticket)));
                    } else {
                        batch_expiries.push(ticket.0);
                    }
                }
            }
        }
        match failures.len() {
            0 => {}
            1 => return Err(failures.pop().expect("one failure").1),
            _ => return Err(ServiceError::InvalidBatch { failures }),
        }
        state.queued_expiries.extend(batch_expiries);
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Waiting(None)),
        });
        state.queue.push(Pending {
            events,
            class,
            slot: slot.clone(),
            submitted_at: Instant::now(),
        });
        state
            .session
            .obs_registry()
            .gauge("service.queue_depth")
            .add(1);
        Ok(SubmitFuture {
            state: self.state.clone(),
            slot,
        })
    }

    /// Expires a demand; sugar for a one-event submission.
    pub fn expire(&self, ticket: DemandTicket) -> Result<SubmitFuture, ServiceError> {
        self.submit(vec![DemandEvent::Expire(ticket)])
    }

    /// Synchronously drives one epoch over everything queued (an empty
    /// batch if nothing is queued) and returns its delta. Useful for
    /// non-async callers and for forcing a quiescent re-solve.
    pub fn flush(&self) -> EpochResult {
        self.state.lock().expect("service lock poisoned").drive()
    }

    /// Reads the wrapped session under the service lock.
    pub fn with_session<R>(&self, f: impl FnOnce(&ServiceSession) -> R) -> R {
        f(&self.state.lock().expect("service lock poisoned").session)
    }

    /// Number of submissions waiting to be folded into the next epoch.
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .expect("service lock poisoned")
            .queue
            .len()
    }
}

/// The future of one submission's epoch. The first submission polled
/// drives the epoch for everyone queued; the others observe the shared
/// result (their wakers fire if they were polled before completion).
pub struct SubmitFuture {
    state: Arc<Mutex<State>>,
    slot: Arc<Slot>,
}

impl Future for SubmitFuture {
    type Output = EpochResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        {
            let mut slot = self.slot.state.lock().expect("slot lock poisoned");
            match &mut *slot {
                SlotState::Done(result) => return Poll::Ready(result.clone()),
                SlotState::Waiting(waker) => *waker = Some(cx.waker().clone()),
            }
        }
        // Not resolved yet: this poller becomes the driver. Re-check under
        // the service lock (another thread may have driven in between).
        let mut state = self.state.lock().expect("service lock poisoned");
        if let SlotState::Done(result) = &*self.slot.state.lock().expect("slot lock poisoned") {
            return Poll::Ready(result.clone());
        }
        // The epoch outcome reaches this future through its slot below.
        let _ = state.drive();
        let slot = self.slot.state.lock().expect("slot lock poisoned");
        match &*slot {
            SlotState::Done(result) => Poll::Ready(result.clone()),
            SlotState::Waiting(_) => unreachable!("drive resolves every queued slot"),
        }
    }
}

/// Minimal single-future executor: polls to completion, parking the thread
/// between wake-ups. Enough to drive [`SubmitFuture`]s from synchronous
/// code (examples, benches, tests) without an async runtime.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DemandRequest;
    use crate::session::ServiceSession;
    use netsched_core::AlgorithmConfig;
    use netsched_graph::{LineProblem, NetworkId};

    fn service() -> Service {
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        Service::new(ServiceSession::for_line(
            &problem,
            AlgorithmConfig::deterministic(0.1),
        ))
    }

    fn valid_arrival() -> DemandEvent {
        DemandEvent::Arrive(DemandRequest::Line {
            release: 2,
            deadline: 12,
            processing: 3,
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })
    }

    fn invalid_arrival() -> DemandEvent {
        DemandEvent::Arrive(DemandRequest::Line {
            release: 9,
            deadline: 3,
            processing: 2,
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })
    }

    #[test]
    fn submit_reports_every_invalid_event_of_a_batch() {
        let service = service();
        // Three failures of three different kinds, interleaved with valid
        // events: all of them must come back, each with its batch index.
        let batch = vec![
            valid_arrival(),
            invalid_arrival(),
            DemandEvent::Expire(DemandTicket(u64::MAX)),
            valid_arrival(),
            DemandEvent::Expire(DemandTicket(0)),
            DemandEvent::Expire(DemandTicket(0)),
        ];
        let err = match service.submit(batch) {
            Err(err) => err,
            Ok(_) => panic!("invalid batch accepted"),
        };
        match &err {
            ServiceError::InvalidBatch { failures } => {
                let indices: Vec<usize> = failures.iter().map(|(i, _)| *i).collect();
                assert_eq!(indices, vec![1, 2, 5]);
                assert!(matches!(failures[0].1, ServiceError::InvalidDemand(_)));
                assert!(matches!(
                    failures[1].1,
                    ServiceError::UnknownTicket(DemandTicket(u64::MAX))
                ));
                assert!(matches!(
                    failures[2].1,
                    ServiceError::DuplicateExpiry(DemandTicket(0))
                ));
            }
            other => panic!("expected InvalidBatch, got {other}"),
        }
        let message = err.to_string();
        assert!(message.contains("#1:"), "{message}");
        assert!(message.contains("#2:"), "{message}");
        assert!(message.contains("#5:"), "{message}");
        // Nothing was queued: the valid remainder resubmits cleanly.
        assert_eq!(service.queued(), 0);
        assert!(service
            .submit(vec![valid_arrival(), DemandEvent::Expire(DemandTicket(0))])
            .is_ok());
    }

    #[test]
    fn quarantine_policy_isolates_a_panicking_solve() {
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
        session.inject_solve_panics(vec![1]);
        let service = Service::with_policy(
            session,
            ServicePolicy {
                quarantine: true,
                ..ServicePolicy::default()
            },
        );
        service.submit(vec![valid_arrival()]).unwrap();
        match service.flush() {
            Err(ServiceError::Quarantined { .. }) => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The session survived the poisoned batch: it still answers
        // queries and accepts new submissions (the armed fault stays
        // armed, so the next epoch would quarantine again — the point is
        // the service is degraded, not down).
        assert_eq!(service.with_session(|s| s.epoch()), 0);
        assert!(service.submit(vec![valid_arrival()]).is_ok());
    }

    #[test]
    fn default_policy_drives_unbudgeted_epochs_without_isolation() {
        // The default policy takes the plain `step` path for bulk-only
        // epochs — no pre-step snapshot, so an armed panic propagates
        // instead of being quarantined.
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
        session.inject_solve_panics(vec![1]);
        let service = Service::new(session);
        service.submit(vec![valid_arrival()]).unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.flush()));
        assert!(outcome.is_err(), "plain step must not swallow the panic");
    }

    #[test]
    fn overloaded_hints_one_epoch_because_drives_fold_the_whole_queue() {
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        let service = Service::with_policy(
            ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1)),
            ServicePolicy {
                max_queued: 2,
                ..ServicePolicy::default()
            },
        );
        let _a = service.submit(vec![valid_arrival()]).unwrap();
        let _b = service.submit(vec![valid_arrival()]).unwrap();
        match service.submit(vec![valid_arrival()]) {
            Err(ServiceError::Overloaded { retry_after_epochs }) => {
                // One drive folds every queued submission into one epoch,
                // so the queue drains in exactly one epoch no matter how
                // full it is (the old estimate said 2+ here).
                assert_eq!(retry_after_epochs, 1);
            }
            Err(other) => panic!("expected Overloaded, got {other:?}"),
            Ok(_) => panic!("full queue accepted a submission"),
        }
        // And indeed a single flush drains the whole queue.
        service.flush().unwrap();
        assert_eq!(service.queued(), 0);
        assert!(service.submit(vec![valid_arrival()]).is_ok());
    }

    #[test]
    fn queue_depth_gauge_returns_to_zero_on_every_dequeue_path() {
        let depth = |service: &Service| {
            service.with_session(|s| {
                s.obs_registry()
                    .snapshot()
                    .gauge("service.queue_depth")
                    .unwrap_or(0)
            })
        };

        // Success path.
        let service = service();
        service.submit(vec![valid_arrival()]).unwrap();
        service.submit(vec![valid_arrival()]).unwrap();
        assert_eq!(depth(&service), 2);
        service.flush().unwrap();
        assert_eq!(depth(&service), 0);

        // Rejected submissions (InvalidBatch and bare errors) never touch
        // the gauge.
        assert!(service
            .submit(vec![invalid_arrival(), invalid_arrival()])
            .is_err());
        assert_eq!(depth(&service), 0);

        // Journal-abort path: the step fails with the session unchanged,
        // but the drained submissions are still dequeued.
        struct RefusingJournal;
        impl crate::session::EpochJournal for RefusingJournal {
            fn record(&mut self, _epoch: u64, _batch: &[DemandEvent]) -> Result<(), String> {
                Err("disk on fire".into())
            }
        }
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
        session.attach_journal(Box::new(RefusingJournal));
        let service = Service::new(session);
        service.submit(vec![valid_arrival()]).unwrap();
        assert_eq!(depth(&service), 1);
        assert!(matches!(service.flush(), Err(ServiceError::Journal(_))));
        assert_eq!(depth(&service), 0);

        // Quarantine path: the epoch rolls back, the dequeue still counts.
        let mut problem = LineProblem::new(20, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
        session.inject_solve_panics(vec![1]);
        let service = Service::with_policy(
            session,
            ServicePolicy {
                quarantine: true,
                ..ServicePolicy::default()
            },
        );
        service.submit(vec![valid_arrival()]).unwrap();
        assert_eq!(depth(&service), 1);
        assert!(matches!(
            service.flush(),
            Err(ServiceError::Quarantined { .. })
        ));
        assert_eq!(depth(&service), 0);
    }

    #[test]
    fn single_failures_keep_their_bare_error() {
        let service = service();
        let err = match service.submit(vec![valid_arrival(), invalid_arrival()]) {
            Err(err) => err,
            Ok(_) => panic!("invalid batch accepted"),
        };
        assert!(
            matches!(err, ServiceError::InvalidDemand(_)),
            "a lone failure is not wrapped: {err}"
        );
    }
}
