//! The pipelined serving frontend: a dedicated writer thread driving
//! epochs while callers submit without blocking and readers observe the
//! published schedule wait-free.
//!
//! [`PipelinedService`] moves a [`ServiceSession`] onto a worker thread.
//! Submissions cross a channel and resolve through per-submission reply
//! handles; the worker steps **one epoch per submission**, in order, and
//! uses its queue lookahead to [announce](ServiceSession::prefetch_arrivals)
//! the *next* submission's arrivals before stepping the current one — so
//! the next epoch's splice inputs materialize on a scoped thread while the
//! current epoch's phase-2 replay runs. Readers never talk to the worker
//! at all: they hold [`ScheduleReader`]s on the session's
//! [`ScheduleView`], published at the end of every successful epoch.
//!
//! Sequenced identically (one submission per step, same batches), a
//! pipelined service produces bit-identical deltas to calling
//! [`ServiceSession::step`] directly — prefetching and publication change
//! *when* work happens, never what is computed. `tests/concurrent_serving.rs`
//! pins this.
//!
//! Backpressure is a live depth counter instead of a queue scan: when
//! [`ServicePolicy::max_queued`] is set and the counter is at the bound,
//! [`PipelinedService::submit`] fails fast with
//! [`ServiceError::Overloaded`] hinting the current depth in epochs (each
//! queued submission is one epoch here, unlike [`Service`](crate::Service)
//! which folds its queue).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::event::{DemandEvent, DemandRequest, ServiceError};
use crate::service::{BudgetSpec, ServicePolicy};
use crate::session::{ScheduleDelta, ServiceSession};
use crate::view::{ScheduleReader, ScheduleView};

/// The reply side of one submission's result channel.
type ReplyTx = mpsc::Sender<Result<ScheduleDelta, ServiceError>>;

enum Msg {
    Submit {
        batch: Vec<DemandEvent>,
        reply: ReplyTx,
    },
    Shutdown,
}

/// The pending result of one pipelined submission; resolve it with
/// [`wait`](DeltaHandle::wait).
pub struct DeltaHandle {
    rx: mpsc::Receiver<Result<ScheduleDelta, ServiceError>>,
}

impl DeltaHandle {
    /// Blocks until the submission's epoch has run and returns its delta.
    /// Validation happens on the worker inside the step, so invalid
    /// batches surface here, not at submit time.
    pub fn wait(self) -> Result<ScheduleDelta, ServiceError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(ServiceError::Quarantined {
                reason: "pipeline worker exited before resolving the submission".into(),
            })
        })
    }

    /// Non-blocking probe: the delta if the epoch already ran.
    pub fn try_wait(&self) -> Option<Result<ScheduleDelta, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// A [`ServiceSession`] behind a writer thread; see the
/// [module docs](self).
pub struct PipelinedService {
    tx: mpsc::Sender<Msg>,
    view: ScheduleView,
    depth: Arc<AtomicUsize>,
    policy: ServicePolicy,
    worker: Option<std::thread::JoinHandle<ServiceSession>>,
}

impl PipelinedService {
    /// Moves the session onto a worker thread under `policy`
    /// (`max_queued` bounds the submission channel; `latency_budget` and
    /// `quarantine` select the step path exactly as
    /// [`Service`](crate::Service) does — every submission here is
    /// treated as latency-sensitive when a budget is configured).
    pub fn with_policy(mut session: ServiceSession, policy: ServicePolicy) -> Self {
        let view = session.schedule_view();
        let depth = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<Msg>();
        let worker_depth = depth.clone();
        let worker = std::thread::Builder::new()
            .name("netsched-pipeline".into())
            .spawn(move || worker_loop(session, rx, worker_depth, policy))
            .expect("spawn pipeline worker");
        Self {
            tx,
            view,
            depth,
            policy,
            worker: Some(worker),
        }
    }

    /// [`with_policy`](PipelinedService::with_policy) under the default
    /// (unbounded, unlimited) policy.
    pub fn new(session: ServiceSession) -> Self {
        Self::with_policy(session, ServicePolicy::default())
    }

    /// The session's publication point; clone readers off it freely.
    pub fn view(&self) -> ScheduleView {
        self.view.clone()
    }

    /// A new wait-free reader of the published schedule.
    pub fn reader(&self) -> ScheduleReader {
        self.view.reader()
    }

    /// Submissions accepted but not yet stepped.
    pub fn queued(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Enqueues one batch as its own epoch and returns its result handle.
    /// Fails fast with [`ServiceError::Overloaded`] when the policy
    /// bounds the queue and it is full — the hint is the current depth,
    /// since the worker steps one epoch per queued submission.
    pub fn submit(&self, batch: Vec<DemandEvent>) -> Result<DeltaHandle, ServiceError> {
        if self.policy.max_queued > 0 {
            let queued = self.depth.load(Ordering::Acquire);
            if queued >= self.policy.max_queued {
                return Err(ServiceError::Overloaded {
                    retry_after_epochs: queued as u64,
                });
            }
        }
        self.depth.fetch_add(1, Ordering::AcqRel);
        let (reply, rx) = mpsc::channel();
        if self.tx.send(Msg::Submit { batch, reply }).is_err() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(ServiceError::Quarantined {
                reason: "pipeline worker is gone".into(),
            });
        }
        Ok(DeltaHandle { rx })
    }

    /// Stops the worker and returns the session (drains every submission
    /// already accepted first).
    pub fn shutdown(mut self) -> ServiceSession {
        self.shutdown_inner()
            .expect("shutdown on a live pipeline returns the session")
    }

    fn shutdown_inner(&mut self) -> Option<ServiceSession> {
        let worker = self.worker.take()?;
        let _ = self.tx.send(Msg::Shutdown);
        Some(worker.join().expect("pipeline worker panicked"))
    }
}

impl Drop for PipelinedService {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// The arrivals of a batch, in event order — what
/// [`ServiceSession::prefetch_arrivals`] wants announced.
fn arrivals_of(batch: &[DemandEvent]) -> Vec<DemandRequest> {
    batch
        .iter()
        .filter_map(|event| match event {
            DemandEvent::Arrive(request) => Some(request.clone()),
            DemandEvent::Expire(_) => None,
        })
        .collect()
}

fn worker_loop(
    mut session: ServiceSession,
    rx: mpsc::Receiver<Msg>,
    depth: Arc<AtomicUsize>,
    policy: ServicePolicy,
) -> ServiceSession {
    let mut queue: VecDeque<(Vec<DemandEvent>, ReplyTx)> = VecDeque::new();
    loop {
        // Refill: block for the first message only when nothing is queued,
        // then drain whatever else has arrived — the lookahead that feeds
        // the prefetch.
        if queue.is_empty() {
            match rx.recv() {
                Ok(Msg::Submit { batch, reply }) => queue.push_back((batch, reply)),
                Ok(Msg::Shutdown) | Err(_) => return session,
            }
        }
        let mut shutdown = false;
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Submit { batch, reply } => queue.push_back((batch, reply)),
                Msg::Shutdown => {
                    // Drain what was accepted, then exit.
                    shutdown = true;
                    break;
                }
            }
        }
        while let Some((batch, reply)) = queue.pop_front() {
            // Announce the *next* submission's arrivals so their splice
            // inputs materialize during this step's phase-2 replay. A
            // failed announcement is fine — that batch will report its
            // own validation error when its step runs.
            if let Some((next_batch, _)) = queue.front() {
                let upcoming = arrivals_of(next_batch);
                if !upcoming.is_empty() {
                    let _ = session.prefetch_arrivals(&upcoming);
                }
            }
            let budget = match policy.latency_budget {
                BudgetSpec::Millis(ms) => session.calibrated_budget(Duration::from_millis(ms)),
                spec => spec.to_budget(),
            };
            let result = if budget.is_limited() || policy.quarantine {
                session.step_with_deadline(&batch, &budget)
            } else {
                session.step(&batch)
            };
            depth.fetch_sub(1, Ordering::AcqRel);
            let _ = reply.send(result);
        }
        if shutdown {
            return session;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::AlgorithmConfig;
    use netsched_graph::{LineProblem, NetworkId};

    fn arrival(release: u32) -> DemandEvent {
        DemandEvent::Arrive(DemandRequest::Line {
            release,
            deadline: release + 8,
            processing: 3,
            profit: 2.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })
    }

    fn session() -> ServiceSession {
        let mut problem = LineProblem::new(40, 2);
        problem
            .add_demand(0, 9, 4, 3.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1))
    }

    #[test]
    fn submissions_step_in_order_and_publish() {
        let service = PipelinedService::new(session());
        let mut reader = service.reader();
        let handles: Vec<DeltaHandle> = (0..4)
            .map(|i| service.submit(vec![arrival(2 * i)]).unwrap())
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let delta = handle.wait().unwrap();
            assert_eq!(delta.epoch, i as u64 + 1);
        }
        let session = service.shutdown();
        assert_eq!(session.epoch(), 4);
        let snap = reader.read();
        assert_eq!(snap.epoch(), 4, "shutdown drained, last epoch published");
        assert!(snap.verify_fingerprint());
        assert!((snap.profit() - session.profit()).abs() < 1e-12);
        assert_eq!(snap.schedule(), session.schedule());
    }

    #[test]
    fn invalid_batches_fail_through_the_handle_without_stopping_the_worker() {
        let service = PipelinedService::new(session());
        let bad = service
            .submit(vec![DemandEvent::Arrive(DemandRequest::Line {
                release: 9,
                deadline: 3,
                processing: 2,
                profit: 1.0,
                height: 1.0,
                access: vec![NetworkId::new(0)],
            })])
            .unwrap();
        let good = service.submit(vec![arrival(0)]).unwrap();
        assert!(matches!(bad.wait(), Err(ServiceError::InvalidDemand(_))));
        assert_eq!(good.wait().unwrap().epoch, 1);
    }

    #[test]
    fn bounded_queue_fails_fast_with_depth_hint() {
        // An impossible-to-drain queue bound of 0 is "unbounded", so use 1
        // and keep the worker busy by never letting it start: saturate
        // with more submissions than the bound from this single thread —
        // the worker may or may not have drained some, so only the error
        // shape is asserted, against a bound the test can force.
        let service = PipelinedService::with_policy(
            session(),
            ServicePolicy {
                max_queued: 1,
                ..ServicePolicy::default()
            },
        );
        let mut overloaded = None;
        let mut handles = Vec::new();
        for i in 0..64 {
            match service.submit(vec![arrival(i % 30)]) {
                Ok(h) => handles.push(h),
                Err(e) => {
                    overloaded = Some(e);
                    break;
                }
            }
        }
        if let Some(err) = overloaded {
            match err {
                ServiceError::Overloaded { retry_after_epochs } => {
                    assert!(retry_after_epochs >= 1);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        for h in handles {
            let _ = h.wait();
        }
    }
}
