//! Dynamic serving subsystem for `netsched`: incremental per-shard rebuild
//! plus an async batch-admission scheduler service.
//!
//! The paper's framework assumes a static demand set; production traffic
//! does not. This crate turns the cached one-shot
//! [`Scheduler`](netsched_core::Scheduler) session into a **long-lived
//! service**: demands arrive and expire over time, and every *epoch* pays
//! only for the shards the batch actually touched.
//!
//! # Epoch model
//!
//! A [`ServiceSession`] owns a mutable solving state — the live demand set,
//! the demand-instance universe, the sharded conflict graph, the layerings
//! and (lazily) the wide/narrow split. [`ServiceSession::step`] admits one
//! batch of [`DemandEvent`]s:
//!
//! 1. **Validate** the batch (all-or-nothing; a failed batch leaves the
//!    session untouched).
//! 2. **Splice** the universe: expired instances compact out, arriving
//!    instances append — ids renumber exactly as a from-scratch build over
//!    the surviving set would number them.
//! 3. **Rebuild only the dirty shards**: the conflict engine re-sweeps the
//!    local CSRs of the networks that gained or lost instances
//!    (shard-parallel) and re-assembles the cross-shard same-demand rows;
//!    clean shards are renumbered in `O(shard)` with no sort or sweep.
//! 4. **Re-layer** incrementally: tree assignments are per-instance and
//!    position-independent (only arrivals pay the `O(path)` cost); line
//!    length classes re-derive in `O(|D|)` arithmetic.
//! 5. **Re-solve** with the existing shard-parallel two-phase engine and
//!    emit a [`ScheduleDelta`] — admissions, evictions, reassignments and
//!    the updated dual certificate — instead of a full schedule.
//!
//! # Delta semantics
//!
//! Deltas speak **tickets** ([`DemandTicket`]), the stable external
//! identity of a demand; dense `DemandId`s renumber across epochs and never
//! leak. `admitted` lists demands newly scheduled, `evicted` lists live
//! demands that lost their slot (expired demands are not re-reported), and
//! `reassigned` lists demands whose network/start moved. Every delta
//! carries the dual certificate of the *current* live set: the scaled dual
//! objective remains a machine-checked optimum upper bound epoch after
//! epoch.
//!
//! # Warm vs Cold re-solve
//!
//! Rebuilding the caches incrementally left one from-scratch cost on the
//! epoch path: the engine solve itself, re-run from zero duals every
//! epoch. [`ResolveMode`] makes that a choice:
//!
//! * **[`ResolveMode::Cold`]** (the default) re-solves from zero. The
//!   session is **byte-equivalent** to a fresh
//!   [`Scheduler`](netsched_core::Scheduler): schedule, certificate and
//!   merged conflict CSR match bit for bit (`tests/dynamic_equivalence.rs`
//!   pins this, including for warm-capable sessions pinned to Cold).
//! * **[`ResolveMode::Warm`]** resumes from a persisted
//!   [`WarmState`](netsched_core::WarmState): expired demands' dual
//!   contributions are point-cleared out of the Fenwick trees, clean
//!   shards keep their `β`/`α` values and are not re-scanned, and the
//!   MIS/raise loop repairs only the dirty shards until the certificate
//!   verifies again. The contract deliberately relaxes to
//!   **certificate-equivalence**: the schedule may differ from a cold
//!   solve, but every epoch must carry a verifying dual certificate
//!   (`λ ≥ 1 − ε`, feasible schedule) with a certified ratio within the
//!   solver's worst-case guarantee — checked in-engine (debug builds
//!   assert; release builds fall back to a from-zero re-solve when the
//!   repaired certificate fails to verify). `tests/warm_equivalence.rs`
//!   replays every churn trace through both paths and enforces the
//!   relaxed contract epoch by epoch.
//!
//! Pick **Warm** for serving tiers (the solve is 60–85% of an incremental
//! epoch; `BENCH_warm_resolve.json` records the resulting epoch speedups)
//! and **Cold** whenever downstream consumers diff schedules against a
//! reference solver. Sessions default to Cold; the
//! `NETSCHED_RESOLVE_MODE` environment variable (`warm` / `cold`) flips
//! the default for deployments and the CI matrix, and
//! [`ServiceSession::with_resolve_mode`] pins a session explicitly.
//!
//! # Correctness anchor
//!
//! After **any** event sequence, a **Cold** session's conflict graph
//! is byte-identical to — and its schedule and certificate equal to — a
//! from-scratch [`Scheduler`](netsched_core::Scheduler) built over the same
//! surviving demand set, at every thread count
//! (`tests/dynamic_equivalence.rs`). Warm sessions keep the incremental
//! structures byte-identical (the splices are mode-independent) and
//! relax only the solve, as above.
//!
//! # Amortized epoch cost
//!
//! With `|D|` live instances, `r` shards, `k` dirty shards and `B` the
//! batch's instances:
//!
//! | stage | from-scratch rebuild | incremental epoch |
//! |---|---|---|
//! | universe | `O(|D| log n)` path construction | `O(|D| + B log n)` splice |
//! | shard partition | `O(|D| log |D|)` sort | clean shards `O(|D|)` renumber, dirty re-sort |
//! | conflict CSRs | every shard sweeps | only `k` dirty shards sweep |
//! | cross-shard rows | full clique scan | full clique scan (renumbered) |
//! | tree layering | `O(|D| log n)` assignment + decompositions | decompositions cached; `O(B log n)` new assignments |
//! | line layering | `O(|D|)` | `O(|D|)` |
//! | solve | shard-parallel engine | identical engine |
//!
//! `BENCH_dynamic_serving.json` (from the `dynamic_serving` bench) records
//! the resulting epoch speedups over from-scratch rebuilds across churn
//! rates.
//!
//! # Durability & recovery
//!
//! Sessions are in-memory; the durable serving tier lives in
//! `netsched-persist` and hooks in through three session surfaces:
//!
//! * **Write-ahead journal** — an attached [`EpochJournal`] receives every
//!   validated batch (with the epoch it advances the session to) *before*
//!   any state mutates; a journal error aborts the step with the session
//!   unchanged. The persistence crate records batches as framed,
//!   CRC-checksummed JSON records and offers fsync policies from "never"
//!   to "every batch".
//! * **Snapshots** — [`ServiceSession::snapshot`] serializes the full
//!   session (base topology, live ticket table, schedule, certificate,
//!   per-core [`WarmState`](netsched_core::WarmState)s) behind a versioned
//!   header; [`ServiceSession::compact`] runs first, dropping stale split
//!   cores and oversized warm replay stacks so snapshots don't grow
//!   without bound. Snapshot cadence trades write amplification against
//!   recovery time: frequent snapshots shorten the log suffix a restore
//!   must replay, sparse snapshots make epochs cheaper but recovery
//!   longer.
//! * **Restore** — [`ServiceSession::from_snapshot`] rebuilds every
//!   derived structure through the normal constructors and re-applies the
//!   logged suffix through the normal [`step`](ServiceSession::step) path.
//!   The recovered session therefore inherits the session's own
//!   equivalence contract: **Cold** restores are byte-identical to the
//!   uninterrupted run (schedule, certificate, merged conflict CSR);
//!   **Warm** restores are certificate-equivalent (every replayed epoch
//!   re-certifies `λ ≥ 1 − ε` within the worst-case ratio). The
//!   kill-and-recover suite (`tests/durability_recovery.rs`) pins both,
//!   at 1/2/4 threads.
//!
//! # Degraded modes & fault model
//!
//! The serving tier is built to degrade, not to fall over. Three
//! mechanisms cover the three ways an epoch can go wrong:
//!
//! * **Deadlines (anytime admission)** — λ-certification is *monotone*
//!   over the engine's raise loop, so a solve can stop at a latency
//!   budget and still emit a feasible schedule with a **valid** (weaker)
//!   optimum bound. [`ServiceSession::step_with_deadline`] threads a
//!   cooperative [`Budget`](netsched_core::Budget) (round cap, wall-clock
//!   deadline or cancellation flag) into the engine; a cut epoch's
//!   `stats.quality` is
//!   [`Truncated`](netsched_core::CertificateQuality::Truncated) and the
//!   unfinished certification work stays pending in the session — the
//!   next un-budgeted epoch (even an empty batch) finishes it. Tune the
//!   budget to the epoch latency you can afford: round caps are
//!   deterministic and testable, millisecond deadlines track wall-clock
//!   SLOs. Under [`AdmissionClass`], latency-sensitive submissions get
//!   the budgeted path while bulk submissions batch into full epochs.
//! * **Backpressure** — a [`ServicePolicy`] with `max_queued > 0` bounds
//!   the async frontend's submission queue; a full queue rejects with
//!   [`ServiceError::Overloaded`]`{ retry_after_epochs }` instead of
//!   growing without bound. Clients should back off at least the hinted
//!   number of epochs.
//! * **Quarantine** — [`ServiceSession::step_with_deadline`] runs the
//!   epoch under `catch_unwind`; a panicking solve restores the session
//!   from its pre-step snapshot, appends a rollback tombstone to any
//!   attached journal (so crash recovery never resurrects the poisoned
//!   batch) and returns [`ServiceError::Quarantined`] naming the panic.
//!   The session stays fully operational; only the offending batch is
//!   lost. The pre-step snapshot costs one serialization of the session
//!   per epoch, so the async frontend applies it only to budgeted epochs
//!   unless [`ServicePolicy::quarantine`] opts every epoch in.
//!
//! Durability degrades independently in `netsched-persist`: injected or
//! real fsync failures retry with backoff and then **downgrade** the
//! effective durability (`Batch → Epoch → None`) rather than failing the
//! epoch, with the downgrade visible in the operator-facing health state.
//! See the `netsched-persist` crate docs for the degrade ladder.
//!
//! # Observability
//!
//! Every session records into a per-session
//! [`ObsRegistry`](netsched_obs::ObsRegistry) (share one across sessions
//! with [`ServiceSession::with_obs`]; read it with
//! [`ServiceSession::obs_registry`]). Recording is a few relaxed atomics —
//! no locks, no allocations on the epoch path (pinned by the root
//! `alloc_regression` suite). Snapshot the registry for a
//! [`MetricsReport`](netsched_obs::MetricsReport) with exact counts and
//! p50/p95/p99/max latencies, exportable as JSON or Prometheus text.
//!
//! The metric catalogue:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `epoch.step_ns` | histogram | whole `step` call (admission latency) |
//! | `epoch.validate_ns` | histogram | batch validation + partitioning |
//! | `epoch.journal_ns` | histogram | write-ahead journal record |
//! | `epoch.splice_ns` | histogram | universe/layering/warm/split splices |
//! | `epoch.conflict_rebuild_ns` | histogram | dirty conflict-shard rebuilds |
//! | `epoch.solve_ns` | histogram | two-phase engine solve |
//! | `epoch.delta_emit_ns` | histogram | schedule diff + delta assembly |
//! | `epoch.count` | counter | epochs stepped |
//! | `epoch.quarantined` | counter | batches rolled back by quarantine |
//! | `engine.mis_rounds` | counter | first-phase MIS/raise rounds |
//! | `engine.raises` | counter | dual raises performed |
//! | `engine.truncated_epochs` | counter | budget-cut epochs |
//! | `service.queue_depth` | gauge | submissions waiting in the frontend |
//! | `service.overloaded` | counter | submissions rejected by backpressure |
//! | `service.latency_bulk_ns` | histogram | submit→delta, bulk class |
//! | `service.latency_sensitive_ns` | histogram | submit→delta, latency-sensitive |
//! | `read.count` | counter | wait-free snapshot reads served |
//! | `read.staleness_epochs` | histogram | per-read lag behind the in-flight epoch (≤ 1) |
//! | `read.refresh_wait_ns` | histogram | reader refresh contention (slot lock + `Arc` clone) |
//! | `pipeline.prefetch_hits` | counter | epochs that consumed a pre-materialized batch |
//!
//! A snapshot exports in the Prometheus text exposition format, names
//! prefixed `netsched_` and sanitized to the exposition charset
//! (`epoch.step_ns` → `netsched_epoch_step_ns`, values in nanoseconds):
//!
//! ```text
//! # TYPE netsched_epoch_count counter
//! netsched_epoch_count 64
//! # TYPE netsched_epoch_step_ns summary
//! netsched_epoch_step_ns{quantile="0.5"} 268435455
//! netsched_epoch_step_ns{quantile="0.95"} 402653183
//! netsched_epoch_step_ns{quantile="0.99"} 421700980
//! netsched_epoch_step_ns_sum 17044316156
//! netsched_epoch_step_ns_count 64
//! netsched_epoch_step_ns_max 421700980
//! ```
//!
//! The phase histograms tile the step: `splice + conflict_rebuild` equals
//! the delta's `stats.rebuild_seconds` and `solve_ns` equals
//! `stats.solve_seconds` (same clock reads). Span tracing
//! (`NETSCHED_OBS=on` or [`netsched_obs::set_tracing`]) additionally
//! records `epoch.step` → `epoch.rebuild` / `epoch.solve` regions into
//! the flight-recorder ring; disabled spans cost one atomic load.
//!
//! Epoch solves also feed an online
//! [`RoundCalibration`](netsched_core::RoundCalibration) (EWMA of engine
//! seconds-per-round), which
//! [`ServiceSession::calibrated_budget`] uses to compile wall-clock
//! deadlines ([`BudgetSpec::Millis`]) into deterministic round caps.
//!
//! # Pipelined serving & read consistency
//!
//! Epoch steps mutate the session; serving reads must not wait for them.
//! The pipelined tier separates the two:
//!
//! * **Publication point** — [`ServiceSession::schedule_view`] attaches a
//!   [`ScheduleView`]: every successful epoch ends by publishing an
//!   immutable [`ScheduleSnapshot`] (schedule + certificate + profit +
//!   quality, one `Arc`), and [`ScheduleReader`]s observe it with **one
//!   atomic load** on the steady path — no lock, no allocation, no
//!   waiting on the write side. Readers can never see a torn or
//!   uncertified schedule: a snapshot is fully built before the view's
//!   epoch stamp advances, and carries a fingerprint over every field
//!   ([`ScheduleSnapshot::verify_fingerprint`]) so the stress suite
//!   proves it rather than assumes it.
//! * **Staleness contract** — a reader lags the in-flight epoch by **at
//!   most one**: while a step is between its journal write and its
//!   publication the last *certified* snapshot stays readable (staleness
//!   exactly 1); outside that window staleness is 0. A quarantined epoch
//!   never publishes — the rollback clears the in-flight bit and readers
//!   continue on the last certified snapshot, so panic isolation and the
//!   read path compose without coordination. `read.staleness_epochs`
//!   records the observed distribution; its max is pinned ≤ 1.
//! * **Pipelining** — [`ServiceSession::prefetch_arrivals`] announces the
//!   next epoch's arrivals so their splice inputs (instance paths, tree
//!   layering assignments) materialize on a scoped thread **overlapped
//!   with the current epoch's phase-2 replay**, which only pops the
//!   frozen MIS stack. [`PipelinedService`] wires this up end to end: a
//!   writer thread steps one submission per epoch and uses its queue
//!   lookahead to feed the prefetch, while readers hold
//!   [`ScheduleReader`]s. Prefetching never changes results — schedules,
//!   certificates and deltas are bit-identical with it on or off
//!   (`tests/concurrent_serving.rs` pins both properties, and the
//!   `concurrent_serving` bench measures read throughput and staleness
//!   against a lock-the-session baseline).
//!
//! Sessions that never call [`ServiceSession::schedule_view`] pay nothing:
//! the view is lazy and the single-threaded step path is unchanged bit
//! for bit.
//!
//! # Async frontend
//!
//! [`Service`] wraps a session behind a submission queue with hand-rolled
//! waker plumbing (no tokio): [`Service::submit`] returns a future, and
//! concurrent submissions are folded into **one** epoch by whichever
//! future polls first — batch admission for free. [`block_on`] is provided
//! for executor-less callers.
//!
//! ```
//! use netsched_core::AlgorithmConfig;
//! use netsched_graph::{TreeProblem, VertexId};
//! use netsched_service::{block_on, DemandEvent, DemandRequest, Service, ServiceSession};
//!
//! let mut problem = TreeProblem::new(4);
//! let t = problem.add_network(vec![
//!     (VertexId(0), VertexId(1)),
//!     (VertexId(1), VertexId(2)),
//!     (VertexId(2), VertexId(3)),
//! ]).unwrap();
//! problem.add_unit_demand(VertexId(0), VertexId(2), 3.0, vec![t]).unwrap();
//!
//! let service = Service::new(ServiceSession::for_tree(
//!     &problem,
//!     AlgorithmConfig::deterministic(0.1),
//! ));
//! // Two concurrent submissions fold into a single epoch.
//! let a = service.submit(vec![DemandEvent::Arrive(DemandRequest::Tree {
//!     u: VertexId(1), v: VertexId(3), profit: 2.0, height: 1.0, access: vec![t],
//! })]).unwrap();
//! let b = service.submit(vec![]).unwrap();
//! let delta = block_on(a).unwrap();
//! assert_eq!(delta.epoch, 1);
//! assert_eq!(block_on(b).unwrap().epoch, 1); // same epoch, shared delta
//! assert!(!delta.admitted.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod core;
pub mod event;
pub mod pipeline;
pub mod replay;
pub mod service;
pub mod session;
pub mod snapshot;
pub mod view;

pub use event::{DemandEvent, DemandRequest, DemandTicket, ServiceError};
pub use pipeline::PipelinedService;
pub use replay::replay_trace;
pub use service::{block_on, AdmissionClass, BudgetSpec, Service, ServicePolicy, SubmitFuture};
pub use session::{
    Certificate, CompactionReport, EpochJournal, EpochStats, MemoryFootprint, Placement,
    ResolveMode, ScheduleDelta, ScheduledDemand, ServiceSession,
};
pub use snapshot::{
    parse_wal_record, wal_record, wal_rollback_record, WalRecord, SNAPSHOT_FORMAT_VERSION,
};
pub use view::{ScheduleReader, ScheduleSnapshot, ScheduleView};
