//! Wait-free, epoch-stamped read access to the last certified schedule.
//!
//! [`ScheduleView`] is the **publication point** of the pipelined serving
//! tier: after every successful epoch the session publishes an immutable
//! [`ScheduleSnapshot`] (schedule, certificate, profit, quality — all
//! behind one `Arc`), and any number of [`ScheduleReader`]s observe it
//! without ever waiting on the write side.
//!
//! # Read-path cost model
//!
//! The view packs its coordination state into a **single `AtomicU64`
//! stamp**: `published_epoch << 1 | in_flight_bit`. A steady-state read
//! ([`ScheduleReader::read`]) is one atomic load and a comparison against
//! the reader's cached `Arc` — no lock, no allocation, no reference-count
//! traffic. Only when the stamp's epoch differs from the cached snapshot
//! does the reader take a brief mutex to clone the new `Arc` (once per
//! epoch per reader — the `read.refresh_wait_ns` contention histogram
//! records exactly this). Torn reads are impossible by construction:
//! every field a reader can see lives inside one immutable snapshot that
//! was fully built before the stamp advanced, and the snapshot carries a
//! [fingerprint](ScheduleSnapshot::verify_fingerprint) over all of its
//! fields so the stress suite can prove it.
//!
//! # Staleness contract
//!
//! A reader always observes the **latest published** snapshot, which is
//! the last *certified* schedule; while the writer is mid-epoch (the
//! stamp's in-flight bit is set) that snapshot lags the in-flight epoch
//! by exactly one. Staleness is therefore bounded by **one epoch** at all
//! times, including across quarantine rollbacks (an aborted epoch clears
//! the in-flight bit without publishing — readers simply keep the last
//! certified snapshot and staleness returns to zero). The
//! `read.staleness_epochs` histogram records the observed distribution.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use netsched_core::CertificateQuality;
use netsched_obs::{Counter, Histogram, ObsRegistry};

use crate::event::DemandTicket;
use crate::session::{Certificate, Placement, ScheduledDemand};

/// FNV-1a-style fold of one `u64` into a running fingerprint.
fn mix(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

/// One published epoch's complete read state: the standing schedule with
/// its certificate, profit and quality, frozen behind an `Arc` so every
/// observation is internally consistent by construction.
#[derive(Debug, Clone)]
pub struct ScheduleSnapshot {
    epoch: u64,
    schedule: BTreeMap<u64, Placement>,
    certificate: Certificate,
    profit: f64,
    quality: CertificateQuality,
    fingerprint: u64,
}

impl ScheduleSnapshot {
    pub(crate) fn capture(
        epoch: u64,
        schedule: &BTreeMap<u64, Placement>,
        certificate: Certificate,
        profit: f64,
        quality: CertificateQuality,
    ) -> Self {
        let mut snapshot = Self {
            epoch,
            schedule: schedule.clone(),
            certificate,
            profit,
            quality,
            fingerprint: 0,
        };
        snapshot.fingerprint = snapshot.compute_fingerprint();
        snapshot
    }

    /// Folds every field of the snapshot into one order-sensitive hash.
    fn compute_fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        hash = mix(hash, self.epoch);
        hash = mix(hash, self.profit.to_bits());
        hash = mix(hash, self.certificate.optimum_upper_bound.to_bits());
        hash = mix(hash, self.certificate.lambda.to_bits());
        hash = mix(hash, self.certificate.dual_objective.to_bits());
        hash = mix(
            hash,
            match self.quality {
                CertificateQuality::Full => 0,
                CertificateQuality::Truncated { rounds_left } => 1 + rounds_left,
            },
        );
        hash = mix(hash, self.schedule.len() as u64);
        for (&ticket, placement) in &self.schedule {
            hash = mix(hash, ticket);
            hash = mix(hash, placement.network.index() as u64);
            hash = mix(hash, placement.start.map_or(0, |s| u64::from(s) + 1));
        }
        hash
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The placement of `ticket`, if it is scheduled.
    pub fn placement(&self, ticket: DemandTicket) -> Option<Placement> {
        self.schedule.get(&ticket.0).copied()
    }

    /// The standing schedule, ascending by ticket (allocates; prefer
    /// [`placement`](ScheduleSnapshot::placement) for point reads).
    pub fn schedule(&self) -> Vec<ScheduledDemand> {
        self.schedule
            .iter()
            .map(|(&t, &placement)| ScheduledDemand {
                ticket: DemandTicket(t),
                placement,
            })
            .collect()
    }

    /// Number of scheduled demands.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The dual certificate of the standing schedule.
    pub fn certificate(&self) -> Certificate {
        self.certificate
    }

    /// Total profit of the standing schedule.
    pub fn profit(&self) -> f64 {
        self.profit
    }

    /// The certificate quality the publishing epoch solved to.
    pub fn quality(&self) -> CertificateQuality {
        self.quality
    }

    /// Recomputes the publish-time fingerprint over every field and checks
    /// it — the torn-read detector the multi-threaded stress suite spins
    /// on. Immutability behind the `Arc` makes a mismatch impossible; this
    /// proves it rather than assuming it.
    pub fn verify_fingerprint(&self) -> bool {
        self.fingerprint == self.compute_fingerprint()
    }
}

/// The single-`AtomicU64` coordination stamp; see the [module docs](self).
const IN_FLIGHT: u64 = 1;

struct Shared {
    /// `published_epoch << 1 | in_flight_bit`. Stored with `Release` after
    /// the slot below holds the published snapshot; loaded with `Acquire`
    /// on every read.
    stamp: AtomicU64,
    /// The latest published snapshot. Locked only to swap (writer, once
    /// per epoch) or to clone on a stamp change (reader, once per epoch).
    slot: Mutex<Arc<ScheduleSnapshot>>,
    /// `read.count`: total snapshot reads across all readers.
    reads: Counter,
    /// `read.staleness_epochs`: per-read distance to the in-flight epoch.
    staleness: Histogram,
    /// `read.refresh_wait_ns`: the contention histogram — wall time a
    /// reader spent acquiring the slot lock and cloning on an epoch
    /// change.
    refresh_wait: Histogram,
}

/// The writer-side handle and reader factory of one session's published
/// schedule; cloning shares the underlying slot. Created by
/// [`ServiceSession::schedule_view`](crate::session::ServiceSession::schedule_view).
#[derive(Clone)]
pub struct ScheduleView {
    shared: Arc<Shared>,
}

impl ScheduleView {
    pub(crate) fn new(initial: ScheduleSnapshot, obs: &ObsRegistry) -> Self {
        let epoch = initial.epoch;
        Self {
            shared: Arc::new(Shared {
                stamp: AtomicU64::new(epoch << 1),
                slot: Mutex::new(Arc::new(initial)),
                reads: obs.counter("read.count"),
                staleness: obs.histogram("read.staleness_epochs"),
                refresh_wait: obs.histogram("read.refresh_wait_ns"),
            }),
        }
    }

    /// Marks `epoch` in flight: readers of the (still published) previous
    /// snapshot now observe staleness 1.
    pub(crate) fn begin_epoch(&self, epoch: u64) {
        debug_assert!(epoch > self.published_epoch());
        self.shared
            .stamp
            .store((epoch - 1) << 1 | IN_FLIGHT, Ordering::Release);
    }

    /// Publishes a fully built snapshot and clears the in-flight bit. The
    /// slot is swapped **before** the stamp advances, so a reader that
    /// observes the new stamp always finds at least this snapshot.
    pub(crate) fn publish(&self, snapshot: ScheduleSnapshot) {
        let epoch = snapshot.epoch;
        *self.shared.slot.lock().expect("schedule slot poisoned") = Arc::new(snapshot);
        self.shared.stamp.store(epoch << 1, Ordering::Release);
    }

    /// Clears the in-flight bit without publishing — the quarantine
    /// rollback path. Readers keep the last certified snapshot and its
    /// staleness returns to zero.
    pub(crate) fn abort_epoch(&self) {
        let published = self.published_epoch();
        self.shared.stamp.store(published << 1, Ordering::Release);
    }

    /// The epoch of the currently published snapshot.
    pub fn published_epoch(&self) -> u64 {
        self.shared.stamp.load(Ordering::Acquire) >> 1
    }

    /// `true` while the write side is computing the next epoch.
    pub fn epoch_in_flight(&self) -> bool {
        self.shared.stamp.load(Ordering::Acquire) & IN_FLIGHT != 0
    }

    /// A new independent reader, primed with the current snapshot.
    pub fn reader(&self) -> ScheduleReader {
        let cached = self
            .shared
            .slot
            .lock()
            .expect("schedule slot poisoned")
            .clone();
        ScheduleReader {
            shared: self.shared.clone(),
            cached,
            fresh_reads: 0,
            stale_reads: 0,
        }
    }
}

/// One reader's wait-free handle; see the [module docs](self) for the
/// cost model. Each reader tallies its reads locally and flushes them to
/// the shared `read.*` metrics on refresh, on [`flush`](Self::flush) and
/// on drop, so the hot read loop never touches a shared cache line beyond
/// the stamp.
pub struct ScheduleReader {
    shared: Arc<Shared>,
    cached: Arc<ScheduleSnapshot>,
    /// Reads that observed the published epoch with nothing in flight.
    fresh_reads: u64,
    /// Reads that observed the published epoch while the next was in
    /// flight (staleness exactly 1 — the contract's upper bound).
    stale_reads: u64,
}

impl ScheduleReader {
    /// The current snapshot: one `Acquire` load of the stamp, plus — only
    /// when the published epoch moved — a brief slot lock to clone the new
    /// `Arc`. Never blocks on the write side's solve.
    pub fn read(&mut self) -> &ScheduleSnapshot {
        let stamp = self.shared.stamp.load(Ordering::Acquire);
        if stamp >> 1 != self.cached.epoch {
            let refresh_start = Instant::now();
            let latest = self
                .shared
                .slot
                .lock()
                .expect("schedule slot poisoned")
                .clone();
            self.shared
                .refresh_wait
                .record_duration(refresh_start.elapsed());
            // The slot may already hold an even newer epoch than the
            // stamp we compared — snapshots are whole either way.
            self.cached = latest;
            self.flush();
        }
        if stamp & IN_FLIGHT != 0 {
            self.stale_reads += 1;
        } else {
            self.fresh_reads += 1;
        }
        &self.cached
    }

    /// The epoch of the snapshot the last [`read`](Self::read) returned.
    pub fn observed_epoch(&self) -> u64 {
        self.cached.epoch
    }

    /// Flushes the local read tallies into the shared `read.count` /
    /// `read.staleness_epochs` metrics (also runs on refresh and drop).
    pub fn flush(&mut self) {
        let total = self.fresh_reads + self.stale_reads;
        if total == 0 {
            return;
        }
        self.shared.reads.add(total);
        self.shared.staleness.record_many(0, self.fresh_reads);
        self.shared.staleness.record_many(1, self.stale_reads);
        self.fresh_reads = 0;
        self.stale_reads = 0;
    }
}

impl Drop for ScheduleReader {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::NetworkId;

    fn snapshot(epoch: u64, tickets: &[u64]) -> ScheduleSnapshot {
        let schedule: BTreeMap<u64, Placement> = tickets
            .iter()
            .map(|&t| {
                (
                    t,
                    Placement {
                        network: NetworkId::new((t % 3) as usize),
                        start: Some(t as u32),
                    },
                )
            })
            .collect();
        ScheduleSnapshot::capture(
            epoch,
            &schedule,
            Certificate {
                optimum_upper_bound: 10.0 + epoch as f64,
                lambda: 0.9,
                dual_objective: 9.0,
            },
            epoch as f64,
            CertificateQuality::Full,
        )
    }

    #[test]
    fn readers_observe_publications_and_staleness_bits() {
        let obs = ObsRegistry::new();
        let view = ScheduleView::new(snapshot(0, &[]), &obs);
        let mut reader = view.reader();
        assert_eq!(reader.read().epoch(), 0);
        assert!(reader.read().verify_fingerprint());

        view.begin_epoch(1);
        assert!(view.epoch_in_flight());
        assert_eq!(reader.read().epoch(), 0, "mid-epoch reads keep the last");
        view.publish(snapshot(1, &[3, 7]));
        assert!(!view.epoch_in_flight());
        let snap = reader.read();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.placement(DemandTicket(7)).unwrap().network,
            NetworkId::new(1)
        );
        assert!(snap.verify_fingerprint());

        // An aborted epoch leaves the published snapshot in place.
        view.begin_epoch(2);
        assert_eq!(reader.read().epoch(), 1);
        view.abort_epoch();
        assert!(!view.epoch_in_flight());
        assert_eq!(reader.read().epoch(), 1);

        reader.flush();
        let report = obs.snapshot();
        assert_eq!(report.counter("read.count"), Some(6));
        let staleness = report.histogram("read.staleness_epochs").unwrap();
        assert_eq!(staleness.count, 6);
        assert_eq!(staleness.max, 1, "staleness is bounded by one epoch");
    }

    #[test]
    fn fingerprints_distinguish_field_level_differences() {
        let a = snapshot(4, &[1, 2, 3]);
        let b = snapshot(4, &[1, 2, 4]);
        let c = snapshot(5, &[1, 2, 3]);
        assert!(a.verify_fingerprint());
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
