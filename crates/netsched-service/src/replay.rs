//! Replaying generated event traces (`netsched-workloads::dynamic`)
//! against a [`ServiceSession`].
//!
//! Traces speak *arrival indices*; sessions speak [`DemandTicket`]s. The
//! two align by construction — a session seeded with the trace's base
//! problem assigns tickets `0..m₀` to the initial demands and subsequent
//! tickets in admission order, exactly the trace's arrival numbering — but
//! the replay keeps an explicit arrival→ticket table anyway, so it also
//! works for sessions that interleave other submissions.

use netsched_workloads::{EventTrace, TraceEvent};

use crate::event::{DemandEvent, DemandRequest, DemandTicket, ServiceError};
use crate::session::{ScheduleDelta, ServiceSession};

/// Converts one trace event into a service event, resolving expiries
/// through the arrival→ticket table.
fn to_event(event: &TraceEvent, tickets: &[DemandTicket]) -> DemandEvent {
    match event {
        TraceEvent::ArriveTree {
            u,
            v,
            profit,
            height,
            access,
        } => DemandEvent::Arrive(DemandRequest::Tree {
            u: *u,
            v: *v,
            profit: *profit,
            height: *height,
            access: access.clone(),
        }),
        TraceEvent::ArriveLine {
            release,
            deadline,
            processing,
            profit,
            height,
            access,
        } => DemandEvent::Arrive(DemandRequest::Line {
            release: *release,
            deadline: *deadline,
            processing: *processing,
            profit: *profit,
            height: *height,
            access: access.clone(),
        }),
        TraceEvent::Expire { arrival } => DemandEvent::Expire(
            *tickets
                .get(*arrival)
                .expect("trace expires an arrival it never made"),
        ),
    }
}

/// Steps the session through every batch of the trace, returning one
/// [`ScheduleDelta`] per epoch. The session must have been seeded with the
/// trace's base problem (the initial demands are the trace's arrivals
/// `0..m₀`).
pub fn replay_trace(
    session: &mut ServiceSession,
    trace: &EventTrace,
) -> Result<Vec<ScheduleDelta>, ServiceError> {
    let mut tickets: Vec<DemandTicket> = session.live_tickets();
    let mut deltas = Vec::with_capacity(trace.batches.len());
    for batch in &trace.batches {
        let events: Vec<DemandEvent> = batch.iter().map(|e| to_event(e, &tickets)).collect();
        let delta = session.step(&events)?;
        tickets.extend(delta.tickets.iter().copied());
        deltas.push(delta);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::AlgorithmConfig;
    use netsched_workloads::{many_networks_line, poisson_arrivals_line, ChurnSpec};

    #[test]
    fn replay_keeps_the_pool_near_its_target() {
        let base = many_networks_line(4, 40, 5);
        let problem = base.build().unwrap();
        let trace = poisson_arrivals_line(
            &base,
            &ChurnSpec {
                epochs: 20,
                churn: 0.15,
                focus: 2,
                seed: 9,
            },
        );
        let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
        let deltas = replay_trace(&mut session, &trace).unwrap();
        assert_eq!(deltas.len(), 20);
        assert_eq!(session.epoch(), 20);
        let live = session.live_demands();
        assert!(
            live > 10 && live < 100,
            "steady-state pool stays near target, got {live}"
        );
        // Every epoch carried a valid certificate for its standing schedule.
        for delta in &deltas {
            assert!(delta.certificate.optimum_upper_bound + 1e-9 >= delta.profit);
        }
    }
}
