//! JSON serialization of the service-layer types — the vocabulary of the
//! durable serving tier (`netsched-persist`).
//!
//! Two kinds of documents are built from these pieces:
//!
//! * **write-ahead log records** — one
//!   [`wal_record`] per accepted epoch batch, serializing the epoch number
//!   and its [`DemandEvent`]s; framed and checksummed by
//!   [`netsched_workloads::framing`];
//! * **session snapshots** —
//!   [`ServiceSession::snapshot`](crate::ServiceSession::snapshot)
//!   documents carrying the full session state (base problem, live ticket
//!   table, standing schedule, certificate, per-core warm states) behind a
//!   versioned header ([`SNAPSHOT_FORMAT_VERSION`]), so the format can
//!   evolve without stranding old snapshot files.

use netsched_graph::{NetworkId, VertexId};
use netsched_workloads::json::{FromJson, JsonValue, ToJson};

use crate::event::{DemandEvent, DemandRequest, DemandTicket};
use crate::session::{Certificate, Placement, ResolveMode};

/// The snapshot document format written by
/// [`ServiceSession::snapshot`](crate::ServiceSession::snapshot). Bump on
/// any incompatible change;
/// [`from_snapshot`](crate::ServiceSession::from_snapshot) rejects
/// unknown versions instead of mis-parsing them.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

fn access_to_json(access: &[NetworkId]) -> JsonValue {
    JsonValue::Array(access.iter().map(|t| JsonValue::int(t.index())).collect())
}

fn access_from_json(value: &JsonValue) -> Result<Vec<NetworkId>, String> {
    value
        .as_array()?
        .iter()
        .map(|t| Ok(NetworkId::new(t.as_usize()?)))
        .collect()
}

impl ToJson for DemandRequest {
    fn to_json(&self) -> JsonValue {
        match self {
            DemandRequest::Tree {
                u,
                v,
                profit,
                height,
                access,
            } => JsonValue::object(vec![
                ("shape", JsonValue::String("tree".into())),
                ("u", JsonValue::int(u.index())),
                ("v", JsonValue::int(v.index())),
                ("profit", JsonValue::num(*profit)),
                ("height", JsonValue::num(*height)),
                ("access", access_to_json(access)),
            ]),
            DemandRequest::Line {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => JsonValue::object(vec![
                ("shape", JsonValue::String("line".into())),
                ("release", JsonValue::int(*release as usize)),
                ("deadline", JsonValue::int(*deadline as usize)),
                ("processing", JsonValue::int(*processing as usize)),
                ("profit", JsonValue::num(*profit)),
                ("height", JsonValue::num(*height)),
                ("access", access_to_json(access)),
            ]),
        }
    }
}

impl FromJson for DemandRequest {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.field("shape")?.as_str()? {
            "tree" => Ok(DemandRequest::Tree {
                u: VertexId::new(value.field("u")?.as_usize()?),
                v: VertexId::new(value.field("v")?.as_usize()?),
                profit: value.field("profit")?.as_f64()?,
                height: value.field("height")?.as_f64()?,
                access: access_from_json(value.field("access")?)?,
            }),
            "line" => Ok(DemandRequest::Line {
                release: value.field("release")?.as_u32()?,
                deadline: value.field("deadline")?.as_u32()?,
                processing: value.field("processing")?.as_u32()?,
                profit: value.field("profit")?.as_f64()?,
                height: value.field("height")?.as_f64()?,
                access: access_from_json(value.field("access")?)?,
            }),
            other => Err(format!("unknown demand shape `{other}`")),
        }
    }
}

impl ToJson for DemandEvent {
    fn to_json(&self) -> JsonValue {
        match self {
            DemandEvent::Arrive(request) => JsonValue::object(vec![
                ("event", JsonValue::String("arrive".into())),
                ("request", request.to_json()),
            ]),
            DemandEvent::Expire(ticket) => JsonValue::object(vec![
                ("event", JsonValue::String("expire".into())),
                ("ticket", JsonValue::u64_value(ticket.0)),
            ]),
        }
    }
}

impl FromJson for DemandEvent {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.field("event")?.as_str()? {
            "arrive" => Ok(DemandEvent::Arrive(DemandRequest::from_json(
                value.field("request")?,
            )?)),
            "expire" => Ok(DemandEvent::Expire(DemandTicket(
                value.field("ticket")?.as_u64()?,
            ))),
            other => Err(format!("unknown event kind `{other}`")),
        }
    }
}

impl ToJson for Placement {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("network", JsonValue::int(self.network.index())),
            (
                "start",
                match self.start {
                    Some(start) => JsonValue::int(start as usize),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

impl FromJson for Placement {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(Placement {
            network: NetworkId::new(value.field("network")?.as_usize()?),
            start: match value.field("start")? {
                JsonValue::Null => None,
                doc => Some(doc.as_u32()?),
            },
        })
    }
}

impl ToJson for Certificate {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "optimum_upper_bound",
                JsonValue::num(self.optimum_upper_bound),
            ),
            ("lambda", JsonValue::num(self.lambda)),
            ("dual_objective", JsonValue::num(self.dual_objective)),
        ])
    }
}

impl FromJson for Certificate {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(Certificate {
            optimum_upper_bound: value.field("optimum_upper_bound")?.as_f64()?,
            lambda: value.field("lambda")?.as_f64()?,
            dual_objective: value.field("dual_objective")?.as_f64()?,
        })
    }
}

impl ToJson for ResolveMode {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(
            match self {
                ResolveMode::Cold => "cold",
                ResolveMode::Warm => "warm",
            }
            .into(),
        )
    }
}

impl FromJson for ResolveMode {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        ResolveMode::parse(value.as_str()?)
            .ok_or_else(|| format!("unknown resolve mode `{}`", value.render()))
    }
}

/// One decoded write-ahead log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch record: the epoch the batch advances the session to, plus
    /// the batch's events in order.
    Batch {
        /// The epoch the batch advances the session to.
        epoch: u64,
        /// The batch's events, in order.
        batch: Vec<DemandEvent>,
    },
    /// A rollback tombstone: the batch journaled for `epoch` was
    /// quarantined and never executed. Replay must skip the preceding
    /// batch record(s) carrying this epoch.
    Rollback {
        /// The epoch whose journaled batch was rolled back.
        epoch: u64,
    },
}

impl WalRecord {
    /// The epoch the record refers to, for either variant.
    pub fn epoch(&self) -> u64 {
        match self {
            WalRecord::Batch { epoch, .. } | WalRecord::Rollback { epoch } => *epoch,
        }
    }
}

/// Builds one write-ahead log record: the epoch the batch advances the
/// session to, plus the batch's events in order.
pub fn wal_record(epoch: u64, batch: &[DemandEvent]) -> JsonValue {
    JsonValue::object(vec![
        ("epoch", JsonValue::u64_value(epoch)),
        (
            "batch",
            JsonValue::Array(batch.iter().map(ToJson::to_json).collect()),
        ),
    ])
}

/// Builds one rollback tombstone: the batch journaled for `epoch` was
/// quarantined and its record must not replay.
pub fn wal_rollback_record(epoch: u64) -> JsonValue {
    JsonValue::object(vec![("rollback", JsonValue::u64_value(epoch))])
}

/// Parses one write-ahead log record (batch or rollback tombstone).
pub fn parse_wal_record(value: &JsonValue) -> Result<WalRecord, String> {
    if let Ok(rollback) = value.field("rollback") {
        return Ok(WalRecord::Rollback {
            epoch: rollback.as_u64()?,
        });
    }
    let epoch = value.field("epoch")?.as_u64()?;
    let batch = value
        .field("batch")?
        .as_array()?
        .iter()
        .map(DemandEvent::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WalRecord::Batch { epoch, batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_records_roundtrip() {
        let batch = vec![
            DemandEvent::Arrive(DemandRequest::Line {
                release: 2,
                deadline: 9,
                processing: 3,
                profit: 4.5,
                height: 0.25,
                access: vec![NetworkId::new(0), NetworkId::new(2)],
            }),
            DemandEvent::Arrive(DemandRequest::Tree {
                u: VertexId::new(1),
                v: VertexId::new(5),
                profit: 2.0,
                height: 1.0,
                access: vec![NetworkId::new(1)],
            }),
            DemandEvent::Expire(DemandTicket(u64::MAX)),
        ];
        let text = wal_record(17, &batch).render();
        match parse_wal_record(&JsonValue::parse(&text).unwrap()).unwrap() {
            WalRecord::Batch { epoch, batch: back } => {
                assert_eq!(epoch, 17);
                assert_eq!(back, batch);
            }
            other => panic!("expected a batch record, got {other:?}"),
        }
        let text = wal_rollback_record(17).render();
        assert_eq!(
            parse_wal_record(&JsonValue::parse(&text).unwrap()).unwrap(),
            WalRecord::Rollback { epoch: 17 }
        );
    }

    #[test]
    fn placements_and_certificates_roundtrip() {
        for placement in [
            Placement {
                network: NetworkId::new(3),
                start: Some(11),
            },
            Placement {
                network: NetworkId::new(0),
                start: None,
            },
        ] {
            let back =
                Placement::from_json(&JsonValue::parse(&placement.to_json().render()).unwrap())
                    .unwrap();
            assert_eq!(back, placement);
        }
        let cert = Certificate {
            optimum_upper_bound: 12.5,
            lambda: 0.9,
            dual_objective: 11.25,
        };
        let back =
            Certificate::from_json(&JsonValue::parse(&cert.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, cert);
        for mode in [ResolveMode::Cold, ResolveMode::Warm] {
            assert_eq!(ResolveMode::from_json(&mode.to_json()).unwrap(), mode);
        }
    }
}
