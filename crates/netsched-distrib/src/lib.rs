//! Distributed-computation substrate for `netsched`.
//!
//! The paper's algorithms run in the synchronous message-passing model:
//! processors that share a resource can exchange messages, the cost measure
//! is the number of communication rounds, and the key primitive is a
//! distributed maximal-independent-set computation on the conflict graph of
//! demand instances. This crate provides:
//!
//! * [`simulator`] — a generic synchronous round-based simulator with
//!   message accounting ([`simulator::SyncSimulator`], [`simulator::Agent`]);
//! * [`conflict::ConflictGraph`] — the conflict graph over demand instances;
//! * [`conflict::ShardedConflictGraph`] — the same graph sharded by
//!   network: one local CSR per shard built by rayon-parallel interval
//!   sweeps, plus a compact cross-shard adjacency holding the same-demand
//!   cliques that span networks (the only edges crossing shard
//!   boundaries);
//! * [`comm::CommGraph`] — the communication graph over processors;
//! * [`mis`] — Luby's randomized MIS run as a real message-passing protocol
//!   on the simulator, a sequential greedy baseline, and
//!   [`mis::sharded_mis`] — the shard-parallel executions of both that
//!   reproduce the flat results exactly at any thread count;
//! * [`stats::RoundStats`] — round/message accounting used to reproduce the
//!   round-complexity claims of Theorems 5.3, 6.3, 7.1 and 7.2.
//!
//! # Sharded architecture
//!
//! The conflict structure is a union of per-network interval graphs joined
//! only by same-demand cliques, so everything overlap-driven decomposes by
//! [`NetworkId`](netsched_graph::NetworkId). With `k` shards, `R` interval
//! runs, `E_c` conflict edges (`E_x` of them cross-shard) and `P` workers:
//!
//! | operation | flat (pre-shard) | sharded |
//! |---|---|---|
//! | interval sweep | `O(R log R + E_c)` serial | per-shard, `≈ /P` wall-clock |
//! | CSR assembly | `O(E_c)` serial | per-shard, `≈ /P` wall-clock |
//! | cross-shard clique split | — | `O(E_x)` serial |
//! | merge back to flat CSR | — | `O(E_c log E_c)`, byte-identical |
//! | greedy MIS | `O(E_c)` serial | per-shard sweeps + boundary fixpoint |
//! | Luby phase | simulator messages | per-shard array scans |
//!
//! Determinism is a hard contract: the merged CSR is byte-identical to
//! [`conflict::ConflictGraph::build`] and both MIS strategies return the
//! exact flat-path sets at every thread count (see the
//! `shard_equivalence` suite at the workspace root).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comm;
pub mod conflict;
pub mod mis;
pub mod simulator;
pub mod stats;

pub use comm::CommGraph;
pub use conflict::{ConflictGraph, ShardConflict, ShardedConflictGraph};
pub use mis::{
    greedy_mis, is_maximal_independent, maximal_independent_set, sharded_greedy_mis, sharded_mis,
    MisScratch, MisStrategy,
};
pub use simulator::{Agent, Outbox, SimOutcome, SyncSimulator, Topology};
pub use stats::RoundStats;
