//! Distributed-computation substrate for `netsched`.
//!
//! The paper's algorithms run in the synchronous message-passing model:
//! processors that share a resource can exchange messages, the cost measure
//! is the number of communication rounds, and the key primitive is a
//! distributed maximal-independent-set computation on the conflict graph of
//! demand instances. This crate provides:
//!
//! * [`simulator`] — a generic synchronous round-based simulator with
//!   message accounting ([`simulator::SyncSimulator`], [`simulator::Agent`]);
//! * [`conflict::ConflictGraph`] — the conflict graph over demand instances;
//! * [`comm::CommGraph`] — the communication graph over processors;
//! * [`mis`] — Luby's randomized MIS run as a real message-passing protocol
//!   on the simulator, plus a sequential greedy baseline;
//! * [`stats::RoundStats`] — round/message accounting used to reproduce the
//!   round-complexity claims of Theorems 5.3, 6.3, 7.1 and 7.2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comm;
pub mod conflict;
pub mod mis;
pub mod simulator;
pub mod stats;

pub use comm::CommGraph;
pub use conflict::ConflictGraph;
pub use mis::{greedy_mis, is_maximal_independent, maximal_independent_set, MisStrategy};
pub use simulator::{Agent, Outbox, SimOutcome, SyncSimulator, Topology};
pub use stats::RoundStats;
