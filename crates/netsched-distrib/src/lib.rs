//! Distributed-computation substrate for `netsched`.
//!
//! The paper's algorithms run in the synchronous message-passing model:
//! processors that share a resource can exchange messages, the cost measure
//! is the number of communication rounds, and the key primitive is a
//! distributed maximal-independent-set computation on the conflict graph of
//! demand instances. This crate provides:
//!
//! * [`simulator`] — a generic synchronous round-based simulator with
//!   message accounting ([`simulator::SyncSimulator`], [`simulator::Agent`]);
//! * [`conflict::ConflictGraph`] — the conflict graph over demand instances;
//! * [`conflict::ShardedConflictGraph`] — the same graph sharded by
//!   network: one local CSR per shard built by rayon-parallel interval
//!   sweeps, plus a compact cross-shard adjacency holding the same-demand
//!   cliques that span networks (the only edges crossing shard
//!   boundaries);
//! * [`comm::CommGraph`] — the communication graph over processors;
//! * [`mis`] — Luby's randomized MIS run as a real message-passing protocol
//!   on the simulator, a sequential greedy baseline, and
//!   [`mis::sharded_mis`] — the shard-parallel executions of both that
//!   reproduce the flat results exactly at any thread count;
//! * [`stats::RoundStats`] — round/message accounting used to reproduce the
//!   round-complexity claims of Theorems 5.3, 6.3, 7.1 and 7.2.
//!
//! # Sharded architecture
//!
//! The conflict structure is a union of per-network interval graphs joined
//! only by same-demand cliques, so everything overlap-driven decomposes by
//! [`NetworkId`](netsched_graph::NetworkId). With `k` shards, `R` interval
//! runs, `E_c` conflict edges (`E_x` of them cross-shard) and `P` workers:
//!
//! | operation | flat (pre-shard) | sharded |
//! |---|---|---|
//! | interval sweep | `O(R log R + E_c)` serial | per-shard, `≈ /P` wall-clock |
//! | CSR assembly | `O(E_c)` serial | per-shard, `≈ /P` wall-clock |
//! | cross-shard clique split | — | `O(E_x)` serial |
//! | merge back to flat CSR | — | `O(E_c log E_c)`, byte-identical |
//! | greedy MIS | `O(E_c)` serial | per-shard sweeps + boundary fixpoint |
//! | Luby phase | simulator messages | per-shard array scans |
//! | demand splice | `O(R log R + E_c)` rebuild | dirty shards only, clean shards untouched |
//! | cross-shard rows | rebuilt wholesale | stable-id group arena, spliced locally |
//!
//! Determinism is a hard contract: the merged CSR is byte-identical to
//! [`conflict::ConflictGraph::build`] and both MIS strategies return the
//! exact flat-path sets at every thread count (see the
//! `shard_equivalence` suite at the workspace root).
//!
//! # Scale & memory layout
//!
//! Per-shard CSRs (offset/neighbor arrays over local `u32` ids) and the
//! cross-shard group arena are the dominant conflict-side structures;
//! [`ShardedConflictGraph::committed_bytes`](conflict::ShardedConflictGraph::committed_bytes)
//! audits them. At the 10⁵-live-demand point the line scenario commits
//! **28.5 MiB ≈ 299 bytes/demand** of conflict state, while the tree
//! scenario's denser per-shard interval overlap commits 741 MiB
//! (≈ 8.2 KiB/demand) — the current scaling cliff (see `ROADMAP.md`).
//! [`ShardedConflictGraph::apply_delta`](conflict::ShardedConflictGraph::apply_delta)
//! re-sweeps dirty shards only and splices cross-shard rows through
//! stable group ids, so clean-shard epochs neither allocate (pinned by
//! `alloc_regression`) nor re-assemble the cross CSR (pinned by an
//! assembly-counter test on
//! [`cross_assembly_count`](conflict::ShardedConflictGraph::cross_assembly_count)).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comm;
pub mod conflict;
pub mod mis;
pub mod simulator;
pub mod stats;

pub use comm::CommGraph;
pub use conflict::{ConflictGraph, ShardConflict, ShardedConflictGraph};
pub use mis::{
    greedy_mis, is_maximal_independent, maximal_independent_set, sharded_greedy_mis, sharded_mis,
    MisScratch, MisStrategy,
};
pub use simulator::{Agent, Outbox, SimOutcome, SyncSimulator, Topology};
pub use stats::RoundStats;
