//! A synchronous message-passing simulator.
//!
//! The paper assumes "the standard synchronous, message passing model of
//! computation: in a given network of processors, each processor can
//! communicate in one step with all other processors it is directly
//! connected to" (Section 1). [`SyncSimulator`] executes a set of
//! [`Agent`]s on an undirected topology in lock-step rounds: messages sent
//! in round `t` are delivered at the start of round `t + 1`, and the
//! simulator records rounds and message counts in a [`RoundStats`].

use crate::stats::RoundStats;

/// What an agent wants to send at the end of a round.
#[derive(Debug, Clone, PartialEq)]
pub enum Outbox<M> {
    /// Send the same message to every neighbour.
    Broadcast(M),
    /// Send individually addressed messages (`(neighbour index, message)`).
    /// Neighbour indices are *global* agent indices and must be adjacent.
    Unicast(Vec<(usize, M)>),
    /// Send nothing this round.
    Silent,
}

/// A node participating in a synchronous protocol.
pub trait Agent {
    /// The message type exchanged by the protocol.
    type Msg: Clone;

    /// Executes one round: `inbox` contains `(sender index, message)` pairs
    /// delivered this round (sent by neighbours in the previous round).
    /// Returns what to send next.
    fn step(&mut self, round: usize, inbox: &[(usize, Self::Msg)]) -> Outbox<Self::Msg>;

    /// Returns `true` once the agent has reached a terminal state. The
    /// simulation stops when every agent is done and no messages are in
    /// flight.
    fn is_done(&self) -> bool;

    /// Size of a message in abstract "demand records" for the `O(M_max)`
    /// accounting; defaults to 1.
    fn message_records(&self) -> u64 {
        1
    }
}

/// The undirected communication topology: `adjacency[i]` lists the agents
/// agent `i` can exchange messages with.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from adjacency lists (deduplicated and sorted;
    /// self-loops removed).
    pub fn new(mut adjacency: Vec<Vec<usize>>) -> Self {
        for (i, nbrs) in adjacency.iter_mut().enumerate() {
            nbrs.retain(|&j| j != i);
            nbrs.sort_unstable();
            nbrs.dedup();
        }
        Self { adjacency }
    }

    /// Builds the complete graph on `n` agents.
    pub fn complete(n: usize) -> Self {
        Self::new(
            (0..n)
                .map(|i| (0..n).filter(|&j| j != i).collect())
                .collect(),
        )
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbours of agent `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Returns `true` if `i` and `j` are adjacent.
    pub fn are_adjacent(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&j).is_ok()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum::<usize>() / 2
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Communication statistics.
    pub stats: RoundStats,
    /// `true` if every agent reported `is_done()` before `max_rounds`.
    pub converged: bool,
}

/// The synchronous round-based engine.
#[derive(Debug, Clone)]
pub struct SyncSimulator {
    topology: Topology,
}

impl SyncSimulator {
    /// Creates a simulator over the given topology.
    pub fn new(topology: Topology) -> Self {
        Self { topology }
    }

    /// The topology the simulator runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs the agents until all are done (and no messages remain in
    /// flight) or `max_rounds` is reached. Agent `i` talks to the
    /// neighbours of node `i` in the topology.
    pub fn run<A: Agent>(&self, agents: &mut [A], max_rounds: usize) -> SimOutcome {
        assert_eq!(
            agents.len(),
            self.topology.num_agents(),
            "one agent per topology node"
        );
        let n = agents.len();
        let mut stats = RoundStats::new();
        let mut inboxes: Vec<Vec<(usize, A::Msg)>> = vec![Vec::new(); n];

        for round in 0..max_rounds {
            if agents.iter().all(|a| a.is_done()) && inboxes.iter().all(|i| i.is_empty()) {
                return SimOutcome {
                    stats,
                    converged: true,
                };
            }
            let mut next: Vec<Vec<(usize, A::Msg)>> = vec![Vec::new(); n];
            for (i, agent) in agents.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut inboxes[i]);
                let records = agent.message_records();
                match agent.step(round, &inbox) {
                    Outbox::Broadcast(msg) => {
                        let nbrs = self.topology.neighbors(i);
                        stats.record_messages(nbrs.len() as u64, records);
                        for &j in nbrs {
                            next[j].push((i, msg.clone()));
                        }
                    }
                    Outbox::Unicast(msgs) => {
                        stats.record_messages(msgs.len() as u64, records);
                        for (j, msg) in msgs {
                            debug_assert!(
                                self.topology.are_adjacent(i, j),
                                "agent {i} tried to message non-neighbour {j}"
                            );
                            next[j].push((i, msg));
                        }
                    }
                    Outbox::Silent => {}
                }
            }
            inboxes = next;
            stats.record_round();
        }
        SimOutcome {
            stats,
            converged: agents.iter().all(|a| a.is_done()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy flooding protocol: agent 0 starts with a token; every agent
    /// that has the token broadcasts it once. Terminates when every agent
    /// has the token.
    struct Flooder {
        has_token: bool,
        broadcasted: bool,
    }

    impl Agent for Flooder {
        type Msg = ();

        fn step(&mut self, _round: usize, inbox: &[(usize, ())]) -> Outbox<()> {
            if !inbox.is_empty() {
                self.has_token = true;
            }
            if self.has_token && !self.broadcasted {
                self.broadcasted = true;
                Outbox::Broadcast(())
            } else {
                Outbox::Silent
            }
        }

        fn is_done(&self) -> bool {
            self.has_token
        }
    }

    fn flooders(n: usize) -> Vec<Flooder> {
        (0..n)
            .map(|i| Flooder {
                has_token: i == 0,
                broadcasted: false,
            })
            .collect()
    }

    #[test]
    fn flooding_on_a_path_takes_diameter_rounds() {
        let n = 8;
        let adj = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        let sim = SyncSimulator::new(Topology::new(adj));
        let mut agents = flooders(n);
        let out = sim.run(&mut agents, 100);
        assert!(out.converged);
        assert!(agents.iter().all(|a| a.has_token));
        // The token needs n - 1 hops; each hop is one round, plus the final
        // quiescence check happens after delivery.
        assert!(out.stats.rounds as usize >= n - 1);
        assert!(out.stats.rounds as usize <= n + 1);
    }

    #[test]
    fn flooding_on_complete_graph_is_fast() {
        let sim = SyncSimulator::new(Topology::complete(16));
        let mut agents = flooders(16);
        let out = sim.run(&mut agents, 10);
        assert!(out.converged);
        assert!(out.stats.rounds <= 3);
        // Every agent broadcasts exactly once to 15 neighbours.
        assert_eq!(out.stats.messages, 16 * 15);
    }

    #[test]
    fn non_convergence_is_reported() {
        // Two agents that are never done and never talk.
        struct Stuck;
        impl Agent for Stuck {
            type Msg = ();
            fn step(&mut self, _r: usize, _i: &[(usize, ())]) -> Outbox<()> {
                Outbox::Silent
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let sim = SyncSimulator::new(Topology::complete(2));
        let mut agents = vec![Stuck, Stuck];
        let out = sim.run(&mut agents, 5);
        assert!(!out.converged);
        assert_eq!(out.stats.rounds, 5);
    }

    #[test]
    fn topology_helpers() {
        let t = Topology::new(vec![vec![1, 1, 0], vec![0], vec![]]);
        assert_eq!(t.neighbors(0), &[1]);
        assert!(t.are_adjacent(0, 1));
        assert!(!t.are_adjacent(0, 2));
        assert_eq!(t.num_edges(), 1);
        let c = Topology::complete(4);
        assert_eq!(c.num_edges(), 6);
    }

    /// A two-agent ping-pong over unicast messages: agent 0 sends a counter
    /// to agent 1, which increments and returns it, until it reaches 5.
    struct PingPong {
        id: usize,
        last_seen: u32,
        target: u32,
        kick_off: bool,
    }

    impl Agent for PingPong {
        type Msg = u32;

        fn step(&mut self, _round: usize, inbox: &[(usize, u32)]) -> Outbox<u32> {
            if self.kick_off {
                self.kick_off = false;
                return Outbox::Unicast(vec![(1 - self.id, 1)]);
            }
            if let Some(&(from, value)) = inbox.first() {
                self.last_seen = value;
                if value < self.target {
                    return Outbox::Unicast(vec![(from, value + 1)]);
                }
            }
            Outbox::Silent
        }

        fn is_done(&self) -> bool {
            self.last_seen >= self.target - 1
        }

        fn message_records(&self) -> u64 {
            2
        }
    }

    #[test]
    fn unicast_ping_pong_counts_rounds_and_records() {
        let sim = SyncSimulator::new(Topology::complete(2));
        let mut agents = vec![
            PingPong {
                id: 0,
                last_seen: 0,
                target: 5,
                kick_off: true,
            },
            PingPong {
                id: 1,
                last_seen: 0,
                target: 5,
                kick_off: false,
            },
        ];
        let out = sim.run(&mut agents, 50);
        assert!(out.converged);
        // Messages carry values 1, 2, 3, 4, 5 — five unicast messages.
        assert_eq!(out.stats.messages, 5);
        // One message per round while the exchange is alive.
        assert!(out.stats.rounds >= 5);
        // The custom record size is reported for the O(M_max) accounting.
        assert_eq!(out.stats.max_message_records, 2);
        assert!(agents.iter().all(|a| a.last_seen >= 4));
    }

    #[test]
    fn isolated_token_holder_converges_only_locally() {
        // A topology with an isolated vertex 2: flooding from 0 never
        // reaches it.
        let t = Topology::new(vec![vec![1], vec![0], vec![]]);
        let sim = SyncSimulator::new(t);
        let mut agents = flooders(3);
        let out = sim.run(&mut agents, 10);
        assert!(!out.converged);
        assert!(agents[1].has_token);
        assert!(!agents[2].has_token);
    }
}
