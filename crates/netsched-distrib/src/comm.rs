//! The communication graph among processors.
//!
//! "Two processors can communicate with each other, if they have access to
//! some common resource" (Section 1). This module builds that graph from
//! the processors' access sets; the experiment harness uses it to
//! illustrate that its diameter can be as large as the number of
//! processors, which is why polylogarithmic-round algorithms are
//! non-trivial.

use netsched_graph::{Processor, ProcessorId};

/// The communication graph: vertices are processors, edges connect
/// processors whose access sets intersect.
#[derive(Debug, Clone)]
pub struct CommGraph {
    adj: Vec<Vec<ProcessorId>>,
    num_edges: usize,
}

impl CommGraph {
    /// Builds the communication graph from the processors' access sets.
    ///
    /// Construction buckets processors per resource, so the cost is the sum
    /// of squared per-resource populations.
    pub fn build(processors: &[Processor], num_resources: usize) -> Self {
        let n = processors.len();
        let mut by_resource: Vec<Vec<ProcessorId>> = vec![Vec::new(); num_resources];
        for p in processors {
            for &t in &p.access {
                by_resource[t.index()].push(p.id);
            }
        }
        let mut adj: Vec<Vec<ProcessorId>> = vec![Vec::new(); n];
        for group in &by_resource {
            for (i, &p1) in group.iter().enumerate() {
                for &p2 in &group[i + 1..] {
                    adj[p1.index()].push(p2);
                    adj[p2.index()].push(p1);
                }
            }
        }
        let mut num_edges = 0;
        for nbrs in &mut adj {
            nbrs.sort_unstable();
            nbrs.dedup();
            num_edges += nbrs.len();
        }
        Self {
            adj,
            num_edges: num_edges / 2,
        }
    }

    /// Number of processors.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.adj.len()
    }

    /// Number of communication edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbours of processor `p`.
    #[inline]
    pub fn neighbors(&self, p: ProcessorId) -> &[ProcessorId] {
        &self.adj[p.index()]
    }

    /// Returns `true` if `p` and `q` can exchange messages directly.
    pub fn can_communicate(&self, p: ProcessorId, q: ProcessorId) -> bool {
        self.adj[p.index()].binary_search(&q).is_ok()
    }

    /// The eccentricity-based diameter of the graph (∞ is reported as
    /// `None` when the graph is disconnected); BFS from every vertex.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.adj.len();
        if n == 0 {
            return Some(0);
        }
        let mut best = 0usize;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if dist[v.index()] == usize::MAX {
                        dist[v.index()] = dist[u] + 1;
                        queue.push_back(v.index());
                    }
                }
            }
            let ecc = dist.iter().copied().max().unwrap_or(0);
            if ecc == usize::MAX {
                return None;
            }
            best = best.max(ecc);
        }
        Some(best)
    }

    /// The adjacency lists as plain `usize` indices, for feeding a
    /// [`crate::simulator::Topology`].
    pub fn as_adjacency(&self) -> Vec<Vec<usize>> {
        self.adj
            .iter()
            .map(|nbrs| nbrs.iter().map(|p| p.index()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::{DemandId, Processor};

    fn proc(i: usize, access: &[usize]) -> Processor {
        use netsched_graph::NetworkId;
        Processor::new(
            ProcessorId::new(i),
            DemandId::new(i),
            access.iter().map(|&t| NetworkId::new(t)).collect(),
        )
    }

    #[test]
    fn chain_of_resources_gives_a_path_graph() {
        // Processor i accesses resources {i, i+1}: consecutive processors
        // share a resource, others don't — a path of m processors, whose
        // diameter is m - 1 (the paper's point about large diameters).
        let m = 6;
        let procs: Vec<Processor> = (0..m).map(|i| proc(i, &[i, i + 1])).collect();
        let g = CommGraph::build(&procs, m + 1);
        assert_eq!(g.num_edges(), m - 1);
        assert_eq!(g.diameter(), Some(m - 1));
        assert!(g.can_communicate(ProcessorId::new(0), ProcessorId::new(1)));
        assert!(!g.can_communicate(ProcessorId::new(0), ProcessorId::new(2)));
    }

    #[test]
    fn shared_resource_gives_a_clique() {
        let procs: Vec<Processor> = (0..5).map(|i| proc(i, &[0])).collect();
        let g = CommGraph::build(&procs, 1);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let procs = vec![proc(0, &[0]), proc(1, &[1])];
        let g = CommGraph::build(&procs, 2);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn adjacency_export_matches() {
        let procs: Vec<Processor> = (0..4).map(|i| proc(i, &[i / 2])).collect();
        let g = CommGraph::build(&procs, 2);
        let adj = g.as_adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[2], vec![3]);
    }
}
