//! Round and message accounting for the distributed algorithms.
//!
//! The paper's cost model is the synchronous message-passing model: the
//! running time of an algorithm is its number of communication rounds, and
//! messages must have size `O(M_max)` bits where `M_max` is the number of
//! bits needed to describe one demand (Section 5, "Distributed
//! Implementation"). [`RoundStats`] accumulates both quantities so the
//! experiment harness can reproduce the round-complexity claims of
//! Theorems 5.3, 6.3, 7.1 and 7.2.

/// Accumulated communication cost of a distributed execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundStats {
    /// Number of synchronous communication rounds.
    pub rounds: u64,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Largest message payload observed, in abstract "demand records"
    /// (the paper's `O(M_max)` unit: one record describes one demand or one
    /// dual-variable update).
    pub max_message_records: u64,
    /// Number of MIS computations performed (each costs `Time(MIS)` rounds).
    pub mis_invocations: u64,
    /// Rounds spent inside MIS computations (included in `rounds`).
    pub mis_rounds: u64,
}

impl RoundStats {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` messages delivered in the current round, each of the
    /// given payload size (in demand records).
    pub fn record_messages(&mut self, count: u64, records_per_message: u64) {
        self.messages += count;
        self.max_message_records = self.max_message_records.max(records_per_message);
    }

    /// Records the completion of one synchronous round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Records an entire MIS computation of the given number of rounds.
    pub fn record_mis(&mut self, rounds: u64) {
        self.mis_invocations += 1;
        self.mis_rounds += rounds;
        self.rounds += rounds;
    }

    /// Merges another accumulator into this one (e.g. the stats of a
    /// sub-protocol).
    pub fn merge(&mut self, other: &RoundStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.max_message_records = self.max_message_records.max(other.max_message_records);
        self.mis_invocations += other.mis_invocations;
        self.mis_rounds += other.mis_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut s = RoundStats::new();
        s.record_messages(10, 1);
        s.record_round();
        s.record_messages(5, 3);
        s.record_round();
        s.record_mis(4);
        assert_eq!(s.rounds, 6);
        assert_eq!(s.messages, 15);
        assert_eq!(s.max_message_records, 3);
        assert_eq!(s.mis_invocations, 1);
        assert_eq!(s.mis_rounds, 4);
    }

    #[test]
    fn merge_combines_both() {
        let mut a = RoundStats::new();
        a.record_round();
        a.record_messages(2, 1);
        let mut b = RoundStats::new();
        b.record_mis(3);
        b.record_messages(7, 2);
        a.merge(&b);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.messages, 9);
        assert_eq!(a.max_message_records, 2);
        assert_eq!(a.mis_invocations, 1);
    }
}
